"""Figure 11: activity reordering across 13 synthetic configurations.

Paper: reordering the Read/Update conflict pair improves every
configuration (up to +65% throughput / +58% success for RangeRead-heavy).
Shape checks: success never degrades and improves for the large majority.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig11_reordering")]


def test_fig11_reordering(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    improved = 0
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
        without = outcome.row("without")
        reordered = outcome.row("activity reordering")
        assert reordered.success_pct >= without.success_pct - 2.0
        if reordered.success_pct > without.success_pct:
            improved += 1
    assert improved >= int(0.7 * len(outcomes))
