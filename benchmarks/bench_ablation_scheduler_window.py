"""Ablation: FabricSharp sliding-window size.

DESIGN.md calls out the scheduler window as a design choice: a larger
window catches more doomed transactions early (fewer wasted validations)
but risks more false aborts.  This bench sweeps the window and reports the
early-abort / MVCC trade-off on an update-heavy workload.
"""

from repro.bench.experiments import synthetic_spec
from repro.fabric import run_workload
from repro.fabric.transaction import TxStatus
from repro.workloads import synthetic_workload


def _run_sweep():
    rows = []
    for window in (1, 3, 5, 10, 20):
        spec = synthetic_spec("workload_update_heavy")
        spec.scheduler = "fabricsharp"
        config, deployment, requests = synthetic_workload(spec)
        config.scheduler_window = window
        network, result = run_workload(config, deployment.contracts, requests)
        rows.append(
            (
                window,
                result.early_aborts,
                result.failure_counts.get(TxStatus.MVCC_CONFLICT.value, 0),
                result.success_rate,
            )
        )
    return rows


def test_ablation_scheduler_window(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(f"{'window':>6} {'early_aborts':>12} {'mvcc_fails':>10} {'success%':>9}")
    for window, aborts, mvcc, success in rows:
        print(f"{window:>6} {aborts:>12} {mvcc:>10} {success * 100:>9.1f}")
    # Early aborts replace late MVCC failures as the window grows.
    aborts_by_window = {w: a for w, a, _, _ in rows}
    mvcc_by_window = {w: m for w, _, m, _ in rows}
    assert aborts_by_window[20] >= aborts_by_window[1]
    assert mvcc_by_window[20] <= mvcc_by_window[1]
