"""Figure 7: endorser restructuring on P1 and P2 + endorser-dist-skew 6.

Paper: changing the policy to OutOf(2, Org1..Org4) relieves the mandatory /
skew-favoured endorsers — 29% (P1) and 26% (P2+skew) throughput gains.
Shape checks: restructuring raises throughput and lowers latency.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig07_endorser")]


def test_fig07_endorser_restructuring(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
    for outcome in outcomes:
        without = outcome.row("without")
        restructured = outcome.row("endorser restructuring")
        assert restructured.throughput > without.throughput
        assert restructured.latency < without.latency
        assert "endorser_restructuring" in outcome.recommendations
