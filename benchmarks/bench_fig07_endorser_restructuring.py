"""Figure 7: endorser restructuring on P1 and P2 + endorser-dist-skew 6.

Paper: changing the policy to OutOf(2, Org1..Org4) relieves the mandatory /
skew-favoured endorsers — 29% (P1) and 26% (P2+skew) throughput gains.
Shape checks: restructuring raises throughput and lowers latency.
"""

from repro.bench import execute_experiment, format_paper_comparison
from repro.bench.experiments import FIG7_ENDORSER, make_synthetic
from repro.core import OptimizationKind as K

PLANS = [("endorser restructuring", (K.ENDORSER_RESTRUCTURING,))]


def _run_all():
    outcomes = []
    for experiment, paper in FIG7_ENDORSER.items():
        outcomes.append(
            execute_experiment(
                f"Figure 7 / {experiment}", make_synthetic(experiment), PLANS, paper=paper
            )
        )
    return outcomes


def test_fig07_endorser_restructuring(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
    for outcome in outcomes:
        without = outcome.row("without")
        restructured = outcome.row("endorser restructuring")
        assert restructured.throughput > without.throughput
        assert restructured.latency < without.latency
        assert "endorser_restructuring" in outcome.recommendations
