"""Figure 14: the digital rights management use case.

Paper: delta writes (+42% tput, +50% success, *higher* latency from
calcRevenue aggregation), reordering (>50% gains), partitioning (+35% /
+26%), and all three combined (>50%).  Shape checks: every optimization
improves success; delta writes raise average latency.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import get


def _run():
    return run_spec(get("fig14_drm/drm"))


def test_fig14_drm(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    delta = outcome.row("delta writes")
    assert delta.success_pct > without.success_pct * 1.5
    assert delta.latency > without.latency  # aggregation cost, as in the paper
    assert outcome.row("activity reordering").success_pct > without.success_pct
    assert outcome.row("smart contract partitioning").success_pct > without.success_pct
    assert outcome.row("all").success_pct > without.success_pct * 2
    assert "delta_writes" in outcome.recommendations
    assert "smart_contract_partitioning" in outcome.recommendations
