"""Table 3: recommendations generated for the 15 synthetic experiments.

For every experiment the bench runs the workload, lets BlockOptR analyze
the ledger, and compares the recommendation set against the paper's.
Absolute agreement is not required (threshold calibrations differ; the
paper's own Table 3 contains internally inconsistent rows — see
EXPERIMENTS.md), but the benchmark asserts the headline matches: the
paper's *primary* recommendation per experiment is reproduced, and the
overall Jaccard agreement stays above 0.5.
"""

from repro.bench import run_spec
from repro.bench.experiments import TABLE3_EXPECTED
from repro.bench.registry import experiments
from repro.core import OptimizationKind as K

#: The recommendation that defines each experiment's figure placement.
PRIMARY = {
    "endorsement_policy_p1": K.ENDORSER_RESTRUCTURING,
    "endorsement_policy_p2_skew": K.ENDORSER_RESTRUCTURING,
    "num_orgs_4": K.TRANSACTION_RATE_CONTROL,
    "workload_read_heavy": K.ACTIVITY_REORDERING,
    "workload_update_heavy": K.TRANSACTION_RATE_CONTROL,
    "workload_insert_heavy": K.ACTIVITY_REORDERING,
    "workload_rangeread_heavy": K.TRANSACTION_RATE_CONTROL,
    "key_dist_skew_2": K.SMART_CONTRACT_PARTITIONING,
    "block_count_50": K.TRANSACTION_RATE_CONTROL,
    "block_count_300": K.ACTIVITY_REORDERING,
    "block_count_1000": K.ACTIVITY_REORDERING,
    "send_rate_50": None,  # healthy run; the paper still lists reordering
    "send_rate_300": K.ACTIVITY_REORDERING,
    "send_rate_1000": K.TRANSACTION_RATE_CONTROL,
    "tx_dist_skew_70": K.CLIENT_RESOURCE_BOOST,
}


def _run_all():
    rows = []
    for spec in experiments("table3"):
        outcome = run_spec(spec)
        got = {K(value) for value in outcome.recommendations}
        expected = TABLE3_EXPECTED[spec.variant]
        jaccard = len(got & expected) / len(got | expected) if (got | expected) else 1.0
        rows.append((spec.variant, expected, got, jaccard))
    return rows


def test_table3_recommendations(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(f"{'experiment':<28} {'jaccard':>7}  paper -> measured")
    agreements = []
    primary_hits = 0
    primary_total = 0
    for experiment, expected, got, jaccard in rows:
        agreements.append(jaccard)
        print(
            f"{experiment:<28} {jaccard:>7.2f}  "
            f"{sorted(k.value for k in expected)} -> {sorted(k.value for k in got)}"
        )
        primary = PRIMARY[experiment]
        if primary is not None:
            primary_total += 1
            if primary in got:
                primary_hits += 1
    mean_jaccard = sum(agreements) / len(agreements)
    print(f"mean jaccard agreement: {mean_jaccard:.2f}; primary hit rate: "
          f"{primary_hits}/{primary_total}")
    assert mean_jaccard > 0.5
    assert primary_hits >= primary_total - 2
