"""Figure 13 (+ Section 3 claims): the supply-chain management use case.

Paper: reordering (+24% tput / +15% success), pruning (+27% / +19%), rate
control, and the combination all improve on the baseline.  Shape checks:
each optimization improves success; reordering also improves throughput.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import get


def _run():
    return run_spec(get("fig13_scm/scm"))


def test_fig13_scm(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    assert outcome.row("activity reordering").success_pct > without.success_pct
    assert outcome.row("activity reordering").throughput > without.throughput
    assert outcome.row("process model pruning").success_pct >= without.success_pct
    assert outcome.row("transaction rate control").success_pct > without.success_pct
    assert outcome.row("transaction rate control").latency < without.latency
    assert outcome.row("all").success_pct > without.success_pct
    assert "activity_reordering" in outcome.recommendations
    assert "process_model_pruning" in outcome.recommendations
