"""Ablation: workload fluctuation and delayed optimization (paper §7/§9).

The paper's limitation section assumes "a continued trend in the pattern
of the workload after the optimizations are applied" and names workload
fluctuation as future work.  This bench quantifies it: recommendations are
derived from a *300 TPS* run but the re-execution happens at a different
rate — measuring how much of the optimization benefit survives when the
workload shifts, and that re-running BlockOptR on the shifted workload
(the feedback loop) recovers it.
"""

from repro.bench.experiments import synthetic_spec
from repro.contracts.registry import genchain_family
from repro.core import BlockOptR, apply_recommendations
from repro.fabric import run_workload
from repro.workloads import synthetic_workload


def _run():
    # Analyze at the default 300 TPS.
    spec = synthetic_spec("default")
    config, deployment, requests = synthetic_workload(spec)
    network, _ = run_workload(config, deployment.contracts, requests)
    report = BlockOptR().analyze_network(network)
    family = genchain_family(num_keys=spec.num_keys)

    rows = []
    for rate in (150.0, 300.0, 600.0):
        shifted_spec = synthetic_spec("default")
        shifted_spec.send_rate = rate
        shifted_config, shifted_deployment, shifted_requests = synthetic_workload(shifted_spec)

        _, baseline = run_workload(
            shifted_config, shifted_deployment.contracts, shifted_requests
        )
        # Stale recommendations: derived from the 300 TPS log.
        stale = apply_recommendations(
            report.recommendations, shifted_config, family, shifted_requests
        )
        _, stale_result = run_workload(
            stale.config, stale.deployment.contracts, stale.requests
        )
        # Fresh recommendations: re-analyzed on the shifted workload.
        shifted_network, _ = run_workload(
            shifted_config, shifted_deployment.contracts, shifted_requests
        )
        fresh_report = BlockOptR().analyze_network(shifted_network)
        fresh = apply_recommendations(
            fresh_report.recommendations, shifted_config, family, shifted_requests
        )
        _, fresh_result = run_workload(
            fresh.config, fresh.deployment.contracts, fresh.requests
        )
        rows.append((rate, baseline, stale_result, fresh_result))
    return rows


def test_ablation_fluctuation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"{'rate':>6} {'baseline%':>10} {'stale recs%':>11} {'fresh recs%':>11}")
    for rate, baseline, stale, fresh in rows:
        print(
            f"{rate:>6.0f} {baseline.success_rate * 100:>10.1f} "
            f"{stale.success_rate * 100:>11.1f} {fresh.success_rate * 100:>11.1f}"
        )
    for rate, baseline, stale, fresh in rows:
        # Fresh (re-analyzed) recommendations never lose to stale ones.
        assert fresh.success_rate >= stale.success_rate - 0.03
        # On the unchanged workload, both coincide and beat the baseline.
        if rate == 300.0:
            assert stale.success_rate > baseline.success_rate
