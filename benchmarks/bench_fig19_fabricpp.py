"""Figure 19: BlockOptR on top of a Fabric++-style scheduler.

Paper: on Fabric++'s weakest workloads (update-, read- and range-read-
heavy), rate control and activity reordering still deliver up to +55%
throughput and +46% success on top of the system-level optimizer.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig19_fabricpp")]


def test_fig19_fabricpp(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
        without = outcome.row("without")
        assert outcome.row("transaction rate control").success_pct > without.success_pct
        assert outcome.row("transaction rate control").latency < without.latency
        assert outcome.row("activity reordering").success_pct >= without.success_pct - 2.0
        assert outcome.row("all").success_pct > without.success_pct
