"""Figure 16: the digital voting use case.

Paper: the party tally is a hot key used only by Vote; altering the data
model to key votes by voterID removes all dependencies (100% success).
Shape checks: alteration reaches ~100% success and multiplies throughput.
"""

from repro.bench import execute_experiment, format_paper_comparison
from repro.bench.experiments import FIG16_DV, make_usecase, usecase_plans


def _run():
    return execute_experiment(
        "Figure 16 / DV", make_usecase("voting"), usecase_plans("voting"), paper=FIG16_DV
    )


def test_fig16_voting(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    altered = outcome.row("data model alteration")
    assert altered.success_pct >= 99.0
    assert altered.throughput > without.throughput * 2
    assert outcome.row("all").success_pct >= 99.0
    assert outcome.row("transaction rate control").success_pct >= without.success_pct
    assert "data_model_alteration" in outcome.recommendations
    assert "smart_contract_partitioning" not in outcome.recommendations
