"""Figure 16: the digital voting use case.

Paper: the party tally is a hot key used only by Vote; altering the data
model to key votes by voterID removes all dependencies (100% success).
Shape checks: alteration reaches ~100% success and multiplies throughput.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import get


def _run():
    return run_spec(get("fig16_voting/voting"))


def test_fig16_voting(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    altered = outcome.row("data model alteration")
    assert altered.success_pct >= 99.0
    assert altered.throughput > without.throughput * 2
    assert outcome.row("all").success_pct >= 99.0
    assert outcome.row("transaction rate control").success_pct >= without.success_pct
    assert "data_model_alteration" in outcome.recommendations
    assert "smart_contract_partitioning" not in outcome.recommendations
