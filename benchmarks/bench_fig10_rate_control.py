"""Figure 10: transaction rate control across 11 synthetic configurations.

Paper: capping the send rate at 100 TPS trades throughput for large latency
and success-rate gains (up to 87% / 36%).  Shape checks per experiment:
success rises, latency falls, throughput lands near the controlled rate.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig10_rate_control")]


def test_fig10_rate_control(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    improved_success = 0
    improved_latency = 0
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
        without = outcome.row("without")
        controlled = outcome.row("transaction rate control")
        if controlled.success_pct > without.success_pct:
            improved_success += 1
        if controlled.latency < without.latency:
            improved_latency += 1
        # Rate control throttles throughput toward the 100 TPS cap.
        assert controlled.throughput <= max(without.throughput, 110.0)
    assert improved_success >= len(outcomes) - 1
    assert improved_latency >= len(outcomes) - 1
