"""Figure 15: the electronic health records use case.

Paper: reordering (+60-65% tput/success), pruning (+43%), rate control
(+69% success), all combined.  Shape checks per optimization.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import get


def _run():
    return run_spec(get("fig15_ehr/ehr"))


def test_fig15_ehr(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    assert outcome.row("activity reordering").success_pct > without.success_pct
    assert outcome.row("transaction rate control").success_pct > without.success_pct
    assert outcome.row("transaction rate control").latency < without.latency
    assert outcome.row("process model pruning").success_pct >= without.success_pct
    assert outcome.row("all").success_pct > without.success_pct
    for expected in ("activity_reordering", "process_model_pruning", "transaction_rate_control"):
        assert expected in outcome.recommendations
