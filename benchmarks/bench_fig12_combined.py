"""Figure 12: all recommended optimizations combined (8 configurations).

Paper: the combination is comparable to the single best optimization —
up to +93% throughput / +85% success (block count 50).  Shape checks:
success improves everywhere; the collapsed block-count-50 run recovers.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    # The registry's fig12 plans apply exactly the paper's Table 3
    # recommendations per experiment.
    return [run_spec(spec) for spec in experiments("fig12_combined")]


def test_fig12_combined(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
        assert outcome.row("all").success_pct >= outcome.row("without").success_pct
    # The collapsed block-count-50 run recovers dramatically on success.
    # (Throughput stays near the 100 TPS cap because Table 3 also
    # recommends rate control for this experiment — the paper notes that
    # rate control trades throughput for success by design.)
    block50 = next(o for o in outcomes if "block_count_50" in o.name)
    assert block50.row("all").success_pct > block50.row("without").success_pct + 20
