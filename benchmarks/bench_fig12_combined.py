"""Figure 12: all recommended optimizations combined (8 configurations).

Paper: the combination is comparable to the single best optimization —
up to +93% throughput / +85% success (block count 50).  Shape checks:
success improves everywhere; the collapsed block-count-50 run recovers.
"""

from repro.bench import execute_experiment, format_paper_comparison
from repro.bench.experiments import FIG12_COMBINED, TABLE3_EXPECTED, make_synthetic
from repro.core import OptimizationKind as K


def _plans_for(experiment: str):
    """Apply exactly the optimizations the paper recommends (Table 3)."""
    kinds = tuple(
        sorted(
            TABLE3_EXPECTED.get(experiment, {K.TRANSACTION_RATE_CONTROL}),
            key=lambda k: k.value,
        )
    )
    return [("all", kinds)]


def _run_all():
    return [
        execute_experiment(
            f"Figure 12 / {experiment}",
            make_synthetic(experiment),
            _plans_for(experiment),
            paper=paper,
        )
        for experiment, paper in FIG12_COMBINED.items()
    ]


def test_fig12_combined(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
        assert outcome.row("all").success_pct >= outcome.row("without").success_pct
    # The collapsed block-count-50 run recovers dramatically on success.
    # (Throughput stays near the 100 TPS cap because Table 3 also
    # recommends rate control for this experiment — the paper notes that
    # rate control trades throughput for success by design.)
    block50 = next(o for o in outcomes if "block_count_50" in o.name)
    assert block50.row("all").success_pct > block50.row("without").success_pct + 20
