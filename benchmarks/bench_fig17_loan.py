"""Figure 17: the loan application process (LAP) at 10 and 300 TPS.

Paper: employee 1's key is the single hotkey; re-keying by applicationID
yields >50% improvement in throughput and success at both send rates.
Shape checks: alteration improves success/throughput at both rates; rate
control helps the 300 TPS run.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig17_loan")]


def test_fig17_loan(benchmark):
    low, high = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in (low, high):
        print()
        print(format_paper_comparison(outcome))
        without = outcome.row("without")
        altered = outcome.row("data model alteration")
        assert altered.success_pct > without.success_pct * 1.3
        assert altered.throughput > without.throughput
    assert "data_model_alteration" in low.recommendations
    assert high.row("all").success_pct > high.row("without").success_pct
