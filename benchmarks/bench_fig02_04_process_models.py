"""Figures 2 and 4: the SCM process models before and after reordering.

Figure 2: the model mined from the raw SCM log shows the main flow
(pushASN -> ship -> queryASN -> unload) with the side activities
interleaved, including illogical branches.  Figure 4: after the activity-
reordering redesign, the mined model confirms compliance — the reordered
activities no longer interleave with the main flow.
"""

from repro.bench.experiments import make_usecase, usecase_plans
from repro.core import BlockOptR, OptimizationKind as K, apply_recommendations
from repro.fabric import run_workload
from repro.mining import alpha_miner, model_diff, token_replay_fitness

MAIN_FLOW = ("pushASN", "ship", "queryASN", "unload")


def _mine(report):
    variants = report.event_log.trace_variants()
    frequent = [trace for trace, count in variants.items() if count >= 3]
    return alpha_miner(frequent or list(variants)), report


def _run():
    config, family, requests = make_usecase("scm")()
    deployment = family.deploy()
    network, _ = run_workload(config, deployment.contracts, requests)
    before_report = BlockOptR().analyze_network(network)
    before_net, _ = _mine(before_report)

    applied = apply_recommendations(
        [before_report.get(K.ACTIVITY_REORDERING)], config, family, requests
    )
    network2, _ = run_workload(
        applied.config, applied.deployment.contracts, applied.requests
    )
    after_report = BlockOptR().analyze_network(network2)
    after_net, _ = _mine(after_report)
    return before_report, before_net, after_report, after_net


def test_fig02_04_process_models(benchmark):
    before_report, before_net, after_report, after_net = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    print()
    print("Figure 2 (before) — most frequent path:", before_report.dfg.most_frequent_path())
    print("Figure 4 (after)  — most frequent path:", after_report.dfg.most_frequent_path())
    diff = model_diff(before_report.footprint, after_report.footprint)
    print(f"model diff: {len(diff.changed_relations)} relation changes, "
          f"conformance {diff.conformance:.2f}")

    # Figure 2: the mined main flow matches the business process.
    path = before_report.dfg.most_frequent_path()
    main = [a for a in path if a in MAIN_FLOW]
    assert main == list(MAIN_FLOW)

    # Figure 2: the side activities interleave with the main flow (parallel
    # relations exist before reordering).
    from repro.mining import Relation

    fp = before_report.footprint
    assert any(
        fp.relation("updateAuditInfo", activity) is Relation.PARALLEL
        for activity in MAIN_FLOW
        if activity in fp.activities
    )

    # Figure 4: compliance — after reordering the model changed and the
    # reordered activities' relations to the main flow are no longer the
    # same interleavings.
    assert not diff.is_identical()
    moved = set(before_report.get(K.ACTIVITY_REORDERING).actions["front"])
    changed = {a for a, b, *_ in diff.changed_relations} | {
        b for a, b, *_ in diff.changed_relations
    }
    assert moved & changed

    # The mined nets replay their own logs with high fitness.
    for net, report in ((before_net, before_report), (after_net, after_report)):
        fitness = token_replay_fitness(net, report.event_log.traces())
        assert fitness > 0.6
