"""Figure 8: client resource boost under 70% transaction distribution skew.

Paper: doubling the overloaded organization's clients cuts latency 75% and
lifts success rate 7%.  Shape checks: latency drops sharply, success rises.
"""

from repro.bench import execute_experiment, format_paper_comparison
from repro.bench.experiments import FIG8_CLIENT_BOOST, make_synthetic
from repro.core import OptimizationKind as K

PLANS = [("client resource boost", (K.CLIENT_RESOURCE_BOOST,))]


def _run():
    paper = FIG8_CLIENT_BOOST["tx_dist_skew_70"]
    return execute_experiment(
        "Figure 8 / tx_dist_skew_70", make_synthetic("tx_dist_skew_70"), PLANS, paper=paper
    )


def test_fig08_client_boost(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    boosted = outcome.row("client resource boost")
    assert boosted.latency < without.latency
    assert boosted.success_pct >= without.success_pct
    assert "client_resource_boost" in outcome.recommendations
