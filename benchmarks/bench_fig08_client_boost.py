"""Figure 8: client resource boost under 70% transaction distribution skew.

Paper: doubling the overloaded organization's clients cuts latency 75% and
lifts success rate 7%.  Shape checks: latency drops sharply, success rises.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import get


def _run():
    return run_spec(get("fig08_client_boost/tx_dist_skew_70"))


def test_fig08_client_boost(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_paper_comparison(outcome))
    without = outcome.row("without")
    boosted = outcome.row("client resource boost")
    assert boosted.latency < without.latency
    assert boosted.success_pct >= without.success_pct
    assert "client_resource_boost" in outcome.recommendations
