"""Figure 18: BlockOptR on top of a FabricSharp-style scheduler.

Paper: even with FabricSharp's transaction reordering active, BlockOptR's
higher-level recommendations (endorser restructuring, rate control) add
further gains.  Shape checks: the scheduler keeps baseline success above
plain Fabric's, and each recommendation still improves its target metric.
"""

from repro.bench import execute_experiment, format_paper_comparison
from repro.bench.experiments import FIG18_FABRICSHARP, make_synthetic
from repro.core import OptimizationKind as K

PLANS = {
    "endorsement_policy_p1": [("endorser restructuring", (K.ENDORSER_RESTRUCTURING,))],
    "endorsement_policy_p2_skew": [("endorser restructuring", (K.ENDORSER_RESTRUCTURING,))],
    "workload_insert_heavy": [("transaction rate control", (K.TRANSACTION_RATE_CONTROL,))],
}


def _run_all():
    return [
        execute_experiment(
            f"Figure 18 / {experiment}",
            make_synthetic(experiment, scheduler="fabricsharp"),
            PLANS[experiment],
            paper=paper,
        )
        for experiment, paper in FIG18_FABRICSHARP.items()
    ]


def test_fig18_fabricsharp(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
    by_name = {o.name.split("/ ")[-1]: o for o in outcomes}
    for name in ("endorsement_policy_p1", "endorsement_policy_p2_skew"):
        outcome = by_name[name]
        restructured = outcome.row("endorser restructuring")
        assert restructured.latency <= outcome.row("without").latency
        assert restructured.success_pct >= outcome.row("without").success_pct - 2.0
    insert = by_name["workload_insert_heavy"]
    assert insert.row("transaction rate control").success_pct > insert.row("without").success_pct
