"""Figure 18: BlockOptR on top of a FabricSharp-style scheduler.

Paper: even with FabricSharp's transaction reordering active, BlockOptR's
higher-level recommendations (endorser restructuring, rate control) add
further gains.  Shape checks: the scheduler keeps baseline success above
plain Fabric's, and each recommendation still improves its target metric.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig18_fabricsharp")]


def test_fig18_fabricsharp(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
    by_name = {o.name.split("/ ")[-1]: o for o in outcomes}
    for name in ("endorsement_policy_p1", "endorsement_policy_p2_skew"):
        outcome = by_name[name]
        restructured = outcome.row("endorser restructuring")
        assert restructured.latency <= outcome.row("without").latency
        assert restructured.success_pct >= outcome.row("without").success_pct - 2.0
    insert = by_name["workload_insert_heavy"]
    assert insert.row("transaction rate control").success_pct > insert.row("without").success_pct
