"""Ablation: detection-threshold sensitivity.

The paper stresses that every rule's threshold is user-configurable.  This
bench sweeps the two most influential ones on the default synthetic
workload — the reorderable-MVCC share (Section 6.1.5's 40%) and the
rate-control failure fraction (Rt2) — and reports how the recommendation
set reacts, demonstrating monotone detection behaviour.
"""

from repro.bench.experiments import make_synthetic
from repro.core import BlockOptR, OptimizationKind as K
from repro.core.thresholds import Thresholds
from repro.fabric import run_workload


def _run():
    config, family, requests = make_synthetic("default")()
    deployment = family.deploy()
    network, _ = run_workload(config, deployment.contracts, requests)

    reorder_hits = []
    for share in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
        report = BlockOptR(Thresholds(reorderable_mvcc_share=share)).analyze_network(network)
        reorder_hits.append((share, report.recommends(K.ACTIVITY_REORDERING)))

    rate_hits = []
    for fraction in (0.02, 0.1, 0.3, 0.6, 0.9):
        report = BlockOptR(Thresholds(failure_fraction=fraction)).analyze_network(network)
        rate_hits.append((fraction, report.recommends(K.TRANSACTION_RATE_CONTROL)))
    return reorder_hits, rate_hits


def test_ablation_thresholds(benchmark):
    reorder_hits, rate_hits = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("reorderable_mvcc_share ->", reorder_hits)
    print("failure_fraction       ->", rate_hits)

    # Monotone: once a threshold is too strict, it stays too strict.
    seen_false = False
    for _, fired in reorder_hits:
        if not fired:
            seen_false = True
        else:
            assert not seen_false, "reordering detection must be monotone in the share"
    seen_false = False
    for _, fired in rate_hits:
        if not fired:
            seen_false = True
        else:
            assert not seen_false, "rate-control detection must be monotone in Rt2"

    # The loosest settings fire, the strictest do not.
    assert reorder_hits[0][1]
    assert not reorder_hits[-1][1]
    assert rate_hits[0][1]
