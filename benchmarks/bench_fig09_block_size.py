"""Figure 9: block size adaptation.

Paper: setting the block count to the derived transaction rate rescues the
collapsed block-count-50 run (+93% throughput, +85% success) and mildly
improves the high-send-rate runs.  Shape checks: large gains for the small
block counts, non-degradation for the rate experiments.
"""

from repro.bench import format_paper_comparison, run_spec
from repro.bench.registry import experiments


def _run_all():
    return [run_spec(spec) for spec in experiments("fig09_block_size")]


def test_fig09_block_size(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    by_name = {}
    for outcome in outcomes:
        print()
        print(format_paper_comparison(outcome))
        by_name[outcome.name.split("/ ")[-1]] = outcome

    # block count 50 collapses the orderer; adaptation rescues it.
    collapsed = by_name["block_count_50"]
    assert collapsed.row("block size adaptation").throughput > (
        collapsed.row("without").throughput * 1.5
    )
    assert collapsed.row("block size adaptation").success_pct > (
        collapsed.row("without").success_pct
    )
    # block count 100 is degraded (not collapsed) here; adaptation restores
    # throughput without hurting success.
    degraded = by_name["block_count_100"]
    assert degraded.row("block size adaptation").throughput > (
        degraded.row("without").throughput
    )
    assert degraded.row("block size adaptation").success_pct > (
        degraded.row("without").success_pct - 2.0
    )
    for name in ("block_count_50", "block_count_100"):
        assert "block_size_adaptation" in by_name[name].recommendations
    for name in ("send_rate_1000", "send_rate_500_1000"):
        outcome = by_name[name]
        assert outcome.row("block size adaptation").success_pct >= (
            outcome.row("without").success_pct * 0.9
        )
