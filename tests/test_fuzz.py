"""Scenario fuzzer: generator, oracles, shrinking, corpus, CLI (ISSUE 8).

The fuzzer is only useful if it is itself deterministic, so most tests
here pin bit-reproducibility: the same seed and budget must regenerate
the same compositions, the same oracle verdicts and the same corpus
bytes.  The committed corpus under ``tests/corpus/fuzz`` is replayed in
full — the same check CI's fuzz-smoke step runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenario.fuzz import (
    GENERATED_KINDS,
    ORACLES,
    FuzzConfig,
    FuzzHarness,
    generate_spec,
    label_report,
    replay_corpus,
    run_campaign,
    save_corpus,
    shrink_spec,
)
from repro.scenario.spec import KINDS, Intervention, ScenarioSpec

REPO = Path(__file__).resolve().parent.parent
COMMITTED_CORPUS = REPO / "tests" / "corpus" / "fuzz"

#: One small campaign shared by the tests that only need *a* campaign.
SMALL = FuzzConfig(seed=5, budget=3, transactions=250)


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(SMALL)


# -- generator ------------------------------------------------------------------------


class TestGenerator:
    def test_same_seed_and_index_reproduce_the_spec(self):
        for index in range(10):
            assert generate_spec(21, index) == generate_spec(21, index)

    def test_generated_specs_are_valid_by_construction(self):
        # Interventions validate in __post_init__, so constructing 40
        # specs without raising is the real assertion; the rest pins the
        # generator's envelope.
        for index in range(40):
            spec = generate_spec(3, index)
            assert spec.name == f"fuzz_3_{index:04d}"
            assert 1 <= len(spec.interventions) <= 4
            for iv in spec.interventions:
                assert iv.kind in GENERATED_KINDS

    def test_generated_specs_round_trip_json(self):
        for index in range(20):
            spec = generate_spec(9, index)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_different_seeds_and_indices_vary(self):
        specs = {
            generate_spec(seed, index).to_json()
            for seed in (1, 2)
            for index in range(10)
        }
        assert len(specs) > 10

    def test_generator_covers_every_generated_kind(self):
        # peer_recover is excluded by design (crashes carry a duration);
        # everything else must be reachable.
        assert set(GENERATED_KINDS) == KINDS - {"peer_recover"}
        seen = set()
        for index in range(80):
            for iv in generate_spec(1, index).interventions:
                seen.add(iv.kind)
        assert seen == set(GENERATED_KINDS)


# -- oracles and campaign -------------------------------------------------------------


class TestCampaign:
    def test_campaign_is_bit_reproducible(self, small_campaign):
        again = run_campaign(SMALL)
        assert [e.to_dict() for e in again.entries] == [
            e.to_dict() for e in small_campaign.entries
        ]

    def test_oracles_are_clean_on_the_current_engine(self, small_campaign):
        for entry in small_campaign.entries:
            assert entry.survived, entry.violations
            assert set(entry.oracles) == set(ORACLES)

    def test_labels_quantify_severity(self, small_campaign):
        for entry in small_campaign.entries:
            label = entry.label
            assert label.severity == pytest.approx(
                label.abort_rate + label.retry_rate, abs=1e-6
            )
            if label.dominant_cause is not None:
                assert label.dominant_cause in label.why
                assert label.cause_counts[label.dominant_cause] == max(
                    label.cause_counts.values()
                )

    def test_survivors_rank_most_severe_first(self, small_campaign):
        severities = [e.label.severity for e in small_campaign.survivors()]
        assert severities == sorted(severities, reverse=True)

    def test_forensics_label_matches_a_direct_report(self, small_campaign):
        harness = FuzzHarness(SMALL)
        entry = small_campaign.entries[0]
        assert label_report(harness.primary(entry.spec).report) == entry.label

    def test_config_rejects_bad_budget_and_oracles(self):
        with pytest.raises(ValueError, match="budget"):
            FuzzConfig(budget=0)
        with pytest.raises(ValueError, match="unknown oracles"):
            FuzzConfig(oracles=("determinism", "nope"))


# -- shrinking ------------------------------------------------------------------------


class TestShrinking:
    def test_injected_bug_shrinks_to_a_minimal_reproducer(self):
        # Injected bug: "any composition containing a latency spike
        # fails".  The generated 4-intervention composition must shrink
        # to just its latency spikes — greedy 1-minimal removal.
        spec = ScenarioSpec(
            name="injected",
            interventions=(
                Intervention(kind="peer_crash", at=0.3, duration=0.5, target="Org1"),
                Intervention(kind="latency_spike", at=0.2, duration=0.8, factor=3.0),
                Intervention(kind="burst_arrivals", at=0.1, duration=0.5, factor=2.0),
                Intervention(
                    kind="orderer_degradation", at=0.4, duration=0.5, factor=4.0
                ),
            ),
        )

        def failing(candidate: ScenarioSpec) -> bool:
            return any(iv.kind == "latency_spike" for iv in candidate.interventions)

        minimal = shrink_spec(spec, failing)
        assert len(minimal.interventions) == 1
        assert minimal.interventions[0].kind == "latency_spike"

    def test_passing_spec_is_returned_unchanged(self):
        spec = generate_spec(5, 0)
        assert shrink_spec(spec, lambda candidate: False) is spec

    def test_shrinker_runs_inside_a_campaign_on_a_broken_oracle(self, monkeypatch):
        # End-to-end: break one oracle so every composition fails, and
        # check the campaign shrinks each entry and records the original.
        def broken(self, spec):
            return (
                ["injected failure"]
                if any(iv.kind == "latency_spike" for iv in spec.interventions)
                else []
            )

        monkeypatch.setattr(FuzzHarness, "check_conservation", broken)
        config = FuzzConfig(seed=7, budget=4, transactions=250, oracles=("conservation",))
        campaign = run_campaign(config)
        failures = campaign.failures()
        assert failures  # every seed-7 composition contains a latency spike
        for entry in failures:
            assert len(entry.spec.interventions) <= 3
            assert all(
                iv.kind == "latency_spike" for iv in entry.spec.interventions
            )
            if entry.shrunk_from is not None:
                assert len(entry.shrunk_from.interventions) > len(
                    entry.spec.interventions
                )


# -- corpus persistence ---------------------------------------------------------------


class TestCorpus:
    def test_save_is_byte_stable(self, small_campaign, tmp_path):
        save_corpus(small_campaign, tmp_path / "a")
        save_corpus(small_campaign, tmp_path / "b")
        files_a = sorted(p.name for p in (tmp_path / "a").iterdir())
        files_b = sorted(p.name for p in (tmp_path / "b").iterdir())
        assert files_a == files_b and "campaign.json" in files_a
        for name in files_a:
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()

    def test_replay_round_trips_clean(self, small_campaign, tmp_path):
        save_corpus(small_campaign, tmp_path)
        results = replay_corpus(tmp_path)
        assert len(results) == len(small_campaign.entries)
        assert all(result.clean for result in results)

    def test_replay_detects_digest_drift(self, small_campaign, tmp_path):
        save_corpus(small_campaign, tmp_path)
        victim = tmp_path / f"{small_campaign.entries[0].spec.name}.json"
        data = json.loads(victim.read_text())
        data["run_digest"] = "0" * 64
        victim.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        results = {result.name: result for result in replay_corpus(tmp_path)}
        assert not results[victim.name].clean
        assert any("run digest drifted" in line for line in results[victim.name].drift)

    def test_replay_rejects_unknown_format(self, small_campaign, tmp_path):
        save_corpus(small_campaign, tmp_path)
        manifest = tmp_path / "campaign.json"
        data = json.loads(manifest.read_text())
        data["format_version"] = 99
        manifest.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        with pytest.raises(ValueError, match="format"):
            replay_corpus(tmp_path)

    def test_committed_corpus_replays_clean(self):
        # The exact check CI's fuzz-smoke step runs: the committed corpus
        # must reproduce its stored digests and stay oracle-clean.
        results = replay_corpus(COMMITTED_CORPUS)
        assert results, "committed corpus is empty"
        for result in results:
            assert result.clean, (result.name, result.violations, result.drift)


# -- promoted scenarios ---------------------------------------------------------------


class TestPromotedScenarios:
    def test_promoted_digests_match_the_golden(self):
        from repro.bench.experiments import make_synthetic
        from repro.fabric.network import FabricNetwork
        from repro.scenario import get_scenario, run_digest

        golden = json.loads(
            (REPO / "tests" / "golden" / "fuzzed__library_digests.json").read_text()
        )
        assert len(golden["digests"]) >= 3
        for name, expected in golden["digests"].items():
            config, family, requests = make_synthetic(
                golden["base"],
                seed=golden["seed"],
                total_transactions=golden["total_transactions"],
            )()
            network = FabricNetwork(
                config, family.deploy().contracts, scenario=get_scenario(name)
            )
            network.run(requests)
            assert run_digest(network) == expected, (
                f"promoted scenario {name} drifted from its pinned digest"
            )

    def test_promoted_scenarios_use_realism_primitives(self):
        from repro.scenario import get_scenario

        kinds = {
            iv.kind
            for name in ("flash_crowd_outage", "org_blackout_storm", "rolling_contention")
            for iv in get_scenario(name).interventions
        }
        assert {"rate_curve", "hot_key_drift", "region_lag"} <= kinds


# -- CLI ------------------------------------------------------------------------------


class TestFuzzCli:
    def test_small_campaign_runs_clean(self, capsys):
        from repro.cli import main

        rc = main(["fuzz", "--seed", "5", "--budget", "2", "--txs", "250"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fuzz campaign: seed 5" in out
        assert "survived" in out

    def test_corpus_save_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        corpus = str(tmp_path / "corpus")
        assert main(
            ["fuzz", "--seed", "5", "--budget", "2", "--txs", "250", "--corpus", corpus]
        ) == 0
        assert main(["fuzz", "--replay", "--corpus", corpus]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_promote_prints_candidate_specs(self, capsys):
        from repro.cli import main

        rc = main(
            ["fuzz", "--seed", "5", "--budget", "2", "--txs", "250", "--promote", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        start = out.index("promotion candidates")
        spec = ScenarioSpec.from_json(out[out.index("{", start):])
        assert spec.name.startswith("fuzz_5_")

    def test_bad_budget_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--budget", "0"]) == 2
        assert "budget" in capsys.readouterr().err

    def test_unknown_oracle_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--budget", "1", "--oracle", "nope"]) == 2
        assert "unknown oracles" in capsys.readouterr().err

    def test_replay_without_corpus_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--replay"]) == 2
        assert "--replay requires --corpus" in capsys.readouterr().err

    def test_replay_of_missing_corpus_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fuzz", "--replay", "--corpus", str(tmp_path / "nope")]) == 2
        assert "cannot replay corpus" in capsys.readouterr().err
