"""Kernel determinism under scenarios (ISSUE 2, satellite 2).

Identical seed + scenario spec must yield an identical run: the same
kernel event trace event for event, the same ledger fingerprint, the same
`RunResult` numbers and the same applied-intervention timeline —
including under crash/recover interventions, whose whole point is to
perturb the middle of the run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.experiments import make_synthetic
from repro.fabric.network import FabricNetwork
from repro.scenario import get_scenario, run_digest, scenario_names


def _execute(scenario_name: str | None, seed: int, total: int = 350):
    config, family, requests = make_synthetic(
        "default", seed=seed, total_transactions=total
    )()
    scenario = get_scenario(scenario_name) if scenario_name else None
    network = FabricNetwork(config, family.deploy().contracts, scenario=scenario)
    trace = network.kernel.enable_trace()
    result = network.run(requests)
    return network, result, trace


def _result_fields(result) -> dict:
    """Every scalar/dict field of a RunResult (the ledger is fingerprinted
    separately by run_digest)."""
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "ledger"
    }


@pytest.mark.parametrize("scenario_name", [None, *scenario_names()])
def test_identical_seed_and_scenario_reproduce_the_run(scenario_name):
    net_a, res_a, trace_a = _execute(scenario_name, seed=11)
    net_b, res_b, trace_b = _execute(scenario_name, seed=11)

    assert trace_a == trace_b, "kernel event traces diverged"
    assert run_digest(net_a) == run_digest(net_b), "ledger outcomes diverged"
    assert _result_fields(res_a) == _result_fields(res_b)
    if scenario_name is not None:
        timeline_a = net_a.scenario_engine.timeline
        timeline_b = net_b.scenario_engine.timeline
        assert timeline_a == timeline_b and timeline_a


def test_every_library_scenario_is_behaviourally_distinct():
    # ISSUE 8 satellite: two library entries with the same run digest
    # would mean one of them (e.g. a fuzzer-promoted composition) is a
    # behavioural duplicate and should not have been added.
    digests = {}
    for name in scenario_names():
        network, _, _ = _execute(name, seed=11)
        digests.setdefault(run_digest(network), []).append(name)
    duplicates = {d: names for d, names in digests.items() if len(names) > 1}
    assert not duplicates, f"scenarios share a run digest: {duplicates}"


def test_different_seeds_actually_diverge():
    # Guards the test above against vacuous equality (e.g. the trace
    # accidentally recording nothing).
    _, _, trace_a = _execute("crash_burst", seed=11)
    _, _, trace_b = _execute("crash_burst", seed=12)
    assert trace_a and trace_b
    assert trace_a != trace_b


def test_interventions_fire_before_same_instant_workload_events():
    from repro.sim.kernel import INTERVENTION_PRIORITY, Kernel

    kernel = Kernel()
    order = []
    kernel.schedule(1.0, lambda: order.append("workload"))
    kernel.schedule_intervention(1.0, lambda: order.append("intervention"))
    trace = kernel.enable_trace()
    kernel.run()
    assert order == ["intervention", "workload"]
    assert [priority for _, priority, _ in trace] == [INTERVENTION_PRIORITY, 0]


def test_scenario_runs_are_deterministic_across_process_boundaries(tmp_path):
    # The executor ships scenario specs to worker processes by name;
    # serial in-process and pool results must match bit for bit.
    from repro.bench.executor import run_spec, run_suite
    from repro.bench.registry import get

    spec = get("scenario_faults/crash_recover").with_overrides(total_transactions=300)
    serial = run_spec(spec)
    parallel = run_suite([spec], jobs=2, cache=None)
    assert parallel.outcomes[0].rows == serial.rows
