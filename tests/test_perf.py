"""Tests for the repro.bench.perf subsystem.

Timings are machine noise and never asserted on; what is pinned down is
(1) the *measured code* is deterministic — identical digests across trials
and across independent runner invocations, (2) the JSON schema round-trips
losslessly, and (3) ``--compare`` flags regressions and only regressions.
"""

import json

import pytest

from repro.bench.perf import (
    SCHEMA_VERSION,
    BenchResult,
    PerfReport,
    all_benchmarks,
    benchmark_names,
    compare_reports,
    format_comparison,
    get_benchmark,
    report_from_json,
    report_to_dict,
    report_to_json,
    run_benchmarks,
)
from repro.bench.perf.benchmarks import Microbenchmark
from repro.bench.perf.compare import regressions
from repro.bench.perf.runner import NondeterministicBenchmarkError
from repro.cli import main

# Cheap benchmarks used to exercise the runner in tests.
FAST = ["kernel_event_churn"]


# -- registry ----------------------------------------------------------------------


def test_registry_names_are_unique_and_cover_the_required_hot_paths():
    names = benchmark_names()
    assert len(names) == len(set(names))
    for required in (
        "kernel_event_churn",
        "pipeline_round_trip",
        "metrics_accumulation",
        "small_experiment",
        "kernel_event_churn_batch",
        "pipeline_round_trip_batch",
    ):
        assert required in names


def test_batch_tier_benchmarks_compute_the_same_digests():
    """The ``*_batch`` mirrors run identical workloads through the batch
    kernel tier; equal digests are one more cross-tier equivalence check."""
    report = run_benchmarks(
        ["kernel_event_churn", "kernel_event_churn_batch"], warmup=0, trials=1
    )
    assert (
        report.get("kernel_event_churn").digest
        == report.get("kernel_event_churn_batch").digest
    )


def test_registry_lookup_and_unknown_name():
    bench = get_benchmark("kernel_event_churn")
    assert bench.description
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_benchmark("nope")


def test_every_benchmark_has_a_description():
    for bench in all_benchmarks():
        assert bench.name and bench.description


# -- runner ------------------------------------------------------------------------


def test_runner_trial_count_and_digest_stability():
    report = run_benchmarks(FAST, warmup=0, trials=3)
    (result,) = report.results
    assert result.name == "kernel_event_churn"
    assert len(result.trials) == 3
    assert all(trial >= 0.0 for trial in result.trials)
    assert result.median_s >= 0.0
    assert result.mad_s >= 0.0


def test_measured_code_is_deterministic_across_runner_invocations():
    """The determinism the ratchet relies on: digests (describing what the
    measured code computed, timings excluded) are identical across runs."""
    first = run_benchmarks(FAST, warmup=0, trials=2)
    second = run_benchmarks(FAST, warmup=0, trials=2)
    assert first.get("kernel_event_churn").digest == second.get("kernel_event_churn").digest
    assert first.get("kernel_event_churn").trials != []


def test_runner_validates_arguments():
    with pytest.raises(ValueError, match="at least one trial"):
        run_benchmarks(FAST, trials=0)
    with pytest.raises(ValueError, match="warmup"):
        run_benchmarks(FAST, warmup=-1)
    with pytest.raises(KeyError):
        run_benchmarks(["missing_benchmark"])


def test_runner_rejects_nondeterministic_measured_code(monkeypatch):
    ticks = iter(range(100))

    def flaky_make():
        return lambda: {"value": next(ticks)}

    flaky = Microbenchmark(name="flaky", description="varies", make=flaky_make)
    monkeypatch.setattr(
        "repro.bench.perf.runner.get_benchmark", lambda name: flaky
    )
    with pytest.raises(NondeterministicBenchmarkError, match="flaky"):
        run_benchmarks(["flaky"], warmup=0, trials=2)


def test_full_registry_executes_end_to_end():
    """Every registered benchmark must build and run (one trial each)."""
    report = run_benchmarks(None, warmup=0, trials=1)
    assert report.names() == benchmark_names()
    for result in report.results:
        assert len(result.trials) == 1
        assert len(result.digest) == 64


def test_runner_progress_lines(capsys):
    run_benchmarks(FAST, warmup=0, trials=1, progress=print)
    out = capsys.readouterr().out
    assert "kernel_event_churn" in out and "median" in out


# -- JSON schema -------------------------------------------------------------------


def _report(**overrides) -> PerfReport:
    defaults = dict(
        results=[
            BenchResult(
                name="a",
                description="bench a",
                trials=[0.010, 0.011, 0.012],
                digest="d" * 64,
                warmup=1,
            )
        ],
        python="3.11",
        platform="test",
    )
    defaults.update(overrides)
    return PerfReport(**defaults)


def test_json_round_trip_preserves_every_field():
    report = run_benchmarks(FAST, warmup=0, trials=2)
    loaded = report_from_json(report_to_json(report))
    assert loaded.names() == report.names()
    assert loaded.python == report.python
    assert loaded.platform == report.platform
    for name in report.names():
        original, parsed = report.get(name), loaded.get(name)
        assert parsed.trials == original.trials
        assert parsed.digest == original.digest
        assert parsed.warmup == original.warmup
        assert parsed.description == original.description
        assert parsed.median_s == original.median_s
        assert parsed.mad_s == original.mad_s


def test_report_dict_is_schema_versioned():
    data = report_to_dict(_report())
    assert data["schema"] == SCHEMA_VERSION
    assert data["results"][0]["median_s"] == pytest.approx(0.011)


def test_report_parsing_rejects_bad_payloads():
    with pytest.raises(ValueError, match="not valid JSON"):
        report_from_json("{nope")
    with pytest.raises(ValueError, match="JSON object"):
        report_from_json("[1, 2]")
    with pytest.raises(ValueError, match="schema"):
        report_from_json(json.dumps({"schema": 999, "results": []}))
    with pytest.raises(ValueError, match="malformed"):
        report_from_json(json.dumps({"schema": SCHEMA_VERSION, "results": [{}]}))
    no_trials = {
        "schema": SCHEMA_VERSION,
        "results": [{"name": "a", "trials": [], "digest": "x"}],
    }
    with pytest.raises(ValueError, match="no trials"):
        report_from_json(json.dumps(no_trials))


def test_report_get_unknown_name():
    with pytest.raises(KeyError):
        _report().get("missing")


# -- comparison --------------------------------------------------------------------


def _single(name: str, trials: list[float], digest: str = "same") -> PerfReport:
    return PerfReport(
        results=[
            BenchResult(
                name=name, description="", trials=trials, digest=digest, warmup=0
            )
        ]
    )


def test_compare_flags_a_clear_regression():
    old = _single("a", [0.010, 0.010, 0.010])
    new = _single("a", [0.020, 0.020, 0.020])
    (delta,) = compare_reports(old, new, threshold=0.25)
    assert delta.verdict == "regression"
    assert delta.ratio == pytest.approx(2.0)
    assert regressions([delta]) == [delta]


def test_compare_flags_a_clear_improvement():
    old = _single("a", [0.020, 0.020, 0.020])
    new = _single("a", [0.010, 0.010, 0.010])
    (delta,) = compare_reports(old, new)
    assert delta.verdict == "improvement"
    assert delta.percent == pytest.approx(-50.0)


def test_compare_within_threshold_is_unchanged():
    old = _single("a", [0.0100, 0.0100, 0.0100])
    new = _single("a", [0.0110, 0.0110, 0.0110])  # +10% < 25% threshold
    (delta,) = compare_reports(old, new)
    assert delta.verdict == "unchanged"


def test_compare_noise_floor_suppresses_jittery_regressions():
    """A big ratio whose shift is inside 3x the MAD is noise, not signal."""
    old = _single("a", [0.010, 0.002, 0.030])  # median 0.010, MAD 0.008
    new = _single("a", [0.014, 0.014, 0.014])  # +40% but shift 0.004 < 0.024
    (delta,) = compare_reports(old, new)
    assert delta.verdict == "unchanged"


def test_compare_zero_mad_keeps_a_minimum_noise_floor():
    """Identical trials give MAD 0; the relative floor must keep the
    ratchet from treating any sub-percent wobble as signal."""
    old = _single("a", [0.0100, 0.0100, 0.0100])  # MAD exactly 0
    new = _single("a", [0.01015, 0.01015, 0.01015])  # +1.5% < 2% floor
    (delta,) = compare_reports(old, new, threshold=0.01)
    assert delta.verdict == "unchanged"


def test_compare_zero_mad_still_flags_real_shifts():
    old = _single("a", [0.0100, 0.0100, 0.0100])
    new = _single("a", [0.0150, 0.0150, 0.0150])  # +50% clears floor and threshold
    (delta,) = compare_reports(old, new, threshold=0.25)
    assert delta.verdict == "regression"


def test_compare_detects_digest_changes():
    from repro.bench.perf.compare import digest_changes

    old = _single("a", [0.010], digest="one")
    new = _single("a", [0.010], digest="two")
    (delta,) = compare_reports(old, new)
    assert delta.verdict == "digest-changed"
    assert regressions([delta]) == []
    assert digest_changes([delta]) == [delta]


def test_compare_skips_benchmarks_missing_from_the_baseline():
    old = _single("a", [0.010])
    new = PerfReport(
        results=_single("a", [0.010]).results + _single("b", [0.010]).results
    )
    deltas = compare_reports(old, new)
    assert [delta.name for delta in deltas] == ["a"]


def test_compare_validates_threshold():
    with pytest.raises(ValueError, match="threshold"):
        compare_reports(_single("a", [0.01]), _single("a", [0.01]), threshold=0.0)


def test_format_comparison_renders_verdicts():
    old = _single("a", [0.010, 0.010, 0.010])
    new = _single("a", [0.030, 0.030, 0.030])
    table = format_comparison(compare_reports(old, new))
    assert "regression" in table and "a" in table
    assert format_comparison([]).startswith("no benchmarks in common")


# -- CLI ---------------------------------------------------------------------------


def test_cli_perf_list(capsys):
    assert main(["perf", "--list"]) == 0
    out = capsys.readouterr().out
    assert "kernel_event_churn" in out and "small_experiment" in out


def test_cli_perf_unknown_benchmark(capsys):
    assert main(["perf", "--only", "bogus"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_cli_perf_json_and_self_compare_pass(tmp_path, capsys):
    baseline = tmp_path / "BENCH_perf.json"
    assert (
        main(
            [
                "perf",
                "--only",
                "kernel_event_churn",
                "--trials",
                "2",
                "--warmup",
                "0",
                "--json",
                str(baseline),
                "--quiet",
            ]
        )
        == 0
    )
    assert "wrote" in capsys.readouterr().out
    report = report_from_json(baseline.read_text())
    assert report.names() == ["kernel_event_churn"]

    # Comparing against itself can never regress beyond threshold + noise.
    assert (
        main(
            [
                "perf",
                "--only",
                "kernel_event_churn",
                "--trials",
                "2",
                "--warmup",
                "0",
                "--compare",
                str(baseline),
                "--quiet",
            ]
        )
        == 0
    )
    assert "verdict" in capsys.readouterr().out


def test_cli_perf_compare_detects_doctored_regression(tmp_path, capsys):
    """A baseline claiming near-zero cost must make the real run regress."""
    doctored = PerfReport(
        results=[
            BenchResult(
                name="kernel_event_churn",
                description="",
                trials=[1e-9, 1e-9, 1e-9],
                digest=run_benchmarks(FAST, warmup=0, trials=1)
                .get("kernel_event_churn")
                .digest,
                warmup=0,
            )
        ]
    )
    baseline = tmp_path / "old.json"
    baseline.write_text(report_to_json(doctored))
    assert (
        main(
            [
                "perf",
                "--only",
                "kernel_event_churn",
                "--trials",
                "2",
                "--warmup",
                "0",
                "--compare",
                str(baseline),
                "--quiet",
            ]
        )
        == 1
    )
    assert "regression" in capsys.readouterr().out


def test_cli_perf_json_plus_compare_reads_baseline_before_overwriting(
    tmp_path, capsys
):
    """`--json X --compare X` must ratchet against the recorded numbers,
    not the report this invocation writes to the same path."""
    digest = (
        run_benchmarks(FAST, warmup=0, trials=1).get("kernel_event_churn").digest
    )
    doctored = PerfReport(
        results=[
            BenchResult(
                name="kernel_event_churn",
                description="",
                trials=[1e-9, 1e-9, 1e-9],
                digest=digest,
                warmup=0,
            )
        ]
    )
    baseline = tmp_path / "BENCH_perf.json"
    baseline.write_text(report_to_json(doctored))
    code = main(
        [
            "perf",
            "--only",
            "kernel_event_churn",
            "--trials",
            "2",
            "--warmup",
            "0",
            "--json",
            str(baseline),
            "--compare",
            str(baseline),
            "--quiet",
        ]
    )
    assert code == 1  # the doctored baseline was read first -> regression
    assert "regression" in capsys.readouterr().out
    # ... and the file now holds the freshly recorded (real) numbers.
    assert report_from_json(baseline.read_text()).get("kernel_event_churn").trials != [
        1e-9,
        1e-9,
        1e-9,
    ]


def test_cli_perf_compare_fails_on_digest_change(tmp_path, capsys):
    """A hot-path behaviour change must fail the ratchet even at equal speed."""
    real = run_benchmarks(FAST, warmup=0, trials=2).get("kernel_event_churn")
    forged = PerfReport(
        results=[
            BenchResult(
                name="kernel_event_churn",
                description="",
                trials=list(real.trials),
                digest="not-the-real-digest",
                warmup=0,
            )
        ]
    )
    baseline = tmp_path / "old.json"
    baseline.write_text(report_to_json(forged))
    code = main(
        [
            "perf",
            "--only",
            "kernel_event_churn",
            "--trials",
            "2",
            "--warmup",
            "0",
            "--compare",
            str(baseline),
            "--quiet",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "digest-changed" in captured.out
    assert "regenerate the baseline" in captured.err


def test_cli_perf_nondeterministic_benchmark_exits_2(monkeypatch, capsys):
    """Runner nondeterminism is an error (2), not a regression (1)."""
    from repro.bench.perf.runner import NondeterministicBenchmarkError

    def explode(*args, **kwargs):
        raise NondeterministicBenchmarkError("benchmark 'x' diverged")

    monkeypatch.setattr("repro.bench.perf.run_benchmarks", explode)
    assert main(["perf", "--only", "kernel_event_churn", "--quiet"]) == 2
    assert "diverged" in capsys.readouterr().err


def test_cli_perf_compare_missing_and_corrupt_baseline(tmp_path, capsys):
    args = ["perf", "--only", "kernel_event_churn", "--trials", "1", "--warmup", "0"]
    assert main(args + ["--compare", str(tmp_path / "absent.json"), "--quiet"]) == 2
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{broken")
    assert main(args + ["--compare", str(corrupt), "--quiet"]) == 2


def test_cli_perf_rejects_bad_flags_before_running(tmp_path, capsys):
    """--threshold and the --json destination fail fast, not post-run."""
    args = ["perf", "--only", "kernel_event_churn", "--trials", "1", "--quiet"]
    assert main(args + ["--threshold", "0"]) == 2
    assert "--threshold" in capsys.readouterr().err
    missing_dir = tmp_path / "no" / "such" / "dir" / "out.json"
    assert main(args + ["--json", str(missing_dir)]) == 2
    assert "--json" in capsys.readouterr().err
