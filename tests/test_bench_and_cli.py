"""Tests for the bench harness, experiment definitions, and the CLI."""

import pytest

from repro.bench import (
    ExperimentOutcome,
    RunRow,
    default_recommendation,
    execute_experiment,
    format_outcome,
    format_paper_comparison,
)
from repro.bench.experiments import (
    FIG10_RATE_CONTROL,
    FIG11_REORDERING,
    TABLE3_EXPECTED,
    make_synthetic,
    make_usecase,
    synthetic_spec,
    usecase_plans,
)
from repro.bench.tables import improvement
from repro.cli import main
from repro.core import BlockOptR, OptimizationKind as K
from repro.fabric import run_workload
from repro.workloads.spec import WorkloadType


class TestExperimentSpecs:
    def test_all_table3_experiments_resolvable(self):
        for name in TABLE3_EXPECTED:
            spec = synthetic_spec(name)
            assert spec.total_transactions > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            synthetic_spec("nope")

    def test_policy_experiments_use_four_orgs(self):
        assert synthetic_spec("endorsement_policy_p1").num_orgs == 4
        assert synthetic_spec("endorsement_policy_p2_skew").endorser_dist_skew == 6.0

    def test_workload_experiments_set_type(self):
        spec = synthetic_spec("workload_rangeread_heavy")
        assert spec.workload_type is WorkloadType.RANGEREAD_HEAVY

    def test_phased_experiment(self):
        spec = synthetic_spec("send_rate_500_1000")
        assert spec.send_rate_phases is not None
        assert sum(count for count, _ in spec.send_rate_phases) == spec.total_transactions

    def test_paper_value_tables_have_without_rows(self):
        for table in (FIG10_RATE_CONTROL, FIG11_REORDERING):
            for experiment, rows in table.items():
                assert "without" in rows, experiment

    def test_usecase_plans_known(self):
        for usecase in ("scm", "drm", "ehr", "voting", "loan", "synthetic"):
            assert usecase_plans(usecase)
        with pytest.raises(KeyError):
            usecase_plans("nope")

    def test_make_usecase_unknown(self):
        with pytest.raises(KeyError):
            make_usecase("nope")()


class TestHarness:
    @pytest.fixture(scope="class")
    def small_outcome(self):
        make = make_usecase("voting", total_transactions=500, seed=3)
        plans = [("data model alteration", (K.DATA_MODEL_ALTERATION,))]
        return execute_experiment(
            "test-dv", make, plans, paper={"without": (4.2, 4.6, 10.2)}
        )

    def test_outcome_rows(self, small_outcome):
        assert small_outcome.rows[0].label == "without"
        assert len(small_outcome.rows) == 2
        assert small_outcome.row("data model alteration").success_pct > (
            small_outcome.row("without").success_pct
        )

    def test_missing_row_raises(self, small_outcome):
        with pytest.raises(KeyError):
            small_outcome.row("missing")

    def test_formatting(self, small_outcome):
        text = format_outcome(small_outcome)
        assert "test-dv" in text and "without" in text
        comparison = format_paper_comparison(small_outcome)
        assert "paper tput" in comparison
        assert "4.6" in comparison

    def test_improvement_computation(self, small_outcome):
        gains = improvement(small_outcome, "data model alteration")
        assert gains["success"] > 0

    def test_default_recommendations_constructible(self):
        make = make_synthetic("default", seed=3)
        config, family, requests = make()
        spec = synthetic_spec("default", seed=3)
        spec.total_transactions = 400
        from repro.workloads import synthetic_workload

        config, deployment, requests = synthetic_workload(spec)
        network, _ = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        for kind in K:
            rec = default_recommendation(kind, report)
            assert rec.kind is kind


class TestCli:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--usecase", "voting", "--transactions", "400"]) == 0
        out = capsys.readouterr().out
        assert "without" in out

    def test_analyze_exported_log(self, tmp_path, capsys, finished_network):
        from repro.logs import extract_blockchain_log, log_to_csv

        network, _ = finished_network
        path = tmp_path / "log.csv"
        log_to_csv(extract_blockchain_log(network), path)
        assert main(["analyze", str(path)]) == 0
        assert "BlockOptR analysis" in capsys.readouterr().out

    def test_export_conversion(self, tmp_path, capsys, finished_network):
        from repro.logs import extract_blockchain_log, log_from_json, log_to_csv

        network, _ = finished_network
        csv_path = tmp_path / "log.csv"
        json_path = tmp_path / "log.json"
        log_to_csv(extract_blockchain_log(network), csv_path)
        assert main(["export", str(csv_path), "--out", str(json_path)]) == 0
        assert len(log_from_json(json_path)) == 200

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_suite_list(self, capsys):
        assert main(["suite", "--list", "--only", "fig09"]) == 0
        out = capsys.readouterr().out
        assert "fig09_block_size/block_count_50" in out
        assert "4 experiments" in out

    def test_suite_runs_and_caches(self, tmp_path, capsys):
        args = [
            "suite",
            "--only", "fig08",
            "--txs", "300",
            "--jobs", "2",
            "--cache-dir", str(tmp_path),
            "--quiet",
        ]
        assert main(args) == 0
        assert "1 experiments" in capsys.readouterr().out
        assert main(args) == 0  # warm: everything served from cache
        assert "0 simulation runs" in capsys.readouterr().out

    def test_suite_unknown_only_token(self, capsys):
        # Exit 1 (selection error), distinct from exit 2 (bad arguments):
        # a typo must fail loudly before any simulation runs.
        assert main(["suite", "--only", "fig99", "--no-cache"]) == 1
        assert "fig99" in capsys.readouterr().err

    def test_suite_only_lists_every_unmatched_token(self, capsys):
        assert main(["suite", "--only", "fig99,fig09,also_bogus", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "fig99" in err and "also_bogus" in err
        assert "known groups" in err

    def test_suite_only_blank_selection_rejected(self, capsys):
        assert main(["suite", "--only", " , ", "--no-cache"]) == 1
        assert "empty" in capsys.readouterr().err
