"""Unit tests for workload generation and transforms."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.fabric.transaction import TxRequest
from repro.workloads import (
    ControlVariables,
    WorkloadType,
    cap_rate,
    constant_rate_times,
    generate_loan_event_log,
    loan_workload,
    phased_times,
    reorder_requests,
    synthetic_workload,
)
from repro.workloads.loan import LOAN_FLOW
from repro.workloads.spec import type_mix
from repro.workloads.synthetic import zipf_exponent
from repro.workloads.usecases import (
    UseCaseSpec,
    drm_workload,
    ehr_workload,
    scm_workload,
    voting_workload,
)


class TestSchedules:
    def test_constant_rate_spacing(self):
        times = constant_rate_times(5, 10.0)
        assert times == [0.0, 0.1, 0.2, 0.3, 0.4]

    def test_constant_rate_validation(self):
        with pytest.raises(ValueError):
            constant_rate_times(5, 0.0)
        with pytest.raises(ValueError):
            constant_rate_times(-1, 10.0)

    def test_phased_times_rates(self):
        times = phased_times([(3, 10.0), (2, 1.0)])
        assert times[:3] == [0.0, 0.1, 0.2]
        assert times[3] == pytest.approx(0.3)
        assert times[4] == pytest.approx(1.3)

    def test_cap_rate_enforces_spacing(self):
        requests = [
            TxRequest(submit_time=i * 0.001, activity="a") for i in range(10)
        ]
        capped = cap_rate(requests, 100.0)
        gaps = [b.submit_time - a.submit_time for a, b in zip(capped, capped[1:])]
        assert all(gap >= 0.01 - 1e-12 for gap in gaps)

    def test_cap_rate_never_advances(self):
        requests = [TxRequest(submit_time=5.0, activity="a")]
        assert cap_rate(requests, 1.0)[0].submit_time == 5.0

    def test_cap_rate_preserves_order_and_count(self):
        requests = [
            TxRequest(submit_time=i * 0.001, activity=f"a{i}") for i in range(20)
        ]
        capped = cap_rate(requests, 50.0)
        assert [r.activity for r in capped] == [f"a{i}" for i in range(20)]

    def test_reorder_moves_front_and_back(self):
        requests = [
            TxRequest(submit_time=0.0, activity="mid"),
            TxRequest(submit_time=1.0, activity="late"),
            TxRequest(submit_time=2.0, activity="early"),
        ]
        out = reorder_requests(requests, front_activities={"early"}, back_activities={"late"})
        assert [r.activity for r in out] == ["early", "mid", "late"]
        assert [r.submit_time for r in out] == [0.0, 1.0, 2.0]

    def test_reorder_keeps_time_grid(self):
        requests = [
            TxRequest(submit_time=i * 0.5, activity="a" if i % 2 else "b")
            for i in range(10)
        ]
        out = reorder_requests(requests, front_activities={"a"})
        assert [r.submit_time for r in out] == [r.submit_time for r in requests]
        assert sorted(r.activity for r in out) == sorted(r.activity for r in requests)

    def test_reorder_conflicting_sets_rejected(self):
        with pytest.raises(ValueError):
            reorder_requests([], front_activities={"x"}, back_activities={"x"})

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_property_cap_rate_monotone(self, times):
        requests = [TxRequest(submit_time=t, activity="a") for t in times]
        capped = cap_rate(requests, 25.0)
        out_times = [r.submit_time for r in capped]
        assert out_times == sorted(out_times)
        assert len(capped) == len(requests)


class TestControlVariables:
    def test_defaults_follow_table2(self):
        spec = ControlVariables()
        assert spec.workload_type is WorkloadType.UNIFORM
        assert spec.block_count == 300
        assert spec.send_rate == 300.0
        assert spec.num_orgs == 2

    def test_policy_resolution(self):
        spec = ControlVariables(endorsement_policy="P3", num_orgs=2)
        assert spec.resolve_policy() == "OutOf(2,Org1,Org2)"

    def test_p1_requires_four_orgs(self):
        with pytest.raises(ValueError):
            ControlVariables(endorsement_policy="P1", num_orgs=2)

    def test_four_org_network_slower(self):
        two = ControlVariables(num_orgs=2).to_network_config()
        four = ControlVariables(num_orgs=4).to_network_config()
        assert four.timing.endorse_per_tx > two.timing.endorse_per_tx

    def test_tx_skew_bounds(self):
        with pytest.raises(ValueError):
            ControlVariables(tx_dist_skew=1.5)

    def test_type_mix_sums_to_one(self):
        for wt in WorkloadType:
            assert sum(type_mix(wt).values()) == pytest.approx(1.0)

    def test_heavy_mix_dominates(self):
        mix = type_mix(WorkloadType.UPDATE_HEAVY)
        assert mix["update"] == pytest.approx(0.7)

    def test_zipf_exponent_mapping(self):
        assert zipf_exponent(1.0) == 0.0
        assert zipf_exponent(2.0) == 1.0
        with pytest.raises(ValueError):
            zipf_exponent(0.5)


class TestSyntheticWorkload:
    def test_count_and_contract(self):
        spec = ControlVariables(total_transactions=200)
        _, deployment, requests = synthetic_workload(spec)
        assert len(requests) == 200
        assert all(r.contract == "genchain" for r in requests)

    def test_mix_approximately_respected(self):
        spec = ControlVariables(
            total_transactions=2000, workload_type=WorkloadType.READ_HEAVY
        )
        _, _, requests = synthetic_workload(spec)
        counts = Counter(r.activity for r in requests)
        assert counts["read"] / 2000 == pytest.approx(0.7, abs=0.05)

    def test_inserts_use_fresh_keys(self):
        spec = ControlVariables(
            total_transactions=500, workload_type=WorkloadType.INSERT_HEAVY
        )
        _, _, requests = synthetic_workload(spec)
        insert_keys = [r.args[0] for r in requests if r.activity == "write"]
        assert len(insert_keys) == len(set(insert_keys))

    def test_tx_skew_pins_org1(self):
        spec = ControlVariables(total_transactions=1000, tx_dist_skew=0.7)
        _, _, requests = synthetic_workload(spec)
        pinned = sum(1 for r in requests if r.invoker_org == "Org1")
        assert 0.6 <= pinned / 1000 <= 0.8

    def test_deterministic_per_seed(self):
        spec = ControlVariables(total_transactions=300, seed=13)
        _, _, first = synthetic_workload(spec)
        _, _, second = synthetic_workload(ControlVariables(total_transactions=300, seed=13))
        assert [(r.activity, r.args) for r in first] == [
            (r.activity, r.args) for r in second
        ]

    def test_phased_send_rate(self):
        spec = ControlVariables(
            total_transactions=100, send_rate_phases=[(50, 100.0), (50, 10.0)]
        )
        _, _, requests = synthetic_workload(spec)
        assert requests[-1].submit_time > requests[49].submit_time + 4.0

    def test_phase_count_mismatch_rejected(self):
        spec = ControlVariables(
            total_transactions=100, send_rate_phases=[(10, 100.0)]
        )
        with pytest.raises(ValueError):
            synthetic_workload(spec)


class TestUseCaseWorkloads:
    def test_scm_phase_order(self):
        _, _, requests = scm_workload(
            UseCaseSpec(total_transactions=600), anomaly_fraction=0.0, jitter_fraction=0.0
        )
        main = [r for r in requests if r.activity in ("pushASN", "ship", "queryASN", "unload")]
        first_ship = next(i for i, r in enumerate(main) if r.activity == "ship")
        assert all(r.activity == "pushASN" for r in main[:first_ship])

    def test_scm_anomalies_race_prerequisite(self):
        _, _, requests = scm_workload(
            UseCaseSpec(total_transactions=600), anomaly_fraction=1.0, jitter_fraction=0.0
        )
        ordered = sorted(requests, key=lambda r: r.submit_time)
        by_product: dict[str, dict[str, int]] = {}
        for index, request in enumerate(ordered):
            if request.activity in ("pushASN", "ship", "unload"):
                by_product.setdefault(request.args[0], {})[request.activity] = index
        raced = 0
        for steps in by_product.values():
            if "ship" in steps and "pushASN" in steps:
                if 0 < steps["ship"] - steps["pushASN"] < 400:
                    raced += 1
        assert raced > 0

    def test_drm_play_fraction(self):
        _, _, requests = drm_workload(UseCaseSpec(total_transactions=1000))
        plays = sum(1 for r in requests if r.activity == "play")
        assert 0.6 <= plays / 1000 <= 0.8

    def test_ehr_update_fraction(self):
        _, _, requests = ehr_workload(UseCaseSpec(total_transactions=1000))
        updates = sum(1 for r in requests if r.activity in ("grantAccess", "revokeAccess"))
        assert 0.6 <= updates / 1000 <= 0.8

    def test_voting_phases(self):
        _, _, requests = voting_workload(
            UseCaseSpec(), query_count=100, vote_count=200
        )
        assert sum(1 for r in requests if r.activity == "queryParties") == 100
        assert sum(1 for r in requests if r.activity == "vote") == 200
        assert requests[-1].activity == "endElection"
        assert requests[-2].activity == "seeResults"

    def test_voting_unique_voters(self):
        _, _, requests = voting_workload(UseCaseSpec(), query_count=10, vote_count=300)
        voters = [r.args[1] for r in requests if r.activity == "vote"]
        assert len(voters) == len(set(voters))


class TestLoanWorkload:
    def test_event_log_structure(self):
        events = generate_loan_event_log(num_applications=50, seed=3)
        assert len(events) == 50 * (len(LOAN_FLOW) + 1)
        by_app: dict[str, list[str]] = {}
        for event in sorted(events, key=lambda e: e.order):
            by_app.setdefault(event.application_id, []).append(event.activity)
        for activities in by_app.values():
            assert activities[: len(LOAN_FLOW)] == list(LOAN_FLOW)
            assert activities[-1].endswith("Application")

    def test_events_interleave(self):
        events = generate_loan_event_log(num_applications=50, seed=3)
        first_50 = {e.application_id for e in sorted(events, key=lambda e: e.order)[:50]}
        assert len(first_50) > 5  # many cases in flight at once

    def test_employee_skew(self):
        events = generate_loan_event_log(num_applications=300, seed=3)
        counts = Counter(e.employee_id for e in events)
        top_two = counts.most_common(2)
        assert top_two[0][0] == "EMP001"
        assert top_two[0][1] > 2 * top_two[1][1]

    def test_workload_rate(self):
        events = generate_loan_event_log(num_applications=20, seed=3)
        _, _, requests = loan_workload(UseCaseSpec(seed=3), events=events, send_rate=10.0)
        assert len(requests) == len(events)
        assert requests[-1].submit_time == pytest.approx((len(events) - 1) / 10.0)
