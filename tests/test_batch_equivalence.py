"""Differential equivalence harness for the batch kernel tier (ISSUE 9).

:class:`repro.sim.batch.BatchKernel` claims *bit-identical* behaviour to
the reference :class:`repro.sim.kernel.Kernel`.  This file is the proof
obligation, at three levels:

* **Kernel level** — hypothesis drives both kernels through the same
  randomized program (mixed priorities, cancellations, follow-up events
  scheduled from inside callbacks, ``run(until)`` / ``run(max_events)``
  pauses with between-run scheduling) and demands identical event traces,
  clocks and counters.
* **Run level** — random :class:`~repro.workloads.spec.ControlVariables`
  × scenario × seed compositions must produce the same kernel trace, the
  same :func:`~repro.scenario.engine.run_digest` and the same forensics
  digest under either tier, for both the batch and the streaming record
  pipeline.
* **Golden level** — the committed golden digests (fuzzer-promoted
  scenarios, the scenario-fault headline/forensics goldens) must hold
  byte-for-byte when recomputed under the batch tier.  No batch-specific
  golden files exist on purpose: one set of goldens, two tiers.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.batch import KERNEL_ENV, BatchKernel, make_kernel, resolve_kernel_tier
from repro.sim.kernel import KERNEL_TIERS, Kernel

REPO = Path(__file__).resolve().parent.parent


# -- tier selection -------------------------------------------------------------------


class TestTierSelection:
    def test_default_is_the_reference_tier(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel_tier(None) == "reference"

    def test_environment_selects_the_batch_tier(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "batch")
        assert resolve_kernel_tier(None) == "batch"

    def test_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "batch")
        assert resolve_kernel_tier("reference") == "reference"

    def test_unknown_tier_names_its_source(self, monkeypatch):
        with pytest.raises(ValueError, match="kernel_tier"):
            resolve_kernel_tier("turbo")
        monkeypatch.setenv(KERNEL_ENV, "turbo")
        with pytest.raises(ValueError, match=KERNEL_ENV):
            resolve_kernel_tier(None)

    def test_make_kernel_covers_every_tier(self):
        kinds = {tier: type(make_kernel(tier)) for tier in KERNEL_TIERS}
        assert kinds["reference"] is Kernel
        assert kinds["batch"] is BatchKernel
        with pytest.raises(ValueError, match="turbo"):
            make_kernel("turbo")

def test_network_config_validates_kernel_tier():
    from conftest import small_config

    config = small_config(kernel_tier="batch")
    assert config.copy().kernel_tier == "batch"
    with pytest.raises(ValueError, match="kernel_tier"):
        small_config(kernel_tier="turbo")


# -- kernel-level differential fuzz ---------------------------------------------------

#: One scheduled event: (time, priority, behaviour).  Behaviour 1 cancels
#: the oldest still-pending tracked event from inside the callback;
#: behaviour 2 schedules a follow-up event mid-run; 0 and 3-5 just fire.
_ops = st.lists(
    st.tuples(
        st.floats(0.0, 40.0, allow_nan=False, allow_infinity=False),
        st.sampled_from([-2, -1, 0, 1]),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=40,
)


def _drive(kernel: Kernel, ops, runmode: int):
    """Run one deterministic program against ``kernel``; return observables.

    The program depends only on ``ops`` and the order events fire in, so
    two kernels that fire identically produce identical logs — and two
    kernels that diverge anywhere produce diverging logs from that point.
    """
    trace = kernel.enable_trace()
    fired: list[tuple] = []
    tracked: list = []

    def make_action(index: int, behaviour: int):
        def action() -> None:
            fired.append((index, kernel.now, kernel.events_processed, kernel.pending()))
            if behaviour == 1:
                while tracked:
                    event = tracked.pop(0)
                    if not event.popped and not event.cancelled:
                        event.cancel()
                        break
            elif behaviour == 2:
                # Follow-up scheduled mid-run: lands on the heap path of
                # the batch kernel, the plain heap of the reference one.
                tracked.append(
                    kernel.schedule(
                        kernel.now + 1.25, make_action(1000 + index, 0), priority=index % 3 - 1
                    )
                )

        return action

    times = []
    for index, (time, priority, behaviour) in enumerate(ops):
        tracked.append(kernel.schedule(time, make_action(index, behaviour), priority))
        times.append(time)
    # A deterministic slice of pre-run cancellations exercises the
    # cancelled-event skip in the staged drain.
    for event in tracked[:: 7]:
        event.cancel()

    if runmode == 0:
        kernel.run()
    elif runmode == 1:
        kernel.run(until=sorted(times)[len(times) // 2])
        kernel.run()
    elif runmode == 2:
        kernel.run(max_events=max(1, len(ops) // 2))
        kernel.run()
    else:
        kernel.run(until=min(times))
        # Scheduling while paused: staged by the batch kernel, heaped by
        # the reference one — both must re-merge identically.
        kernel.schedule(kernel.now + 0.5, make_action(2000, 0), priority=-1)
        kernel.run()

    return fired, tuple(trace), kernel.now, kernel.events_processed, kernel.pending()


@settings(max_examples=120, deadline=None)
@given(_ops, st.integers(0, 3))
def test_random_kernel_programs_are_tier_identical(ops, runmode):
    reference = _drive(Kernel(), ops, runmode)
    batch = _drive(BatchKernel(), ops, runmode)
    assert batch == reference


def test_staged_schedule_rejects_past_times():
    kernel = BatchKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert kernel.now == 1.0
    with pytest.raises(ValueError, match="before now"):
        kernel.schedule(0.5, lambda: None)


# -- run-level differential fuzz ------------------------------------------------------


def _tiered_execution(control, scenario_name: str | None, kernel_tier: str):
    """One full run of ``control`` under ``kernel_tier``; returns observables."""
    from repro.analysis import forensics_report, report_digest
    from repro.fabric.network import FabricNetwork
    from repro.scenario import get_scenario, run_digest
    from repro.workloads.synthetic import synthetic_workload

    config, deployment, requests = synthetic_workload(control)
    config.kernel_tier = kernel_tier
    scenario = get_scenario(scenario_name) if scenario_name else None
    network = FabricNetwork(config, deployment.contracts, scenario=scenario)
    trace = network.kernel.enable_trace()
    network.run(requests)
    return tuple(trace), run_digest(network), report_digest(forensics_report(network))


_controls = st.builds(
    dict,
    seed=st.integers(0, 9999),
    key_dist_skew=st.sampled_from([1.0, 2.0]),
    send_rate=st.sampled_from([200.0, 500.0]),
    block_count=st.sampled_from([50, 300]),
    tx_dist_skew=st.sampled_from([0.0, 0.7]),
    workload=st.sampled_from(["uniform", "update_heavy", "rangeread_heavy"]),
)


@settings(max_examples=6, deadline=None)
@given(_controls, st.sampled_from([None, "crash_burst", "conflict_storm"]))
def test_random_compositions_are_tier_identical(knobs, scenario_name):
    from repro.workloads.spec import ControlVariables, WorkloadType

    control = ControlVariables(
        workload_type=WorkloadType(knobs["workload"]),
        key_dist_skew=knobs["key_dist_skew"],
        send_rate=knobs["send_rate"],
        block_count=knobs["block_count"],
        tx_dist_skew=knobs["tx_dist_skew"],
        total_transactions=140,
        num_keys=200,
        seed=knobs["seed"],
    )
    reference = _tiered_execution(control, scenario_name, "reference")
    batch = _tiered_execution(control, scenario_name, "batch")
    assert batch[0] == reference[0], "kernel event traces diverged across tiers"
    assert batch[1] == reference[1], "run digests diverged across tiers"
    assert batch[2] == reference[2], "forensics digests diverged across tiers"


# -- streaming pipeline across tiers --------------------------------------------------


def _streamed_metrics(kernel_tier: str):
    """Streamed-run metrics + forensics digest for the fixed bundle."""
    from repro.analysis.forensics import ForensicsAccumulator
    from repro.bench.experiments import make_synthetic
    from repro.core.metrics import MetricsAccumulator
    from repro.fabric.network import FabricNetwork
    from repro.logs.stream import RunStream

    config, family, requests = make_synthetic(
        "default", seed=13, total_transactions=400
    )()
    config.kernel_tier = kernel_tier
    stream = RunStream()
    metrics = MetricsAccumulator()
    forensics = ForensicsAccumulator()
    stream.add_record_consumer(metrics)
    stream.add_transaction_consumer(forensics)
    network = FabricNetwork(config, family.deploy().contracts, stream=stream)
    stats = network.run_streamed(
        sorted(requests, key=lambda request: request.submit_time)
    )
    metrics.config = stream.config
    report = forensics.finish(scenario="baseline", mitigation="none")
    return metrics.finish(), report.to_dict(), dataclasses.asdict(stats)


def test_streamed_metrics_are_tier_identical():
    reference = _streamed_metrics("reference")
    batch = _streamed_metrics("batch")
    assert batch[0] == reference[0], "streamed metrics diverged across tiers"
    assert batch[1] == reference[1], "streamed forensics diverged across tiers"
    assert batch[2] == reference[2]


def test_streamed_equals_batch_extraction_under_the_batch_tier():
    """The stream/batch-pipeline equivalence the seed proved for the
    reference kernel must also hold inside the batch tier (where the
    block-at-a-time fan-out path is active)."""
    from repro.bench.experiments import make_synthetic
    from repro.core.metrics import compute_metrics
    from repro.fabric.network import run_workload
    from repro.logs.extract import extract_blockchain_log

    config, family, requests = make_synthetic(
        "default", seed=13, total_transactions=400
    )()
    config.kernel_tier = "batch"
    network, _ = run_workload(config, family.deploy().contracts, requests)
    batch_metrics = compute_metrics(extract_blockchain_log(network))
    assert _streamed_metrics("batch")[0] == batch_metrics


# -- golden pins under the batch tier -------------------------------------------------


class TestBatchTierGoldens:
    """The committed goldens hold under ``REPRO_KERNEL=batch`` — same files,
    no batch-specific copies."""

    def test_promoted_scenario_digests_hold_under_batch(self):
        from repro.bench.experiments import make_synthetic
        from repro.fabric.network import FabricNetwork
        from repro.scenario import get_scenario, run_digest

        golden = json.loads(
            (REPO / "tests" / "golden" / "fuzzed__library_digests.json").read_text()
        )
        for name, expected in golden["digests"].items():
            config, family, requests = make_synthetic(
                golden["base"],
                seed=golden["seed"],
                total_transactions=golden["total_transactions"],
            )()
            config.kernel_tier = "batch"
            network = FabricNetwork(
                config, family.deploy().contracts, scenario=get_scenario(name)
            )
            network.run(requests)
            assert run_digest(network) == expected, (
                f"promoted scenario {name} diverged under the batch tier"
            )

    @pytest.mark.parametrize(
        "exp_id", ["scenario_faults/crash_burst", "scenario_faults/partial_outage"]
    )
    def test_scenario_fault_headlines_hold_under_batch(self, exp_id, monkeypatch):
        import test_golden_figures as golden_mod

        monkeypatch.setenv(KERNEL_ENV, "batch")
        golden = json.loads(golden_mod._golden_path(exp_id).read_text())
        measured = golden_mod._compute(exp_id)
        assert measured["rows"] == golden["rows"], (
            f"{exp_id}: headline numbers diverged under the batch tier"
        )
        assert measured["recommendations"] == golden["recommendations"]

    def test_scenario_fault_forensics_hold_under_batch(self, monkeypatch):
        import test_golden_figures as golden_mod

        monkeypatch.setenv(KERNEL_ENV, "batch")
        exp_id = golden_mod.FORENSICS_GOLDEN
        golden = json.loads(golden_mod._forensics_path(exp_id).read_text())
        measured = golden_mod._compute_forensics(exp_id)
        assert measured["report"] == golden["report"], (
            f"{exp_id}: the forensics report diverged under the batch tier"
        )


# -- CLI tier selection ---------------------------------------------------------------


def test_cli_kernel_flag_is_tier_transparent(capsys, monkeypatch):
    """``--kernel batch`` must not change a single byte of CLI output."""
    import os

    from repro.cli import main

    before = os.environ.get(KERNEL_ENV)
    args = ["scenario", "--name", "crash_burst", "--txs", "150", "--seed", "3"]
    assert main(["--kernel", "reference", *args]) == 0
    reference_out = capsys.readouterr().out
    assert main(["--kernel", "batch", *args]) == 0
    batch_out = capsys.readouterr().out
    assert batch_out == reference_out
    assert os.environ.get(KERNEL_ENV) == before, "env override leaked"


def test_cli_rejects_unknown_kernel_tier(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["--kernel", "turbo", "scenario", "--list"])
    assert "invalid choice" in capsys.readouterr().err


# -- fuzzer corpus under the batch tier -----------------------------------------------


def test_fuzz_oracles_include_batch_equivalence():
    from repro.scenario.fuzz import ORACLES

    assert "batch_equivalence" in ORACLES


def test_one_corpus_entry_is_batch_clean():
    """A committed fuzz composition re-runs clean through the
    batch_equivalence oracle (the full corpus replay lives in
    test_fuzz.py; this pins the oracle wiring itself)."""
    from repro.scenario.fuzz import FuzzConfig, FuzzHarness
    from repro.scenario.spec import ScenarioSpec

    entry = json.loads(
        (REPO / "tests" / "corpus" / "fuzz" / "fuzz_11_0000.json").read_text()
    )
    harness = FuzzHarness(FuzzConfig(seed=11, budget=1))
    spec = ScenarioSpec.from_json(json.dumps(entry["spec"]))
    assert harness.check_batch_equivalence(spec) == []
