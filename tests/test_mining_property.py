"""Property-based tests for the mining layer (ISSUE 2, satellite 1).

Hypothesis generates event logs — both unconstrained random traces and
logs sampled from random loop-free sequential process models (where the
alpha algorithm's classical rediscovery guarantee applies) — and checks:

* DFG / footprint consistency: the footprint relations are exactly the
  four classical functions of the directly-follows counts, with the
  ``->`` / ``<-`` antisymmetry and ``||`` / ``#`` symmetry they imply;
* the alpha and heuristics miners replay their own logs: alpha nets
  accept every generating trace of a structured log, heuristics keeps a
  dependency edge for every observed directly-follows pair of one;
* conformance measures are bounded in [0, 1] for arbitrary inputs.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.mining.alpha import alpha_miner
from repro.mining.conformance import footprint_conformance, token_replay_fitness
from repro.mining.dfg import DirectlyFollowsGraph
from repro.mining.footprint import FootprintMatrix, Relation
from repro.mining.heuristics import heuristics_miner

ALPHABET = ["a", "b", "c", "d", "e"]

#: Arbitrary traces over a small alphabet (loops and noise allowed).
traces_strategy = st.lists(
    st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=8).map(tuple),
    min_size=1,
    max_size=12,
)


@st.composite
def structured_logs(draw):
    """A log sampled from a random loop-free sequential process model.

    The model is a sequence of 2-6 slots; each slot is either one fixed
    activity or an XOR choice between two.  All slot alphabets are
    disjoint and every variant appears in the log, which is the
    completeness condition under which the alpha algorithm provably
    rediscovers the model — so its net must replay the log perfectly.
    """
    slot_count = draw(st.integers(min_value=2, max_value=6))
    symbols = [f"t{i}" for i in range(2 * slot_count)]
    slots: list[tuple[str, ...]] = []
    for index in range(slot_count):
        pool = symbols[2 * index : 2 * index + 2]
        if draw(st.booleans()):
            slots.append((pool[0],))
        else:
            slots.append(tuple(pool))

    def expand(prefix: list[str], remaining: list[tuple[str, ...]]) -> list[tuple[str, ...]]:
        if not remaining:
            return [tuple(prefix)]
        out = []
        for choice in remaining[0]:
            out.extend(expand(prefix + [choice], remaining[1:]))
        return out

    variants = expand([], slots)
    repeats = draw(st.integers(min_value=1, max_value=3))
    return variants * repeats


# -- DFG / footprint consistency ------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(traces=traces_strategy)
def test_dfg_counts_match_manual_enumeration(traces):
    dfg = DirectlyFollowsGraph.from_traces(traces)
    expected = Counter()
    for trace in traces:
        for left, right in zip(trace, trace[1:]):
            expected[(left, right)] += 1
    assert dfg.counts == expected
    assert sum(dfg.counts.values()) == sum(len(t) - 1 for t in traces)
    assert sum(dfg.start_activities.values()) == len(traces)
    assert sum(dfg.end_activities.values()) == len(traces)
    # Start/end activities must be observed activities.
    assert set(dfg.start_activities) <= set(dfg.activity_counts)
    assert set(dfg.end_activities) <= set(dfg.activity_counts)


@settings(max_examples=50, deadline=None)
@given(traces=traces_strategy)
def test_footprint_is_the_classical_function_of_the_dfg(traces):
    dfg = DirectlyFollowsGraph.from_traces(traces)
    footprint = FootprintMatrix.from_dfg(dfg)
    for a in footprint.activities:
        for b in footprint.activities:
            forward, backward = dfg.follows(a, b) > 0, dfg.follows(b, a) > 0
            expected = (
                Relation.PARALLEL
                if forward and backward
                else Relation.CAUSALITY
                if forward
                else Relation.REVERSE
                if backward
                else Relation.CHOICE
            )
            assert footprint.relation(a, b) is expected


@settings(max_examples=50, deadline=None)
@given(traces=traces_strategy)
def test_footprint_symmetry_laws(traces):
    footprint = FootprintMatrix.from_traces(traces)
    mirror = {
        Relation.CAUSALITY: Relation.REVERSE,
        Relation.REVERSE: Relation.CAUSALITY,
        Relation.PARALLEL: Relation.PARALLEL,
        Relation.CHOICE: Relation.CHOICE,
    }
    for a in footprint.activities:
        for b in footprint.activities:
            assert footprint.relation(b, a) is mirror[footprint.relation(a, b)]
    # A footprint agrees with itself perfectly.
    assert footprint_conformance(footprint, footprint) == 1.0


# -- miners replay their own logs -----------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(log=structured_logs())
def test_alpha_net_replays_its_own_structured_log(log):
    net = alpha_miner(log)
    for trace in log:
        assert net.allows(trace), f"alpha net rejects generating trace {trace}"
    assert token_replay_fitness(net, log) == 1.0


@settings(max_examples=30, deadline=None)
@given(log=structured_logs())
def test_heuristics_graph_covers_its_own_structured_log(log):
    # Threshold 0.5 admits any edge never observed in reverse (measure
    # f/(f+1) >= 0.5 from the first observation), which is every edge of
    # a loop-free sequential log.
    graph = heuristics_miner(log, dependency_threshold=0.5)
    dfg = DirectlyFollowsGraph.from_traces(log)
    for (a, b), count in dfg.counts.items():
        if count > 0:
            assert (a, b) in graph.edges, f"dependency edge {(a, b)} missing"
    assert not graph.has_loop()


@settings(max_examples=30, deadline=None)
@given(traces=traces_strategy)
def test_alpha_fitness_on_arbitrary_logs_bounded(traces):
    net = alpha_miner(traces)
    fitness = token_replay_fitness(net, traces)
    assert 0.0 <= fitness <= 1.0


# -- conformance bounded in [0, 1] ----------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(reference=traces_strategy, observed=traces_strategy)
def test_footprint_conformance_bounded_and_symmetric(reference, observed):
    ref = FootprintMatrix.from_traces(reference)
    obs = FootprintMatrix.from_traces(observed)
    value = footprint_conformance(ref, obs)
    assert 0.0 <= value <= 1.0
    assert footprint_conformance(obs, ref) == value


@settings(max_examples=30, deadline=None)
@given(model_log=traces_strategy, replay_log=traces_strategy)
def test_cross_log_replay_fitness_bounded(model_log, replay_log):
    net = alpha_miner(model_log)
    fitness = token_replay_fitness(net, replay_log)
    assert 0.0 <= fitness <= 1.0
