"""Unit tests for all smart contracts and their optimized variants."""

import pytest

from repro.contracts import (
    AlteredLoanContract,
    AlteredVotingContract,
    DeltaDrmContract,
    DrmContract,
    EhrContract,
    GenChainContract,
    LoanContract,
    PrunedEhrContract,
    PrunedScmContract,
    ScmContract,
    VotingContract,
    partitioned_drm,
)
from repro.contracts.scm import ASN_PUSHED, SHIPPED, UNLOADED, product_key
from repro.fabric.chaincode import ChaincodeAbort, ChaincodeContext, UnknownFunctionError
from repro.fabric.state import WorldState


def make_ctx(contract, nonce="tx-1"):
    state = WorldState(contract.name)
    contract.setup(state)
    return state, lambda: ChaincodeContext(state=state, invoker="c0", nonce=nonce)


def commit(ctx, state, version=(1, 0)):
    """Apply a context's writes to state (simulating successful validation)."""
    from repro.fabric.transaction import Version

    for key, value in ctx.rwset.writes.items():
        state.put(key, value, Version(*version))


class TestGenChain:
    def test_setup_populates_keys(self):
        contract = GenChainContract(num_keys=10)
        state, _ = make_ctx(contract)
        assert len(state) == 10

    def test_update_writes_supplied_value(self):
        contract = GenChainContract(num_keys=5)
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "update", (contract.key(0), 42))
        assert ctx.rwset.writes[contract.key(0)] == 42
        assert contract.key(0) in ctx.rwset.reads  # read-modify-write

    def test_delete_reads_then_deletes(self):
        contract = GenChainContract(num_keys=5)
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "delete", (contract.key(1),))
        from repro.fabric.transaction import TxType

        assert ctx.rwset.derive_type() is TxType.DELETE

    def test_range_read_records_query(self):
        contract = GenChainContract(num_keys=30)
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        result = contract.invoke(ctx, "range_read", (contract.key(0), contract.key(10)))
        assert len(result) == 10
        assert len(ctx.rwset.range_queries) == 1

    def test_invalid_key_count(self):
        with pytest.raises(ValueError):
            GenChainContract(num_keys=0)


class TestScm:
    def test_normal_flow(self):
        contract = ScmContract()
        state, ctx_factory = make_ctx(contract)
        for step, expected in [("pushASN", ASN_PUSHED), ("ship", SHIPPED), ("unload", UNLOADED)]:
            ctx = ctx_factory()
            contract.invoke(ctx, step, ("P1",))
            commit(ctx, state)
            assert state.get(product_key("P1")).value == expected

    def test_illogical_ship_commits_read_only(self):
        contract = ScmContract()
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "ship", ("P1",))  # no pushASN
        assert not ctx.rwset.writes  # provenance-only, read committed

    def test_pruned_ship_aborts(self):
        contract = PrunedScmContract()
        _, ctx_factory = make_ctx(contract)
        with pytest.raises(ChaincodeAbort):
            contract.invoke(ctx_factory(), "ship", ("P1",))

    def test_pruned_unload_aborts_without_ship(self):
        contract = PrunedScmContract()
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "pushASN", ("P1",))
        commit(ctx, state)
        with pytest.raises(ChaincodeAbort):
            contract.invoke(ctx_factory(), "unload", ("P1",))

    def test_audit_write_set_disjoint_from_product(self):
        contract = ScmContract()
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "pushASN", ("P1",))
        commit(ctx, state)
        audit_ctx = ctx_factory()
        contract.invoke(audit_ctx, "updateAuditInfo", ("P1",))
        assert product_key("P1") in audit_ctx.rwset.reads
        assert set(audit_ctx.rwset.writes) == {"audit:P1"}

    def test_query_products_range(self):
        contract = ScmContract(num_products=5)
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        result = contract.invoke(ctx, "queryProducts", ("P00000", "P00003"))
        assert len(result) == 3


class TestDrm:
    def test_play_increments(self):
        contract = DrmContract(num_tracks=3)
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "play", ("M00000",))
        assert ctx.rwset.writes["music:M00000"]["plays"] == 1

    def test_calc_revenue_uses_play_count(self):
        contract = DrmContract(num_tracks=3)
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "play", ("M00000",))
        commit(ctx, state)
        ctx2 = ctx_factory()
        revenue = contract.invoke(ctx2, "calcRevenue", ("M00000",))
        assert revenue == pytest.approx(0.01)

    def test_delta_play_is_blind_write_to_unique_key(self):
        contract = DeltaDrmContract(num_tracks=3)
        _, ctx_factory = make_ctx(contract)
        ctx_a = ctx_factory()
        contract.invoke(ctx_a, "play", ("M00000",))
        assert not ctx_a.rwset.reads
        ctx_b = ChaincodeContext(state=ctx_a.state, nonce="tx-2")
        contract.invoke(ctx_b, "play", ("M00000",))
        assert set(ctx_a.rwset.writes) != set(ctx_b.rwset.writes)

    def test_delta_calc_revenue_aggregates(self):
        contract = DeltaDrmContract(num_tracks=3)
        state, ctx_factory = make_ctx(contract)
        for i in range(4):
            ctx = ChaincodeContext(state=state, nonce=f"tx-{i}")
            contract.invoke(ctx, "play", ("M00000",))
            commit(ctx, state, version=(1, i))
        ctx = ctx_factory()
        revenue = contract.invoke(ctx, "calcRevenue", ("M00000",))
        assert revenue == pytest.approx(0.04)

    def test_delta_cost_factors(self):
        contract = DeltaDrmContract()
        assert contract.cost_factor("calcRevenue") > contract.cost_factor("play")

    def test_partitioned_routing_and_isolation(self):
        contracts, routing = partitioned_drm(num_tracks=2)
        names = {c.name for c in contracts}
        assert names == {"drm_play", "drm_meta"}
        assert routing["play"] == "drm_play"
        assert routing["viewMetaData"] == "drm_meta"
        play = next(c for c in contracts if c.name == "drm_play")
        meta = next(c for c in contracts if c.name == "drm_meta")
        # Misrouted activities fail loudly.
        state = WorldState("drm_play")
        play.setup(state)
        with pytest.raises(UnknownFunctionError):
            play.invoke(ChaincodeContext(state=state), "viewMetaData", ("M00000",))
        state_m = WorldState("drm_meta")
        meta.setup(state_m)
        ctx = ChaincodeContext(state=state_m)
        assert meta.invoke(ctx, "viewMetaData", ("M00000",)) is not None


class TestEhr:
    def test_grant_then_query(self):
        contract = EhrContract(num_patients=2)
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "grantAccess", ("PT00000", "INST01"))
        commit(ctx, state)
        ctx2 = ctx_factory()
        record = contract.invoke(ctx2, "queryRecord", ("PT00000", "INST01"))
        assert record is not None

    def test_query_without_grant_denied(self):
        contract = EhrContract(num_patients=2)
        _, ctx_factory = make_ctx(contract)
        assert contract.invoke(ctx_factory(), "queryRecord", ("PT00000", "INST01")) is None

    def test_revoke_without_grant_read_only(self):
        contract = EhrContract(num_patients=2)
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "revokeAccess", ("PT00000", "INST01"))
        assert not ctx.rwset.writes

    def test_pruned_revoke_aborts(self):
        contract = PrunedEhrContract(num_patients=2)
        _, ctx_factory = make_ctx(contract)
        with pytest.raises(ChaincodeAbort):
            contract.invoke(ctx_factory(), "revokeAccess", ("PT00000", "INST01"))

    def test_grant_revoke_roundtrip(self):
        contract = EhrContract(num_patients=2)
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "grantAccess", ("PT00000", "INST01"))
        commit(ctx, state)
        ctx = ctx_factory()
        contract.invoke(ctx, "revokeAccess", ("PT00000", "INST01"))
        commit(ctx, state, version=(2, 0))
        assert state.get("patient:PT00000").value == {"access": []}


class TestVoting:
    def test_vote_updates_tally_and_voter(self):
        contract = VotingContract(num_parties=2)
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "vote", ("PARTY00", "V1"))
        assert ctx.rwset.writes["party:PARTY00"]["votes"] == 1
        assert ctx.rwset.writes["voter:V1"] == "PARTY00"

    def test_altered_vote_touches_only_voter_key(self):
        contract = AlteredVotingContract(num_parties=2)
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "vote", ("PARTY00", "V1"))
        assert set(ctx.rwset.writes) == {"voter:V1"}
        assert set(ctx.rwset.reads) == {"voter:V1"}

    def test_altered_double_vote_rejected(self):
        contract = AlteredVotingContract(num_parties=2)
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "vote", ("PARTY00", "V1"))
        commit(ctx, state)
        ctx2 = ctx_factory()
        contract.invoke(ctx2, "vote", ("PARTY01", "V1"))
        assert not ctx2.rwset.writes  # single vote per voter

    def test_altered_results_aggregate_voters(self):
        contract = AlteredVotingContract(num_parties=2)
        state, ctx_factory = make_ctx(contract)
        for i, party in enumerate(["PARTY00", "PARTY00", "PARTY01"]):
            ctx = ctx_factory()
            contract.invoke(ctx, "vote", (party, f"V{i}"))
            commit(ctx, state, version=(1, i))
        results = contract.invoke(ctx_factory(), "seeResults", ())
        assert results == {"PARTY00": 2, "PARTY01": 1}

    def test_end_election(self):
        contract = VotingContract()
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "endElection", ())
        assert ctx.rwset.writes["election:state"] == "closed"


class TestLoan:
    def test_baseline_keys_by_employee(self):
        contract = LoanContract()
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "createApplication", ("APP1", "EMP001", "home", 100.0))
        assert set(ctx.rwset.writes) == {"employee:EMP001"}

    def test_baseline_portfolio_accumulates(self):
        contract = LoanContract()
        state, ctx_factory = make_ctx(contract)
        for i, app in enumerate(["APP1", "APP2"]):
            ctx = ctx_factory()
            contract.invoke(ctx, "createApplication", (app, "EMP001", "home", 1.0))
            commit(ctx, state, version=(1, i))
        portfolio = state.get("employee:EMP001").value
        assert [e["application"] for e in portfolio] == ["APP1", "APP2"]

    def test_status_transitions_update_entry(self):
        contract = LoanContract()
        state, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "createApplication", ("APP1", "EMP001"))
        commit(ctx, state)
        ctx = ctx_factory()
        contract.invoke(ctx, "approveApplication", ("APP1", "EMP001"))
        commit(ctx, state, version=(2, 0))
        portfolio = state.get("employee:EMP001").value
        assert portfolio[0]["status"] == "approveApplication"

    def test_altered_keys_by_application(self):
        contract = AlteredLoanContract()
        _, ctx_factory = make_ctx(contract)
        ctx = ctx_factory()
        contract.invoke(ctx, "createApplication", ("APP1", "EMP001", "car", 5.0))
        assert set(ctx.rwset.writes) == {"application:APP1"}

    def test_altered_query_employee_scans(self):
        contract = AlteredLoanContract()
        state, ctx_factory = make_ctx(contract)
        for i, (app, emp) in enumerate([("APP1", "EMP001"), ("APP2", "EMP002"), ("APP3", "EMP001")]):
            ctx = ctx_factory()
            contract.invoke(ctx, "createApplication", (app, emp))
            commit(ctx, state, version=(1, i))
        matches = contract.invoke(ctx_factory(), "queryEmployee", ("EMP001",))
        assert len(matches) == 2
        assert contract.cost_factor("queryEmployee") > 1.0
