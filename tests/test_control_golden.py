"""Golden-file regression test for the slo_guardian comparison.

Pins, at a fixed 800-transaction budget, the headline numbers of every
``slo_guardian`` registry pair (controller off vs. on), the number of
decisions the guardian took, and the sha256 digest of its control
timeline (``tests/golden/slo_guardian__comparison.json``).  The digest
pin makes any drift in the controller's decision sequence — not just in
the aggregate numbers — show up as a test failure.

The acceptance bar rides the same file: the guardian must reduce the
abort rate by at least three percentage points on at least three library
scenarios.

Regenerate deliberately after an intended behaviour change:

    PYTHONPATH=src python tests/test_control_golden.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden" / "slo_guardian__comparison.json"

#: Same budget as tests/test_golden_figures.py: big enough for the
#: faults (and the guardian's windows) to bite, small enough for tier 1.
GOLDEN_TXS = 800

#: Pairs re-executed by the test itself; the remaining scenarios are
#: pinned by the committed file and re-checked on regeneration only.
VERIFIED_SCENARIOS = ("crash_burst", "partial_outage", "conflict_storm")

#: The acceptance bar: at least this abort-rate reduction (percentage
#: points of success rate) on at least this many scenarios.
MIN_REDUCTION_PP = 3.0
MIN_SCENARIOS = 3


def _row_dict(row) -> dict:
    return {
        "throughput": row.throughput,
        "latency": row.latency,
        "success_pct": row.success_pct,
    }


def _compute(scenario: str) -> dict:
    """One scenario's off/guardian comparison entry at GOLDEN_TXS."""
    from repro.bench.executor import run_spec
    from repro.bench.registry import get
    from repro.control.timeline import ControlTimeline

    entry: dict = {}
    for policy in ("off", "guardian"):
        spec = get(f"slo_guardian/{scenario}__{policy}").with_overrides(
            total_transactions=GOLDEN_TXS
        )
        outcome = run_spec(spec)
        entry[policy] = _row_dict(outcome.rows[0])
    timeline = ControlTimeline.from_dict((outcome.control or [None])[0])
    entry["decisions"] = len(timeline.decisions)
    entry["timeline_digest"] = timeline.digest()
    return entry


def _load_golden() -> dict:
    assert GOLDEN_PATH.is_file(), (
        f"missing golden file {GOLDEN_PATH}; regenerate with "
        f"`PYTHONPATH=src python tests/test_control_golden.py --regenerate`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("scenario", VERIFIED_SCENARIOS)
def test_guardian_comparison_matches_golden(scenario):
    golden = _load_golden()
    assert golden["total_transactions"] == GOLDEN_TXS
    measured = _compute(scenario)
    assert measured == golden["scenarios"][scenario], (
        f"slo_guardian/{scenario}: the controller comparison drifted from "
        f"tests/golden — if the change is intended, regenerate"
    )


def test_guardian_reduces_abort_rate_on_library_scenarios():
    golden = _load_golden()
    improved = [
        name
        for name, entry in golden["scenarios"].items()
        if entry["guardian"]["success_pct"] - entry["off"]["success_pct"]
        >= MIN_REDUCTION_PP
    ]
    assert len(improved) >= MIN_SCENARIOS, (
        f"guardian improves success by >= {MIN_REDUCTION_PP}pp on only "
        f"{improved}; the acceptance bar is {MIN_SCENARIOS} scenarios"
    )


def regenerate() -> None:
    from repro.bench.registry import all_specs

    scenarios: list[str] = []
    for spec in all_specs():
        if spec.group == "slo_guardian" and spec.variant.endswith("__off"):
            scenarios.append(spec.variant.rsplit("__", 1)[0])
    data = {
        "total_transactions": GOLDEN_TXS,
        "scenarios": {name: _compute(name) for name in scenarios},
    }
    GOLDEN_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
