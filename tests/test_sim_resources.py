"""Unit tests for FIFO servers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.kernel import Kernel
from repro.sim.resources import Server


def test_single_job_completes_after_service_time():
    kernel = Kernel()
    server = Server(kernel, "s")
    done = []
    kernel.schedule(1.0, lambda: server.submit(0.5, lambda t: done.append(t)))
    kernel.run()
    assert done == [1.5]


def test_fifo_queueing():
    kernel = Kernel()
    server = Server(kernel, "s")
    done = []
    kernel.schedule(0.0, lambda: server.submit(1.0, lambda t: done.append(("a", t))))
    kernel.schedule(0.0, lambda: server.submit(1.0, lambda t: done.append(("b", t))))
    kernel.schedule(0.1, lambda: server.submit(1.0, lambda t: done.append(("c", t))))
    kernel.run()
    assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_on_start_fires_at_service_start():
    kernel = Kernel()
    server = Server(kernel, "s")
    starts = []
    kernel.schedule(0.0, lambda: server.submit(2.0, lambda t: None, on_start=starts.append))
    kernel.schedule(0.0, lambda: server.submit(1.0, lambda t: None, on_start=starts.append))
    kernel.run()
    assert starts == [0.0, 2.0]


def test_idle_gap_does_not_accumulate_busy_time():
    kernel = Kernel()
    server = Server(kernel, "s")
    kernel.schedule(0.0, lambda: server.submit(1.0, lambda t: None))
    kernel.schedule(5.0, lambda: server.submit(1.0, lambda t: None))
    kernel.run()
    assert server.stats.busy_time == pytest.approx(2.0)
    assert server.stats.jobs == 2
    assert server.stats.utilization(10.0) == pytest.approx(0.2)


def test_queue_delay_reflects_backlog():
    kernel = Kernel()
    server = Server(kernel, "s")
    observed = []

    def submit_two():
        server.submit(1.0, lambda t: None)
        server.submit(1.0, lambda t: None)
        observed.append(server.queue_delay())

    kernel.schedule(0.0, submit_two)
    kernel.run()
    assert observed == [2.0]


def test_negative_service_time_rejected():
    kernel = Kernel()
    server = Server(kernel, "s")
    with pytest.raises(ValueError):
        server.submit(-1.0, lambda t: None)


def test_mean_wait_accounts_queueing():
    kernel = Kernel()
    server = Server(kernel, "s")

    def submit_three():
        for _ in range(3):
            server.submit(1.0, lambda t: None)

    kernel.schedule(0.0, submit_three)
    kernel.run()
    # Waits: 0, 1, 2 -> mean 1.0
    assert server.stats.mean_wait == pytest.approx(1.0)
    assert server.stats.max_queue == 3


def test_utilization_capped_at_one():
    kernel = Kernel()
    server = Server(kernel, "s")
    kernel.schedule(0.0, lambda: server.submit(10.0, lambda t: None))
    kernel.run()
    assert server.stats.utilization(1.0) == 1.0
    assert server.stats.utilization(0.0) == 0.0


@given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=30))
def test_property_completions_ordered_and_spaced(service_times):
    """FIFO: completion k is at least the sum of the first k service times."""
    kernel = Kernel()
    server = Server(kernel, "s")
    completions = []

    def submit_all():
        for s in service_times:
            server.submit(s, completions.append)

    kernel.schedule(0.0, submit_all)
    kernel.run()
    assert completions == sorted(completions)
    running = 0.0
    for s, done in zip(service_times, completions):
        running += s
        assert done == pytest.approx(running)


def test_service_multiplier_inflates_subsequent_jobs():
    kernel = Kernel()
    server = Server(kernel, "s")
    done = []
    server.submit(1.0, done.append)
    server.set_service_multiplier(3.0)
    server.submit(1.0, done.append)
    kernel.run()
    # First job at nominal speed, second 3x slower, queued behind it.
    assert done == [1.0, 4.0]


def test_service_multiplier_restore_returns_to_nominal():
    kernel = Kernel()
    server = Server(kernel, "s")
    server.set_service_multiplier(5.0)
    server.set_service_multiplier(1.0)
    done = []
    server.submit(2.0, done.append)
    kernel.run()
    assert done == [2.0]


def test_service_multiplier_must_be_positive():
    server = Server(Kernel(), "s")
    with pytest.raises(ValueError, match="positive"):
        server.set_service_multiplier(0.0)
    with pytest.raises(ValueError, match="positive"):
        server.set_service_multiplier(-2.0)


def test_servers_start_enabled_at_nominal_speed():
    server = Server(Kernel(), "s")
    assert server.enabled
    assert server.service_multiplier == 1.0
