"""End-to-end reproduction checks: recommendations and optimization effects.

These are the repository's "does the paper's story hold" tests: each use
case gets the right recommendations, and applying them moves success rate
and latency in the direction the paper reports.  Scaled down for test
speed; benchmarks/ run the full-size versions.
"""

import pytest

from repro.bench.experiments import make_loan, make_usecase, synthetic_spec
from repro.core import BlockOptR, OptimizationKind as K, apply_recommendations
from repro.fabric import run_workload
from repro.workloads import synthetic_workload

SMALL = 1500


def run_and_analyze(make):
    config, family, requests = make()
    deployment = family.deploy()
    network, result = run_workload(config, deployment.contracts, requests)
    report = BlockOptR().analyze_network(network)
    return config, family, requests, result, report


@pytest.fixture(scope="module")
def scm_setup():
    return run_and_analyze(make_usecase("scm", total_transactions=3000))


@pytest.fixture(scope="module")
def drm_setup():
    return run_and_analyze(make_usecase("drm", total_transactions=3000))


class TestRecommendationSets:
    def test_scm_matches_paper(self, scm_setup):
        *_, report = scm_setup
        kinds = report.recommended_kinds()
        # Paper Figure 13: reordering, pruning (and rate control).
        assert K.ACTIVITY_REORDERING in kinds
        assert K.PROCESS_MODEL_PRUNING in kinds
        assert K.DATA_MODEL_ALTERATION not in kinds

    def test_drm_matches_paper(self, drm_setup):
        *_, report = drm_setup
        kinds = report.recommended_kinds()
        # Paper Figure 14: delta writes and smart contract partitioning.
        assert K.DELTA_WRITES in kinds
        assert K.SMART_CONTRACT_PARTITIONING in kinds
        assert K.DATA_MODEL_ALTERATION not in kinds

    def test_voting_matches_paper(self):
        *_, report = run_and_analyze(make_usecase("voting", total_transactions=2000))
        kinds = report.recommended_kinds()
        # Paper Figure 16: rate control and data model alteration.
        assert K.DATA_MODEL_ALTERATION in kinds
        assert K.SMART_CONTRACT_PARTITIONING not in kinds

    def test_loan_matches_paper(self):
        *_, report = run_and_analyze(make_loan(10.0, seed=7))
        kinds = report.recommended_kinds()
        # Paper Figure 17: data model alteration only (single hot employee).
        assert K.DATA_MODEL_ALTERATION in kinds
        assert K.SMART_CONTRACT_PARTITIONING not in kinds

    def test_update_heavy_excludes_reordering(self):
        spec = synthetic_spec("workload_update_heavy")
        spec.total_transactions = 3000
        config, deployment, requests = synthetic_workload(spec)
        network, _ = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        # Paper Table 3 experiment 5: Update has a self-dependency that
        # reordering cannot remove.
        assert K.ACTIVITY_REORDERING not in report.recommended_kinds()

    def test_p1_detects_endorser_bottleneck(self):
        spec = synthetic_spec("endorsement_policy_p1")
        spec.total_transactions = 2000
        config, deployment, requests = synthetic_workload(spec)
        network, _ = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        assert report.recommends(K.ENDORSER_RESTRUCTURING)
        rec = report.get(K.ENDORSER_RESTRUCTURING)
        assert "Org1" in rec.evidence["bottleneck_orgs"]

    def test_tx_skew_detects_client_bottleneck(self):
        spec = synthetic_spec("tx_dist_skew_70")
        spec.total_transactions = 2000
        config, deployment, requests = synthetic_workload(spec)
        network, _ = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        assert report.recommends(K.CLIENT_RESOURCE_BOOST)
        assert "Org1" in report.get(K.CLIENT_RESOURCE_BOOST).actions["orgs"]

    def test_small_blocks_detected(self):
        spec = synthetic_spec("block_count_50")
        spec.total_transactions = 2000
        config, deployment, requests = synthetic_workload(spec)
        network, _ = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        assert report.recommends(K.BLOCK_SIZE_ADAPTATION)


class TestOptimizationEffects:
    def _apply_and_rerun(self, setup, kinds):
        config, family, requests, baseline, report = setup
        recs = [report.get(k) for k in kinds if report.recommends(k)]
        assert recs, f"none of {kinds} recommended"
        applied = apply_recommendations(recs, config, family, requests)
        _, optimized = run_workload(
            applied.config, applied.deployment.contracts, applied.requests
        )
        return baseline, optimized

    def test_scm_reordering_improves_success(self, scm_setup):
        baseline, optimized = self._apply_and_rerun(scm_setup, [K.ACTIVITY_REORDERING])
        assert optimized.success_rate > baseline.success_rate

    def test_scm_pruning_keeps_success_and_saves_work(self, scm_setup):
        baseline, optimized = self._apply_and_rerun(scm_setup, [K.PROCESS_MODEL_PRUNING])
        assert optimized.success_rate >= baseline.success_rate
        assert optimized.early_aborts > 0

    def test_drm_delta_writes_improve_success_but_cost_latency(self, drm_setup):
        baseline, optimized = self._apply_and_rerun(drm_setup, [K.DELTA_WRITES])
        assert optimized.success_rate > baseline.success_rate + 0.15
        # The paper observes calcRevenue aggregation raising latency.
        assert optimized.avg_latency > baseline.avg_latency * 0.8

    def test_drm_partitioning_improves_success(self, drm_setup):
        baseline, optimized = self._apply_and_rerun(
            drm_setup, [K.SMART_CONTRACT_PARTITIONING]
        )
        assert optimized.success_rate > baseline.success_rate

    def test_rate_control_cuts_latency(self):
        setup = run_and_analyze(make_usecase("ehr", total_transactions=2000))
        baseline, optimized = self._apply_and_rerun(setup, [K.TRANSACTION_RATE_CONTROL])
        assert optimized.avg_latency < baseline.avg_latency
        assert optimized.success_rate > baseline.success_rate

    def test_block_size_adaptation_fixes_small_blocks(self):
        spec = synthetic_spec("block_count_50")
        spec.total_transactions = 2000
        config, deployment, requests = synthetic_workload(spec)
        network, baseline = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        from repro.contracts.registry import genchain_family

        applied = apply_recommendations(
            [report.get(K.BLOCK_SIZE_ADAPTATION)],
            config,
            genchain_family(num_keys=spec.num_keys),
            requests,
        )
        _, optimized = run_workload(
            applied.config, applied.deployment.contracts, applied.requests
        )
        assert optimized.success_throughput > baseline.success_throughput * 1.5
        assert optimized.success_rate > baseline.success_rate

    def test_endorser_restructuring_improves_throughput(self):
        # The Org1 backlog builds over time; needs a few thousand txs to show.
        spec = synthetic_spec("endorsement_policy_p1")
        spec.total_transactions = 4000
        config, deployment, requests = synthetic_workload(spec)
        network, baseline = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        from repro.contracts.registry import genchain_family

        applied = apply_recommendations(
            [report.get(K.ENDORSER_RESTRUCTURING)],
            config,
            genchain_family(num_keys=spec.num_keys),
            requests,
        )
        _, optimized = run_workload(
            applied.config, applied.deployment.contracts, applied.requests
        )
        assert optimized.avg_latency < baseline.avg_latency


class TestProcessModelReproduction:
    def test_scm_model_recovers_main_flow(self, scm_setup):
        *_, report = scm_setup
        path = report.dfg.most_frequent_path()
        main = [a for a in path if a in ("pushASN", "ship", "queryASN", "unload")]
        assert main == ["pushASN", "ship", "queryASN", "unload"]

    def test_reordered_model_confirms_compliance(self, scm_setup):
        """Figure 4: the post-reordering log yields a model where the
        reordered activities no longer interleave with the main flow."""
        config, family, requests, _, report = scm_setup
        applied = apply_recommendations(
            [report.get(K.ACTIVITY_REORDERING)], config, family, requests
        )
        network, _ = run_workload(
            applied.config, applied.deployment.contracts, applied.requests
        )
        after = BlockOptR().analyze_network(network)
        from repro.mining import model_diff

        diff = model_diff(report.footprint, after.footprint)
        assert not diff.is_identical()
        moved = set(report.get(K.ACTIVITY_REORDERING).actions["front"])
        changed_activities = {a for a, b, *_ in diff.changed_relations} | {
            b for a, b, *_ in diff.changed_relations
        }
        assert moved & changed_activities
