"""Tests for the CI docstring checker (scripts/check_docstrings.py)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_docstrings", REPO_ROOT / "scripts" / "check_docstrings.py"
)
check_docstrings = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_docstrings", check_docstrings)
_SPEC.loader.exec_module(check_docstrings)


def test_default_scope_is_clean():
    """The repo's own scoped modules must stay fully documented."""
    assert check_docstrings.main([]) == 0


def test_scope_covers_all_package_inits_and_named_modules():
    inits = check_docstrings.package_inits()
    assert any(path.match("*/repro/__init__.py") for path in inits)
    assert any(path.match("*/bench/perf/__init__.py") for path in inits)
    names = {path.name for path in check_docstrings.DEFAULT_SCOPE}
    assert {"kernel.py", "executor.py", "engine.py", "runner.py"} <= names


def test_violations_are_reported_with_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def public():\n    pass\n\n"
        "class Thing:\n"
        '    """Documented."""\n'
        "    def method(self):\n        pass\n"
        "    def _private(self):\n        pass\n"
    )
    violations = check_docstrings.check_file(bad)
    codes = [line.split(": ")[1].split()[0] for line in violations]
    assert codes == ["D100", "D103", "D102"]  # module, function, method


def test_clean_file_passes(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        '"""Module."""\n\n'
        "def public():\n"
        '    """Doc."""\n\n'
        "def _private():\n    pass\n"
    )
    assert check_docstrings.check_file(good) == []


def test_defs_guarded_by_compound_statements_are_checked(tmp_path):
    guarded = tmp_path / "guarded.py"
    guarded.write_text(
        '"""Module."""\n'
        "try:\n"
        "    def fallback():\n"
        "        pass\n"
        "except Exception:\n"
        "    pass\n"
        "if True:\n"
        "    class Late:\n"
        "        pass\n"
    )
    violations = check_docstrings.check_file(guarded)
    codes = [line.split(": ")[1].split()[0] for line in violations]
    assert codes == ["D103", "D101"]


def test_main_with_explicit_files_and_missing_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1\n")
    assert check_docstrings.main([str(bad)]) == 1
    assert "D100" in capsys.readouterr().out
    assert check_docstrings.main([str(tmp_path / "absent.py")]) == 2
