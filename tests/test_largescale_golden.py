"""Digest goldens for the large-scale sharded runs (repro.shard).

Unlike the figure goldens (``test_golden_figures.py``), which pin full
outcome dumps, these pin only a sha256 digest over the canonical JSON of
the stitched :class:`~repro.shard.summary.StitchedSummary` — the summary
itself is bounded, so the digest captures the entire observable result
of a run without storing megabytes of per-transaction data.

Tier-1 re-runs only ``multichannel_5k`` (a few seconds).  The 50k and 1M
variants are gated behind ``REPRO_LARGE_SCALE=1``; the CI smoke step
checks the 50k golden through ``repro shard --check-digest`` instead,
which also asserts the peak-RSS ceiling.

Regenerate after an intentional behaviour change::

    PYTHONPATH=src python tests/test_largescale_golden.py --regenerate

(regenerates 5k and 50k; add ``--all`` to also re-run the 1M variant,
which takes a couple of minutes).
"""

from __future__ import annotations

import json
import os
import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.bench.registry import get
from repro.shard import plan_shards, run_sharded

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Registry exp_ids with a digest golden, smallest first.
GOLDEN_IDS = (
    "large_scale/multichannel_5k",
    "large_scale/multichannel_50k",
    "large_scale/multichannel_1m",
)


def _golden_path(exp_id: str) -> Path:
    return GOLDEN_DIR / (exp_id.replace("/", "__") + ".json")


def _plan_from_spec(exp_id: str):
    spec = get(exp_id)
    base, channels = spec.maker_args
    return plan_shards(
        base=base,
        channels=int(channels),
        total_transactions=spec.total_transactions,
        seed=spec.seed,
    )


def _golden_dict(exp_id: str, digest: str) -> dict:
    plan = _plan_from_spec(exp_id)
    return {
        "exp_id": exp_id,
        "base": plan.base,
        "channels": len(plan.channels),
        "total_transactions": plan.total_transactions,
        "seed": plan.seed,
        "interval_seconds": plan.interval_seconds,
        "digest": digest,
    }


class TestLargeScaleGoldens(unittest.TestCase):
    def _check(self, exp_id: str) -> None:
        path = _golden_path(exp_id)
        self.assertTrue(path.exists(), f"missing digest golden {path}")
        golden = json.loads(path.read_text())
        plan = _plan_from_spec(exp_id)
        # The golden's plan parameters must match the registry spec: a
        # drifted golden would silently check a different run.
        self.assertEqual(golden["base"], plan.base)
        self.assertEqual(golden["channels"], len(plan.channels))
        self.assertEqual(golden["total_transactions"], plan.total_transactions)
        self.assertEqual(golden["seed"], plan.seed)
        self.assertEqual(golden["interval_seconds"], plan.interval_seconds)
        stitched = run_sharded(plan)
        self.assertEqual(
            stitched.digest(),
            golden["digest"],
            f"{exp_id}: stitched digest diverged from {path.name}; if the "
            "change is intentional, regenerate with "
            "`python tests/test_largescale_golden.py --regenerate`",
        )

    def test_multichannel_5k_digest(self):
        self._check("large_scale/multichannel_5k")

    @unittest.skipUnless(
        os.environ.get("REPRO_LARGE_SCALE") == "1",
        "set REPRO_LARGE_SCALE=1 to run the 50k digest check",
    )
    def test_multichannel_50k_digest(self):
        self._check("large_scale/multichannel_50k")

    @unittest.skipUnless(
        os.environ.get("REPRO_LARGE_SCALE") == "1",
        "set REPRO_LARGE_SCALE=1 to run the 1M digest check",
    )
    def test_multichannel_1m_digest(self):
        self._check("large_scale/multichannel_1m")

    def test_goldens_exist_for_every_large_scale_spec(self):
        for exp_id in GOLDEN_IDS:
            self.assertTrue(_golden_path(exp_id).exists(), exp_id)


def regenerate(include_1m: bool = False) -> None:
    ids = GOLDEN_IDS if include_1m else GOLDEN_IDS[:-1]
    for exp_id in ids:
        plan = _plan_from_spec(exp_id)
        print(f"running {exp_id} ({plan.total_transactions} txs)...", flush=True)
        stitched = run_sharded(plan)
        path = _golden_path(exp_id)
        path.write_text(
            json.dumps(_golden_dict(exp_id, stitched.digest()), indent=1, sort_keys=True)
            + "\n"
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate(include_1m="--all" in sys.argv)
    else:
        unittest.main()
