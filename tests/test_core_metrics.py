"""Tests for the Section 4.3 metrics derivation."""

import pytest

from repro.core.metrics import compute_metrics, increment_delta
from repro.fabric.transaction import TxStatus, TxType
from repro.logs import BlockchainLog, ChannelConfig, LogRecord

from tests.test_logs import make_log, make_record


def rec(
    order,
    activity="act",
    reads=None,
    writes=None,
    status=TxStatus.SUCCESS,
    read_versions=None,
    invoker_org="Org1",
    endorser="Org1-peer0",
    ts=None,
    block=None,
):
    reads = reads or []
    writes = writes or {}
    return LogRecord(
        commit_order=order,
        tx_id=f"tx{order}",
        client_timestamp=float(order) / 10.0 if ts is None else ts,
        activity=activity,
        args=(),
        endorsers=(endorser,),
        invoker=f"{invoker_org}-client0",
        invoker_org=invoker_org,
        read_keys=tuple(reads),
        write_keys=tuple(writes),
        writes=dict(writes),
        read_versions=read_versions or {k: (0, 0) for k in reads},
        range_reads=(),
        status=status,
        tx_type=(
            TxType.UPDATE if (writes and reads) else TxType.WRITE if writes else TxType.READ
        ),
        block_number=order // 10 if block is None else block,
        block_position=order % 10,
        commit_time=float(order) / 10.0 + 1.0,
    )


class TestRateMetrics:
    def test_tr_from_client_timestamps(self):
        log = make_log([make_record(i) for i in range(100)])  # 10 tx per second
        metrics = compute_metrics(log)
        assert metrics.tr == pytest.approx(100 / 9.9)

    def test_trd_intervals(self):
        log = make_log([make_record(i) for i in range(30)])  # ts 0..2.9
        metrics = compute_metrics(log, interval_seconds=1.0)
        assert metrics.trd == [10.0, 10.0, 10.0]

    def test_frd_counts_failures(self):
        records = [
            rec(i, status=TxStatus.MVCC_CONFLICT if i < 5 else TxStatus.SUCCESS)
            for i in range(30)
        ]
        metrics = compute_metrics(make_log(records), interval_seconds=1.0)
        assert metrics.frd[0] == 5.0
        assert metrics.frd[1] == 0.0


class TestFailureMetrics:
    def test_tfr_and_counts(self):
        records = [rec(0), rec(1, status=TxStatus.MVCC_CONFLICT), rec(2, status=TxStatus.PHANTOM_CONFLICT)]
        metrics = compute_metrics(make_log(records))
        assert metrics.total_failures == 2
        assert metrics.tfr == pytest.approx(2 / 3)
        assert metrics.failure_counts[TxStatus.MVCC_CONFLICT] == 1


class TestBlockMetrics:
    def test_bsize_avg(self):
        records = [rec(i, block=i // 5) for i in range(20)]  # 4 blocks of 5
        metrics = compute_metrics(make_log(records))
        assert metrics.bsize_avg == 5.0
        assert metrics.bcount == 100
        assert metrics.btimeout == 1.0


class TestSignificance:
    def test_edsig_counts(self):
        records = [rec(i, endorser="Org1-peer0" if i < 7 else "Org2-peer0") for i in range(10)]
        metrics = compute_metrics(make_log(records))
        assert metrics.edsig_org == {"Org1": 7, "Org2": 3}

    def test_ivsig_counts(self):
        records = [rec(i, invoker_org="Org1" if i < 8 else "Org2") for i in range(10)]
        metrics = compute_metrics(make_log(records))
        assert metrics.ivsig_org == {"Org1": 8, "Org2": 2}


class TestKeyMetrics:
    def test_kfreq_counts_failed_accesses(self):
        records = [
            rec(0, reads=["hot"], status=TxStatus.MVCC_CONFLICT),
            rec(1, reads=["hot"], status=TxStatus.MVCC_CONFLICT),
            rec(2, reads=["hot"]),  # success: not counted
            rec(3, reads=["cold"], status=TxStatus.MVCC_CONFLICT),
        ]
        metrics = compute_metrics(make_log(records))
        assert metrics.kfreq == {"hot": 2, "cold": 1}

    def test_hotkey_thresholds(self):
        records = []
        order = 0
        for _ in range(30):
            records.append(rec(order, activity="u1", reads=["hot"], status=TxStatus.MVCC_CONFLICT))
            order += 1
        for _ in range(5):
            records.append(rec(order, reads=["cold"], status=TxStatus.MVCC_CONFLICT))
            order += 1
        metrics = compute_metrics(make_log(records), hotkey_failure_share=0.5, hotkey_min_failures=10)
        assert metrics.hotkeys == ["hot"]

    def test_ksig_counts_distinct_activities(self):
        records = [
            rec(0, activity="a", reads=["k"]),
            rec(1, activity="b", reads=["k"]),
            rec(2, activity="a", reads=["k"]),
        ]
        metrics = compute_metrics(make_log(records))
        assert metrics.ksig["k"] == 2

    def test_ksig_failed_filters_insignificant(self):
        records = []
        order = 0
        for _ in range(50):
            records.append(rec(order, activity="main", reads=["k"], status=TxStatus.MVCC_CONFLICT))
            order += 1
        records.append(rec(order, activity="rare", reads=["k"], status=TxStatus.MVCC_CONFLICT))
        metrics = compute_metrics(make_log(records))
        assert metrics.ksig_failed["k"] == 1
        assert metrics.key_failed_activities["k"] == frozenset({"main"})


class TestConflictPairs:
    def test_culprit_is_latest_writer(self):
        records = [
            rec(0, activity="w1", writes={"k": 1}),
            rec(1, activity="w2", writes={"k": 2}),
            rec(2, activity="r", reads=["k"], status=TxStatus.MVCC_CONFLICT),
        ]
        metrics = compute_metrics(make_log(records))
        assert len(metrics.conflict_pairs) == 1
        pair = metrics.conflict_pairs[0]
        assert pair.culprit_activity == "w2"
        assert pair.distance == 1
        assert pair.reorderable  # read-only failed tx

    def test_not_reorderable_when_write_sets_overlap(self):
        records = [
            rec(0, activity="u", reads=["k"], writes={"k": 1}),
            rec(1, activity="u", reads=["k"], writes={"k": 2}, status=TxStatus.MVCC_CONFLICT),
        ]
        metrics = compute_metrics(make_log(records))
        assert not metrics.conflict_pairs[0].reorderable
        assert metrics.self_dependent_activities == ["u"]

    def test_same_block_flag(self):
        records = [
            rec(0, activity="w", writes={"k": 1}, block=3),
            rec(1, activity="r", reads=["k"], status=TxStatus.MVCC_CONFLICT, block=3),
        ]
        metrics = compute_metrics(make_log(records))
        assert metrics.conflict_pairs[0].same_block
        assert metrics.intra_block_pairs == 1

    def test_failed_writers_not_culprits(self):
        records = [
            rec(0, activity="w", writes={"k": 1}, status=TxStatus.MVCC_CONFLICT),
            rec(1, activity="r", reads=["k"], status=TxStatus.MVCC_CONFLICT),
        ]
        metrics = compute_metrics(make_log(records))
        assert metrics.conflict_pairs == []  # no successful culprit exists


class TestCorPA:
    def test_distances_per_activity(self):
        records = [
            rec(0, activity="a"),
            rec(1, activity="b"),
            rec(2, activity="a"),
            rec(3, activity="a"),
        ]
        metrics = compute_metrics(make_log(records))
        assert metrics.corpa["a"] == [2, 1]
        assert "b" not in metrics.corpa


class TestDeltaCandidates:
    def test_increment_detected_via_read_version(self):
        records = [
            rec(0, activity="play", reads=["k"], writes={"k": 5}, block=1),
            rec(
                1,
                activity="play",
                reads=["k"],
                writes={"k": 6},
                status=TxStatus.MVCC_CONFLICT,
                read_versions={"k": (1, 0)},
                block=1,
            ),
        ]
        # Fix block positions so the version lookup matches.
        records[0].block_number, records[0].block_position = 1, 0
        records[1].block_number, records[1].block_position = 1, 1
        metrics = compute_metrics(make_log(records))
        assert metrics.delta_candidates == {"play": 1}

    def test_non_increment_not_detected(self):
        records = [
            rec(0, activity="set", reads=["k"], writes={"k": 5}),
            rec(
                1,
                activity="set",
                reads=["k"],
                writes={"k": 50},
                status=TxStatus.MVCC_CONFLICT,
                read_versions={"k": (0, 0)},
            ),
        ]
        records[0].block_number, records[0].block_position = 0, 0
        metrics = compute_metrics(make_log(records))
        assert metrics.delta_candidates == {}


class TestIncrementDelta:
    def test_plain_numbers(self):
        assert increment_delta(5, 6) == 1.0
        assert increment_delta(6, 5) == -1.0
        assert increment_delta(5, 9) == 4.0

    def test_dict_single_leaf(self):
        before = {"plays": 3, "meta": {"title": "x"}}
        after = {"plays": 4, "meta": {"title": "x"}}
        assert increment_delta(before, after) == 1.0

    def test_dict_two_changed_leaves_rejected(self):
        assert increment_delta({"a": 1, "b": 1}, {"a": 2, "b": 2}) is None

    def test_structure_change_rejected(self):
        assert increment_delta({"a": 1}, {"a": 1, "b": 2}) is None

    def test_non_numeric_rejected(self):
        assert increment_delta({"a": [1]}, {"a": [1, 2]}) is None
        assert increment_delta("x", "y") is None

    def test_bools_rejected(self):
        assert increment_delta(False, True) is None
