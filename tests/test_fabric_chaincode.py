"""Unit tests for the chaincode runtime."""

import pytest

from repro.fabric.chaincode import (
    ChaincodeAbort,
    ChaincodeContext,
    ChaincodeError,
    Contract,
    MISSING_VERSION,
    UnknownFunctionError,
    contract_function,
)
from repro.fabric.state import WorldState
from repro.fabric.transaction import DELETED, TxType, Version


class Demo(Contract):
    name = "demo"

    @contract_function
    def read(self, ctx, key):
        return ctx.get_state(key)

    @contract_function
    def write(self, ctx, key, value):
        ctx.put_state(key, value)

    @contract_function
    def bump(self, ctx, key):
        value = ctx.get_state(key) or 0
        ctx.put_state(key, value + 1)

    @contract_function
    def remove(self, ctx, key):
        ctx.delete_state(key)

    @contract_function
    def fail(self, ctx):
        raise ChaincodeAbort("nope")

    def helper(self, ctx):  # not a contract function
        return 42


@pytest.fixture
def state():
    ws = WorldState("demo")
    ws.put("k", 10, Version(3, 1))
    return ws


@pytest.fixture
def ctx(state):
    return ChaincodeContext(state=state, invoker="client0", nonce="tx-1")


def test_read_records_version(ctx):
    assert ctx.get_state("k") == 10
    assert ctx.rwset.reads == {"k": Version(3, 1)}


def test_read_missing_records_missing_version(ctx):
    assert ctx.get_state("absent") is None
    assert ctx.rwset.reads == {"absent": MISSING_VERSION}


def test_read_your_writes(ctx):
    ctx.put_state("new", 5)
    assert ctx.get_state("new") == 5
    # No read recorded for a key we wrote ourselves first.
    assert "new" not in ctx.rwset.reads


def test_read_after_delete_sees_none(ctx):
    ctx.delete_state("k")
    assert ctx.get_state("k") is None


def test_put_deleted_sentinel_rejected(ctx):
    with pytest.raises(ChaincodeError):
        ctx.put_state("k", DELETED)


def test_delete_records_sentinel(ctx):
    ctx.delete_state("k")
    assert ctx.rwset.writes["k"] == DELETED
    assert ctx.rwset.derive_type() is TxType.DELETE


def test_range_scan_records_phantom_info(state, ctx):
    state.put("k2", 20, Version(3, 2))
    results = ctx.get_state_range("k", "k3")
    assert [k for k, _ in results] == ["k", "k2"]
    assert len(ctx.rwset.range_queries) == 1
    query = ctx.rwset.range_queries[0]
    assert query.keys() == ("k", "k2")


def test_functions_discovered():
    functions = Demo().functions()
    assert set(functions) == {"read", "write", "bump", "remove", "fail"}


def test_helper_not_invocable(ctx):
    with pytest.raises(UnknownFunctionError):
        Demo().invoke(ctx, "helper", ())


def test_unknown_activity_raises(ctx):
    with pytest.raises(UnknownFunctionError):
        Demo().invoke(ctx, "nope", ())


def test_abort_propagates(ctx):
    with pytest.raises(ChaincodeAbort):
        Demo().invoke(ctx, "fail", ())


def test_invoke_executes(ctx):
    Demo().invoke(ctx, "bump", ("k",))
    assert ctx.rwset.writes == {"k": 11}


def test_default_cost_factor_is_one():
    assert Demo().cost_factor("read") == 1.0


def test_describe_lists_functions():
    assert "bump" in Demo().describe()
