"""The SLO-guardian control subsystem (ISSUE 10).

Covers the control package units (bounds, monitor, timeline, spec,
policies), the live actuation seams (satellite 1), the shared
bounded-actuation envelope with the offline recommender (satellite 2),
and the determinism properties (satellite 3): controller-off runs are
byte-identical to pre-control builds, controller-on runs are
deterministic per (seed, policy, scenario) across replays and across
both kernel tiers.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.experiments import make_synthetic
from repro.control import (
    ActuationError,
    ControlAction,
    ControlDecision,
    ControlSpec,
    ControlTimeline,
    ControllerState,
    GuardianPolicy,
    NoopPolicy,
    SLOTargets,
    WindowedMonitor,
    clamp_actuation,
    make_policy,
    render_control_timeline,
    validate_actuation,
)
from repro.control.monitor import WindowObservables, quantile
from repro.fabric.conditions import NetworkConditions
from repro.fabric.config import NetworkConfig, TimingConfig
from repro.fabric.network import FabricNetwork, run_workload
from repro.fabric.retry import RetryPolicy
from repro.scenario import get_scenario, run_digest
from repro.scenario.spec import Intervention, ScenarioSpec


def _bundle(total: int = 300, seed: int = 7, retry: int = 2):
    config, family, requests = make_synthetic(
        "default", seed=seed, total_transactions=total
    )()
    if retry > 1:
        config.retry = RetryPolicy(max_attempts=retry)
    return config, family, requests


# -- bounds -------------------------------------------------------------------------


def test_clamp_actuation_clamps_into_the_envelope():
    assert clamp_actuation("block_count", 0.0) == (1, True)
    assert clamp_actuation("block_count", 10**9) == (10_000, True)
    assert clamp_actuation("block_count", 57.4) == (57, False)
    assert clamp_actuation("block_timeout", 1.5) == (1.5, False)
    value, clamped = clamp_actuation("send_rate_cap", 1e9)
    assert clamped and value == 100_000.0


def test_validate_actuation_rejects_out_of_envelope_and_unknown():
    validate_actuation("mitigation", "reorder")
    with pytest.raises(ActuationError):
        validate_actuation("mitigation", "yolo")
    with pytest.raises(ActuationError):
        validate_actuation("block_count", 0)
    with pytest.raises(ActuationError):
        clamp_actuation("no_such_actuator", 1.0)


# -- monitor ------------------------------------------------------------------------


def test_quantile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert quantile(values, 0.5) == 2.0
    assert quantile(values, 0.95) == 4.0
    assert quantile([7.0], 0.5) == 7.0


def test_monitor_windows_tumble_and_reset():
    monitor = WindowedMonitor()
    window = monitor.snapshot(1.0)
    assert window.submitted == 0 and window.abort_rate == 0.0
    assert window.index == 0 and window.start == 0.0 and window.end == 1.0
    second = monitor.snapshot(2.0)
    assert second.index == 1 and second.start == 1.0


def test_window_observables_roundtrip_dict():
    monitor = WindowedMonitor()
    window = monitor.snapshot(0.25)
    data = window.to_dict()
    assert json.loads(json.dumps(data)) == data


# -- timeline -----------------------------------------------------------------------


def _decision(time: float = 1.0) -> ControlDecision:
    return ControlDecision(
        time=time,
        rule="endorsement_pressure",
        observables={"abort_rate": 0.5},
        actions=(
            ControlAction(
                actuator="send_rate_cap", old=None, new=120.0, clamped=False
            ),
        ),
    )


def test_timeline_json_roundtrip_and_digest_stability():
    timeline = ControlTimeline(policy="guardian")
    timeline.ticks = 4
    timeline.record(_decision())
    clone = ControlTimeline.from_json(timeline.to_json())
    assert clone.to_dict() == timeline.to_dict()
    assert clone.digest() == timeline.digest()
    other = ControlTimeline(policy="guardian")
    other.ticks = 4
    assert other.digest() != timeline.digest()


def test_render_control_timeline_mentions_rule_and_actuator():
    timeline = ControlTimeline(policy="guardian")
    timeline.record(_decision())
    text = render_control_timeline(timeline)
    assert "endorsement_pressure" in text and "send_rate_cap" in text
    assert timeline.digest()[:12] in text


# -- spec ---------------------------------------------------------------------------


def test_control_spec_validation_and_roundtrip():
    spec = ControlSpec(policy="guardian", interval=0.5, slo=SLOTargets(0.05, 2.0))
    assert ControlSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError):
        ControlSpec(policy="nope")
    with pytest.raises(ValueError):
        ControlSpec(interval=0.0)
    with pytest.raises(ValueError):
        SLOTargets(max_abort_rate=1.5)
    with pytest.raises(ValueError):
        NetworkConfig(control="guardian")  # type: ignore[arg-type]


# -- policies -----------------------------------------------------------------------


def _window(**overrides) -> WindowObservables:
    base = dict(
        index=0,
        start=0.0,
        end=0.25,
        submitted=40,
        successes=10,
        aborted=30,
        abort_rate=0.75,
        causes={"policy_crashed_peer": 30},
        dominant_cause="policy_crashed_peer",
        retry_rate=0.0,
        hot_key_share=0.0,
        org_gaps={},
        p50_latency=0.5,
        p95_latency=1.0,
        throughput=40.0,
    )
    base.update(overrides)
    return WindowObservables(**base)


def _state(**overrides) -> ControllerState:
    base = dict(
        block_count=100, block_timeout=1.0, mitigation="none", send_rate_cap=None
    )
    base.update(overrides)
    return ControllerState(**base)


def test_guardian_throttles_on_endorsement_pressure():
    policy = GuardianPolicy(SLOTargets())
    (proposal,) = policy.decide(_window(), _state())
    assert proposal.rule == "endorsement_pressure"
    assert proposal.actuator == "send_rate_cap"
    # Success-weighted: 40 submitted over 0.25s, 75% aborting.
    assert proposal.value == pytest.approx(160.0 * 0.25)


def test_guardian_tightens_retries_before_the_cap_in_a_retry_storm():
    policy = GuardianPolicy(SLOTargets())
    (proposal,) = policy.decide(
        _window(retry_rate=0.5), _state(retry_max_attempts=3)
    )
    assert proposal.actuator == "retry_max_attempts" and proposal.value == 2


def test_guardian_reorders_then_throttles_on_conflict_pressure():
    policy = GuardianPolicy(SLOTargets())
    window = _window(
        causes={"mvcc_conflict": 30}, dominant_cause="mvcc_conflict"
    )
    (first,) = policy.decide(window, _state())
    assert first.actuator == "mitigation" and first.value == "reorder"
    (second,) = policy.decide(window, _state(mitigation="reorder"))
    assert second.rule == "conflict_pressure"
    assert second.actuator == "send_rate_cap"


def test_guardian_recovery_relaxes_then_clears_the_cap():
    policy = GuardianPolicy(SLOTargets())
    healthy = _window(submitted=4, aborted=0, successes=4, abort_rate=0.0)
    (relax,) = policy.decide(healthy, _state(send_rate_cap=10.0))
    assert relax.rule == "recovery"
    assert relax.value == pytest.approx(10.0 / GuardianPolicy.CAP_STEP)
    (clear,) = policy.decide(healthy, _state(send_rate_cap=100.0))
    assert clear.value is None


def test_guardian_holds_on_empty_windows_even_under_a_cap():
    # Zero completions is no evidence of health: clearing a cap on it
    # would flush the paced backlog into a fault still in progress.
    policy = GuardianPolicy(SLOTargets())
    empty = _window(submitted=0, aborted=0, successes=0, abort_rate=0.0, causes={},
                    dominant_cause=None, throughput=0.0)
    assert policy.decide(empty, _state(send_rate_cap=10.0)) == []


def test_noop_policy_never_actuates():
    assert NoopPolicy().decide(_window(), _state()) == []
    with pytest.raises(ValueError):
        make_policy("unknown", SLOTargets())


# -- satellite 1: the actuation seam ------------------------------------------------


def test_conditions_journal_attributes_every_writer():
    conditions = NetworkConditions(TimingConfig())
    conditions.set_delay_multiplier(4.0, source="scenario")
    conditions.set_send_rate_cap(50.0, source="control")
    conditions.set_send_rate_cap(None, source="control")
    assert conditions.journal == [
        ("scenario", "delay_multiplier", 1.0, 4.0),
        ("control", "send_rate_cap", None, 50.0),
        ("control", "send_rate_cap", 50.0, None),
    ]
    with pytest.raises(ValueError):
        conditions.set_send_rate_cap(-1.0)


def test_controller_throttle_composes_with_latency_spike():
    # A latency_spike scenario (scenario-engine writes) composed with the
    # guardian (controller writes) on one conditions seam: both sources
    # appear in the journal, the run is deterministic, and the last
    # writer in kernel order holds the final value.
    # A crashing peer gives the guardian something to throttle while the
    # spike exercises the scenario engine's writes on the same seam.
    spike = ScenarioSpec(
        name="spike",
        interventions=(
            Intervention(kind="latency_spike", at=0.5, duration=4.0, factor=8.0),
            Intervention(
                kind="peer_crash", at=0.5, duration=3.0, target="Org2-peer0"
            ),
        ),
    )

    def run_once():
        config, family, requests = _bundle(total=300)
        config.control = ControlSpec()
        network, result = run_workload(config, family.deploy().contracts, requests, spike)
        return network, result

    net_a, res_a = run_once()
    net_b, res_b = run_once()
    assert run_digest(net_a) == run_digest(net_b)
    assert net_a.conditions.journal == net_b.conditions.journal
    sources = {entry[0] for entry in net_a.conditions.journal}
    assert "scenario" in sources and "control" in sources
    final_cap = [
        entry[3] for entry in net_a.conditions.journal if entry[1] == "send_rate_cap"
    ][-1]
    assert net_a.conditions.send_rate_cap == final_cap


# -- satellite 2: one bounded-actuation envelope ------------------------------------


def test_offline_block_size_recommendation_clamps_through_the_envelope():
    from repro.core.apply import apply_recommendations
    from repro.core.recommendations import OptimizationKind, Recommendation

    config, family, requests = _bundle(total=50, retry=1)
    for runaway, expected in ((0, 1), (10**9, 10_000)):
        rec = Recommendation(
            kind=OptimizationKind.BLOCK_SIZE_ADAPTATION,
            rationale="regression: out-of-range rule output",
            actions={"block_count": runaway},
        )
        applied = apply_recommendations([rec], config, family, requests)
        assert applied.config.block_count == expected
        # __post_init__ re-validation accepted the clamped config.
        assert applied.config.block_count >= 1


# -- controller integration ---------------------------------------------------------


def test_noop_controller_run_is_byte_identical_to_controller_off():
    def run(spec):
        config, family, requests = _bundle(total=300)
        config.control = spec
        network = FabricNetwork(
            config, family.deploy().contracts, scenario=get_scenario("crash_burst")
        )
        trace = network.kernel.enable_trace()
        network.run(requests)
        return run_digest(network), trace

    from repro.sim.kernel import CONTROL_PRIORITY

    off_digest, off_trace = run(None)
    noop_digest, noop_trace = run(ControlSpec(policy="noop"))
    assert noop_digest == off_digest
    # The noop controller's ticks ride the dedicated control lane — they
    # appear in the trace without perturbing any simulation outcome.
    assert not any(entry[1] == CONTROL_PRIORITY for entry in off_trace)
    assert any(entry[1] == CONTROL_PRIORITY for entry in noop_trace)


def test_guardian_reduces_aborts_on_crash_burst():
    config, family, requests = _bundle(total=600)
    _, off = run_workload(config, family.deploy().contracts, requests, get_scenario("crash_burst"))
    config2, family2, requests2 = _bundle(total=600)
    config2.control = ControlSpec()
    network, on = run_workload(
        config2, family2.deploy().contracts, requests2, get_scenario("crash_burst")
    )
    assert on.success_rate > off.success_rate
    assert network.controller.timeline.decisions


def test_controller_state_seeds_from_the_live_network():
    config, family, requests = _bundle(total=40)
    config.control = ControlSpec(policy="noop")
    network = FabricNetwork(config, family.deploy().contracts)
    state = network.controller.state
    assert state.block_count == config.block_count
    assert state.block_timeout == config.block_timeout
    assert state.retry_max_attempts == config.retry.max_attempts
    assert state.send_rate_cap is None


def test_unknown_actuator_raises_actuation_error():
    from repro.control.policy import Proposal

    config, family, requests = _bundle(total=40)
    config.control = ControlSpec(policy="noop")
    network = FabricNetwork(config, family.deploy().contracts)
    with pytest.raises(ActuationError):
        network.controller._apply(
            Proposal(rule="r", actuator="warp_drive", value=9000)
        )


# -- satellite 3: determinism properties --------------------------------------------


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=1, max_value=2**16),
    policy=st.sampled_from(["guardian", "noop"]),
    scenario=st.sampled_from(
        ["crash_burst", "conflict_storm", "flash_crowd_outage"]
    ),
)
def test_controller_on_is_deterministic_per_seed_policy_scenario(
    seed, policy, scenario
):
    from repro.analysis.forensics import forensics_report, report_digest

    def run(tier):
        config, family, requests = _bundle(total=250, seed=seed)
        config.control = ControlSpec(policy=policy)
        config.kernel_tier = tier
        network = FabricNetwork(
            config, family.deploy().contracts, scenario=get_scenario(scenario)
        )
        trace = network.kernel.enable_trace()
        network.run(requests)
        return (
            tuple(trace),
            run_digest(network),
            network.controller.timeline.digest(),
            report_digest(forensics_report(network)),
        )

    reference = run("reference")
    replay = run("reference")
    batch = run("batch")
    assert replay == reference, "controller-on replay diverged"
    assert batch == reference, "kernel tiers diverged under the controller"
