"""The failure-forensics layer (repro.analysis).

Covers the abort-cause classification, the report structure (taxonomy
counts, hot-key/key-family attribution, per-org breakdown, time buckets
aligned with the scenario timeline), JSON round trips and digests, the
text renderer, the bench wiring (forensics cached with outcomes, the
``failure_forensics`` sweep showing a mitigation reducing the MVCC abort
rate at identical seed), and the ``repro analyze --cached`` CLI path.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    CAUSES,
    MITIGATIONS,
    ForensicsReport,
    classify_transaction,
    describe_mitigations,
    forensics_report,
    render_cause_summary,
    render_forensics,
    report_digest,
    validate_mitigation,
)
from repro.bench.experiments import make_forensics, make_synthetic
from repro.bench.harness import unpack_bundle
from repro.fabric.network import run_workload
from repro.fabric.transaction import Transaction, TxStatus
from repro.scenario.library import get_scenario


def _tx(status, abort_stage=None, missing_reasons=(), conflict_key=None):
    return Transaction(
        tx_id="t",
        client_timestamp=0.0,
        activity="update",
        args=("key000001",),
        contract="c",
        invoker_client="Org1-client0",
        invoker_org="Org1",
        status=status,
        abort_stage=abort_stage,
        missing_reasons=missing_reasons,
        conflict_key=conflict_key,
    )


def _partial_outage_network(txs=800):
    config, family, requests = make_synthetic(
        "default", seed=7, total_transactions=txs
    )()
    return run_workload(
        config,
        family.deploy().contracts,
        requests,
        scenario=get_scenario("partial_outage"),
    )


class TestClassification:
    def test_success_and_pending_are_not_failures(self):
        assert classify_transaction(_tx(TxStatus.SUCCESS)) is None
        assert classify_transaction(_tx(None)) is None

    @pytest.mark.parametrize(
        "status, stage, reasons, expected",
        [
            (TxStatus.MVCC_CONFLICT, None, (), "mvcc_conflict"),
            (TxStatus.PHANTOM_CONFLICT, None, (), "phantom_conflict"),
            (TxStatus.ENDORSEMENT_FAILURE, None, ("timeout",), "policy_endorsement_timeout"),
            (TxStatus.ENDORSEMENT_FAILURE, None, ("crashed",), "policy_crashed_peer"),
            # Timeout dominates: the client spent the full endorsement
            # window on it, so it decided the transaction's fate.
            (
                TxStatus.ENDORSEMENT_FAILURE,
                None,
                ("crashed", "timeout"),
                "policy_endorsement_timeout",
            ),
            (TxStatus.ENDORSEMENT_FAILURE, None, (), "policy_unsatisfied"),
            (TxStatus.EARLY_ABORT, "endorsement", (), "early_abort_chaincode"),
            (TxStatus.EARLY_ABORT, "ordering", (), "early_abort_scheduler"),
            (TxStatus.EARLY_ABORT, "stale_read", (), "early_abort_stale_read"),
        ],
    )
    def test_taxonomy(self, status, stage, reasons, expected):
        tx = _tx(status, abort_stage=stage, missing_reasons=reasons)
        assert classify_transaction(tx) == expected
        assert expected in CAUSES


class TestReport:
    @pytest.fixture(scope="class")
    def outage(self):
        network, result = _partial_outage_network()
        return network, result, forensics_report(network)

    def test_attributes_at_least_four_distinct_causes(self, outage):
        _, _, report = outage
        assert len(report.distinct_causes()) >= 4

    def test_totals_reconcile(self, outage):
        network, result, report = outage
        assert report.total_issued == result.total_issued
        assert report.successes == result.success_count
        assert report.failures == sum(report.cause_counts.values())
        assert report.successes + report.failures == report.total_issued

    def test_buckets_cover_every_transaction(self, outage):
        _, _, report = outage
        assert sum(bucket.issued for bucket in report.buckets) == report.total_issued
        assert sum(bucket.failed for bucket in report.buckets) == report.failures
        for bucket in report.buckets:
            assert sum(bucket.causes.values()) == bucket.failed
            assert 0.0 <= bucket.failure_rate <= 1.0

    def test_timeline_spans_the_bucket_series(self, outage):
        network, _, report = outage
        assert report.scenario == "partial_outage"
        assert report.timeline  # the scenario fired
        assert report.timeline == sorted(report.timeline, key=lambda e: (e[0], e[1]))
        # Interventions fire inside the submit-time span of the series.
        assert report.buckets[0].start <= report.timeline[0][0] <= report.buckets[-1].end

    def test_org_attribution_matches_missing_endorsements(self, outage):
        network, _, report = outage
        expected: dict[str, int] = {}
        for tx in list(network.ledger.transactions(include_config=False)) + network.aborted:
            if tx.status is TxStatus.ENDORSEMENT_FAILURE:
                for org in tx.missing_endorsements:
                    expected[org] = expected.get(org, 0) + 1
        assert report.org_policy_failures == dict(sorted(expected.items()))

    def test_hot_keys_and_families(self):
        # The conflict storm funnels update conflicts onto few hot keys.
        config, family, requests = make_synthetic(
            "workload_update_heavy", seed=7, total_transactions=600
        )()
        network, _ = run_workload(
            config,
            family.deploy().contracts,
            requests,
            scenario=get_scenario("conflict_storm"),
        )
        report = forensics_report(network)
        assert report.hot_keys
        top_key, top_count = report.hot_keys[0]
        assert top_count >= report.hot_keys[-1][1]
        assert report.key_families and report.key_families[0][0] == "key"
        assert sum(count for _, count in report.key_families) >= top_count

    def test_dict_round_trip_and_digest(self, outage):
        _, _, report = outage
        clone = ForensicsReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert report_digest(clone) == report_digest(report)
        assert len(report_digest(report)) == 64
        with pytest.raises(ValueError):
            ForensicsReport.from_dict({"scenario": None})

    def test_bucket_count_validated(self, outage):
        network, _, _ = outage
        with pytest.raises(ValueError):
            forensics_report(network, buckets=0)
        single = forensics_report(network, buckets=1)
        assert len(single.buckets) == 1

    def test_steady_state_run_has_no_timeline(self):
        config, family, requests = make_synthetic(
            "default", seed=7, total_transactions=300
        )()
        network, _ = run_workload(config, family.deploy().contracts, requests)
        report = forensics_report(network)
        assert report.scenario is None
        assert report.timeline == []
        assert report.retry.resubmissions == 0


class TestRenderer:
    def test_full_report_sections(self):
        network, _ = _partial_outage_network(txs=600)
        text = render_forensics(forensics_report(network), title="t")
        assert "abort causes" in text
        assert "policy_endorsement_timeout" in text
        assert "missing endorsements by organization" in text
        assert "failure rate over time" in text
        assert "peer_crash" in text  # timeline inlined into the series
        # Accepts the dict form too, identically.
        assert render_forensics(forensics_report(network).to_dict(), title="t") == text

    def test_cause_summary(self):
        network, _ = _partial_outage_network(txs=600)
        summary = render_cause_summary(forensics_report(network))
        assert "policy_crashed_peer=" in summary

    def test_no_failures_renders_cleanly(self):
        config, family, requests = make_synthetic(
            "send_rate_50", seed=7, total_transactions=120
        )()
        network, _ = run_workload(config, family.deploy().contracts, requests)
        report = forensics_report(network)
        if report.failures == 0:
            assert "(no failures)" in render_forensics(report)
            assert render_cause_summary(report) == "no failures"


class TestMitigationRegistry:
    def test_names_and_descriptions_agree(self):
        assert validate_mitigation("early_abort") == "early_abort"
        with pytest.raises(ValueError):
            validate_mitigation("hope")
        listing = describe_mitigations()
        for name in MITIGATIONS:
            assert name in listing


class TestBenchWiring:
    def test_failure_forensics_sweep_mitigation_beats_baseline(self):
        """Acceptance: at identical seed, at least one mitigation cell of
        the ``failure_forensics`` sweep measurably reduces the MVCC abort
        rate versus its no-mitigation baseline."""
        from repro.bench.registry import get

        baseline_spec = get("failure_forensics/conflict_storm__none")
        mitigated_spec = get("failure_forensics/conflict_storm__early_abort")
        assert baseline_spec.seed == mitigated_spec.seed

        def baseline_report(spec):
            bundle = unpack_bundle(spec.with_overrides(total_transactions=600).make_bundle()())
            config, family, requests, scenario = bundle
            network, _ = run_workload(
                config, family.deploy().contracts, requests, scenario=scenario
            )
            return forensics_report(network)

        plain = baseline_report(baseline_spec)
        mitigated = baseline_report(mitigated_spec)
        assert mitigated.mvcc_abort_rate < plain.mvcc_abort_rate
        assert (
            mitigated.cause_counts["mvcc_conflict"] < plain.cause_counts["mvcc_conflict"]
        )

    def test_forensics_none_cell_is_bit_identical_to_plain_scenario(self):
        """The sweep's baseline cell reproduces the unmitigated run."""
        from repro.scenario.engine import run_digest

        bundle = unpack_bundle(
            make_forensics(
                "workload_update_heavy", "conflict_storm", total_transactions=400
            )()
        )
        config, family, requests, scenario = bundle
        network, _ = run_workload(
            config, family.deploy().contracts, requests, scenario=scenario
        )

        plain_config, plain_family, plain_requests = make_synthetic(
            "workload_update_heavy", seed=7, total_transactions=400
        )()
        plain_network, _ = run_workload(
            plain_config,
            plain_family.deploy().contracts,
            plain_requests,
            scenario=get_scenario("conflict_storm"),
        )
        assert run_digest(network) == run_digest(plain_network)

    def test_outcomes_cache_forensics(self, tmp_path):
        from repro.bench.cache import ResultCache
        from repro.bench.executor import run_suite
        from repro.bench.registry import get

        spec = get("failure_forensics/partial_outage__retry").with_overrides(
            total_transactions=300
        )
        cache = ResultCache(tmp_path)
        cold = run_suite([spec], jobs=1, cache=cache)
        warm = run_suite([spec], jobs=1, cache=cache)
        assert warm.simulated_runs == 0
        assert warm.outcomes[0].forensics == cold.outcomes[0].forensics
        report = ForensicsReport.from_dict(warm.outcomes[0].forensics[0])
        assert report.retry.resubmissions > 0

    def test_cli_analyze_cached_renders_forensics(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "analyze",
                "--cached",
                "scenario_faults/partial_outage",
                "--txs",
                "400",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "failure forensics" in out
        assert "abort causes" in out
        # Warm path: served from cache, same report.
        code = main(
            [
                "analyze",
                "--cached",
                "scenario_faults/partial_outage",
                "--txs",
                "400",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        warm_out = capsys.readouterr().out
        assert code == 0
        assert "[cache]" in warm_out

    def test_cli_analyze_cache_only_miss_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "analyze",
                "--cached",
                "scenario_faults/partial_outage",
                "--txs",
                "400",
                "--cache-dir",
                str(tmp_path),
                "--cache-only",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "no cache entry" in captured.err
        assert "Traceback" not in captured.err

    def test_cli_analyze_cached_schema_mismatch_is_clean_error(
        self, tmp_path, capsys
    ):
        import json

        from repro.bench.cache import ResultCache
        from repro.bench.registry import get
        from repro.cli import main

        argv = [
            "analyze",
            "--cached",
            "scenario_faults/partial_outage",
            "--txs",
            "400",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Corrupt the stored forensics payloads the way an incompatible
        # writer would: entries present but missing every expected field.
        spec = get("scenario_faults/partial_outage").with_overrides(
            total_transactions=400
        )
        path = ResultCache(tmp_path).path(spec)
        record = json.loads(path.read_text())
        record["outcome"]["forensics"] = [
            {"bogus": True} for _ in record["outcome"]["forensics"]
        ]
        path.write_text(json.dumps(record))

        code = main(argv)
        captured = capsys.readouterr()
        assert code == 1
        assert "schema-mismatched" in captured.err
        assert "Traceback" not in captured.err

    def test_cli_analyze_argument_validation(self, capsys):
        from repro.cli import main

        assert main(["analyze"]) == 2
        assert main(["analyze", "log.csv", "--cached", "x/y"]) == 2
        assert main(["analyze", "--cached", "no/such"]) == 2
        assert main(["analyze", "--cached", "scenario_faults/chaos", "--txs", "0"]) == 2
        capsys.readouterr()

    def test_cli_scenario_with_mitigation_and_retry(self, capsys):
        from repro.cli import main

        code = main(
            [
                "scenario",
                "--name",
                "partial_outage",
                "--txs",
                "400",
                "--mitigation",
                "early_abort",
                "--retry",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "with mitigation" in out
        assert "with early_abort + retry(2):" in out
        assert "resubmissions" in out

    def test_cli_scenario_rejects_bad_retry(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--txs", "100", "--retry", "0"]) == 2
        capsys.readouterr()
