"""Property tests for the cross-channel stitcher (ISSUE 8, satellite 2).

:func:`repro.shard.summary.stitch` merges bounded per-channel summaries
into one report, and its merge arithmetic must agree with brute force
over the underlying per-transaction data for *any* channel shapes —
including channels that committed nothing, whose divisors are all zero.
The summaries here are synthesized directly (not produced by runs) so
hypothesis can explore shapes a real workload would rarely reach.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.forensics import CAUSES, TOP_N
from repro.shard.plan import ChannelPlan, ShardPlan
from repro.shard.summary import ChannelSummary, stitch

#: Small key alphabet so merged counts actually collide across channels.
_KEYS = [f"user:u{i}" for i in range(8)]

#: One channel's synthetic ground truth: per-transaction latencies, a
#: conflict hot-key histogram and the channel's wall-clock window.
_channel_data = st.fixed_dictionaries(
    {
        "latencies": st.lists(
            st.floats(0.001, 100.0, allow_nan=False, allow_infinity=False),
            max_size=30,
        ),
        "hot_keys": st.dictionaries(
            st.sampled_from(_KEYS), st.integers(1, 50), max_size=TOP_N
        ),
        "first_submit": st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
        "span": st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
        "failures": st.integers(0, 20),
    }
)

_channels = st.lists(_channel_data, min_size=1, max_size=6)


def _summarize(index: int, data: dict) -> ChannelSummary:
    """Fold one channel's ground truth the way a streamed run would."""
    latencies = data["latencies"]
    successes = len(latencies)
    failures = data["failures"]
    cause_counts = {cause: 0 for cause in CAUSES}
    cause_counts["mvcc_conflict"] = failures
    return ChannelSummary(
        name=f"channel{index}",
        seed=100 + index,
        planned_transactions=successes + failures,
        issued=successes + failures,
        committed=successes,
        aborted=failures,
        blocks=successes // 5 + 1,
        data_blocks=successes // 5,
        max_block_transactions=min(successes, 5),
        cut_reasons={},
        submitted=successes + failures,
        successes=successes,
        failures=failures,
        cause_counts=cause_counts,
        hot_keys=sorted(
            ([key, count] for key, count in data["hot_keys"].items()),
            key=lambda item: (-item[1], item[0]),
        ),
        key_families=[],
        org_policy_failures={},
        max_attempt=1,
        latency_sum=sum(latencies),
        latency_count=successes,
        latency_max=max(latencies, default=0.0),
        first_submit=data["first_submit"],
        last_commit=data["first_submit"] + data["span"],
        rate_series=[],
    )


def _stitched(channel_data: list[dict]):
    summaries = [_summarize(i, data) for i, data in enumerate(channel_data)]
    total = sum(summary.issued for summary in summaries)
    plan = ShardPlan(
        base="default",
        seed=7,
        total_transactions=max(total, len(summaries)),
        interval_seconds=1.0,
        channels=tuple(
            ChannelPlan(
                index=summary.seed - 100,
                name=summary.name,
                seed=summary.seed,
                transactions=summary.planned_transactions,
                clients=(("Org1", 1), ("Org2", 1)),
            )
            for summary in summaries
        ),
    )
    return stitch(plan, summaries)


@settings(max_examples=60, deadline=None)
@given(_channels)
def test_merged_mean_latency_matches_brute_force(channel_data):
    # The stitcher merges (sum, count) pairs; brute force averages the
    # concatenated per-transaction latencies.  They must agree exactly
    # up to float summation order.
    stitched = _stitched(channel_data)
    all_latencies = [
        latency for data in channel_data for latency in data["latencies"]
    ]
    if not all_latencies:
        assert stitched.avg_latency == 0.0
    else:
        brute = sum(all_latencies) / len(all_latencies)
        assert abs(stitched.avg_latency - brute) < 1e-9 * max(1.0, brute)


@settings(max_examples=60, deadline=None)
@given(_channels)
def test_makespan_spans_earliest_submit_to_latest_commit(channel_data):
    # Channels run concurrently: the stitched span is min-to-max across
    # channels (floored like summarize_run), never the per-channel sum.
    stitched = _stitched(channel_data)
    first = min(data["first_submit"] for data in channel_data)
    last = max(data["first_submit"] + data["span"] for data in channel_data)
    assert stitched.makespan == max(last - first, 1e-9)


@settings(max_examples=60, deadline=None)
@given(_channels)
def test_top_hot_keys_match_brute_force_merge(channel_data):
    # Every synthetic channel holds at most TOP_N keys, so nothing is
    # truncated channel-side and the stitched top-N must equal the
    # brute-force top-N over the summed histograms.
    stitched = _stitched(channel_data)
    merged: dict[str, int] = {}
    for data in channel_data:
        for key, count in data["hot_keys"].items():
            merged[key] = merged.get(key, 0) + count
    brute = sorted(merged.items(), key=lambda item: (-item[1], item[0]))[:TOP_N]
    assert stitched.hot_keys() == [list(item) for item in brute]


@settings(max_examples=60, deadline=None)
@given(_channels)
def test_totals_and_digest_are_defined_for_any_shape(channel_data):
    stitched = _stitched(channel_data)
    total_success = sum(len(data["latencies"]) for data in channel_data)
    total_failures = sum(data["failures"] for data in channel_data)
    assert stitched.successes == total_success
    assert stitched.failures == total_failures
    assert stitched.issued == total_success + total_failures
    assert 0.0 <= stitched.success_rate <= 1.0
    assert stitched.cause_counts()["mvcc_conflict"] == total_failures
    # The digest must be computable (finite, JSON-serializable) for any
    # channel shape, and stable for identical inputs.
    assert stitched.digest() == _stitched(channel_data).digest()


def test_all_channels_empty_is_well_defined():
    # The all-aborts edge: no channel committed anything, every divisor
    # (latency_count, submitted, makespan) is at its degenerate floor.
    empty = [
        {
            "latencies": [],
            "hot_keys": {},
            "first_submit": 1.0,
            "span": 0.0,
            "failures": 0,
        }
        for _ in range(3)
    ]
    stitched = _stitched(empty)
    assert stitched.avg_latency == 0.0
    assert stitched.success_rate == 0.0
    assert stitched.throughput == 0.0
    assert stitched.makespan == 1e-9
    assert stitched.hot_keys() == []
    assert stitched.digest()
