"""The client retry/resubmission model (repro.fabric.retry).

Covers the policy's validation and backoff math, the network-level retry
loop (accounting, resubmit-as-new-read-set semantics, attempt caps, the
no-retry rule for chaincode aborts), determinism (same seed ⇒ identical
retry traffic and forensics digest), and the baseline guarantee that a
``retry=None`` / ``mitigation="none"`` network behaves bit-identically to
the seed simulator.
"""

from __future__ import annotations

import pytest

from repro.analysis import forensics_report, report_digest
from repro.bench.experiments import make_synthetic
from repro.fabric.config import NetworkConfig
from repro.fabric.network import run_workload
from repro.fabric.retry import RetryPolicy
from repro.fabric.transaction import TxStatus
from repro.scenario.engine import run_digest
from repro.scenario.library import get_scenario


def _run(retry=None, mitigation="none", scenario_name="conflict_storm", txs=400,
         base="workload_update_heavy"):
    config, family, requests = make_synthetic(base, seed=7, total_transactions=txs)()
    config.retry = retry
    config.mitigation = mitigation
    scenario = get_scenario(scenario_name) if scenario_name else None
    return run_workload(config, family.deploy().contracts, requests, scenario=scenario)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": 0.0},
            {"backoff_multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_multiplier=2.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0

    def test_delay_requires_a_failure(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_jitter_perturbs_within_bounds(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_multiplier=1.0, jitter=0.2)
        lows = policy.delay(1, uniform=lambda: 0.0)
        highs = policy.delay(1, uniform=lambda: 0.999999)
        assert lows == pytest.approx(0.8)
        assert highs == pytest.approx(1.2, abs=1e-4)

    def test_zero_jitter_never_consults_rng(self):
        def exploding():  # pragma: no cover - must not be called
            raise AssertionError("jitter-free policy touched the RNG")

        assert RetryPolicy().delay(1, uniform=exploding) == 0.25

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.1)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError):
            RetryPolicy.from_dict({"max_attempt": 2})


class TestNetworkRetries:
    def test_config_rejects_unknown_mitigation(self):
        with pytest.raises(ValueError):
            NetworkConfig(mitigation="pray")

    def test_config_copy_carries_retry_and_mitigation(self):
        config = NetworkConfig(retry=RetryPolicy(max_attempts=2), mitigation="reorder")
        clone = config.copy()
        assert clone.retry == config.retry
        assert clone.mitigation == "reorder"

    def test_retries_generate_followon_traffic_and_account(self):
        network, result = _run(retry=RetryPolicy(max_attempts=3))
        assert network.retries_issued > 0
        committed = list(network.ledger.transactions(include_config=False))
        assert len(committed) + len(network.aborted) == 400 + network.retries_issued
        assert result.total_issued == 400 + network.retries_issued

    def test_retries_recover_failed_transactions(self):
        network, _ = _run(retry=RetryPolicy(max_attempts=3))
        assert network.retries_recovered > 0
        recovered = [
            tx
            for tx in network.ledger.transactions(include_config=False)
            if tx.attempt > 1 and tx.status is TxStatus.SUCCESS
        ]
        assert len(recovered) == network.retries_recovered
        # Resubmit-as-new-read-set: a recovered retry re-executed the
        # chaincode, so it carries its own read-write set and tx id.
        assert all(tx.retry_of is not None and tx.retry_of != tx.tx_id for tx in recovered)

    def test_attempts_never_exceed_the_cap(self):
        policy = RetryPolicy(max_attempts=2)
        network, _ = _run(retry=policy)
        every = list(network.ledger.transactions(include_config=False)) + network.aborted
        assert max(tx.attempt for tx in every) <= policy.max_attempts
        assert network.retries_exhausted > 0

    def test_no_retry_without_policy(self):
        network, _ = _run(retry=None)
        assert network.retries_issued == 0
        every = list(network.ledger.transactions(include_config=False)) + network.aborted
        assert all(tx.attempt == 1 for tx in every)

    def test_retry_traffic_is_deterministic(self):
        digests = []
        for _ in range(2):
            network, _ = _run(retry=RetryPolicy(max_attempts=3, jitter=0.2))
            digests.append(
                (
                    run_digest(network),
                    report_digest(forensics_report(network)),
                    network.retries_issued,
                    network.retries_recovered,
                    network.retries_exhausted,
                )
            )
        assert digests[0] == digests[1]

    def test_baseline_unaffected_by_retry_code(self):
        """retry=None + mitigation=none reproduces the seed behaviour."""
        baseline, _ = _run(retry=None, scenario_name=None)
        again, _ = _run(retry=None, scenario_name=None)
        assert run_digest(baseline) == run_digest(again)


class TestMitigations:
    # 600 transactions: enough backlog that envelopes go stale between
    # endorsement and packaging (at 400 the pipeline drains too fast for
    # the early-abort check to ever fire).
    def test_early_abort_reduces_mvcc_aborts(self):
        plain, _ = _run(txs=600)
        mitigated, _ = _run(mitigation="early_abort", txs=600)
        before = forensics_report(plain)
        after = forensics_report(mitigated)
        assert after.cause_counts["mvcc_conflict"] < before.cause_counts["mvcc_conflict"]
        assert after.mvcc_abort_rate < before.mvcc_abort_rate
        assert after.cause_counts["early_abort_stale_read"] > 0

    def test_reorder_reduces_mvcc_aborts_without_rejecting_work(self):
        plain, plain_result = _run(txs=600)
        mitigated, mitigated_result = _run(mitigation="reorder", txs=600)
        before = forensics_report(plain)
        after = forensics_report(mitigated)
        assert after.cause_counts["mvcc_conflict"] < before.cause_counts["mvcc_conflict"]
        # Abort-free: every submitted transaction still reaches a block.
        assert mitigated_result.total_issued == plain_result.total_issued
        assert after.cause_counts["early_abort_scheduler"] == 0
        assert mitigated_result.success_count >= plain_result.success_count

    def test_stale_read_aborts_count_as_submitted_failures(self):
        network, result = _run(mitigation="early_abort", txs=600)
        stale = [tx for tx in network.aborted if tx.abort_stage == "stale_read"]
        assert stale, "the conflict storm should trip the early-abort check"
        assert all(tx.conflict_key is not None for tx in stale)
        # summarize_run counts them in the denominator (unlike chaincode
        # aborts), so the success rate is not inflated by the mitigation.
        report = forensics_report(network)
        assert report.submitted == result.total_issued

    def test_early_abort_plus_retry_recovers_dropped_work(self):
        network, _ = _run(
            mitigation="early_abort", retry=RetryPolicy(max_attempts=3), txs=600
        )
        report = forensics_report(network)
        assert report.cause_counts["early_abort_stale_read"] > 0
        assert network.retries_recovered > 0


class TestConflictAwareScheduler:
    def test_readers_reordered_before_writers(self):
        from repro.fabric.reorder import ConflictAwareScheduler
        from repro.fabric.transaction import ReadWriteSet, Transaction, Version

        def tx(tx_id, reads=(), writes=()):
            rwset = ReadWriteSet(
                reads={key: Version(0, 0) for key in reads},
                writes={key: 1 for key in writes},
            )
            return Transaction(
                tx_id=tx_id,
                client_timestamp=0.0,
                activity="a",
                args=(),
                contract="c",
                invoker_client="cl",
                invoker_org="Org1",
                rwset=rwset,
            )

        writer = tx("w", writes=("k",))
        reader = tx("r", reads=("k",))
        scheduler = ConflictAwareScheduler()
        ordered, aborts = scheduler.schedule([writer, reader])
        assert [t.tx_id for t in ordered] == ["r", "w"]
        assert aborts == []

        # A cycle (two updates of the same key) falls back to arrival
        # order instead of aborting.
        u1 = tx("u1", reads=("k",), writes=("k",))
        u2 = tx("u2", reads=("k",), writes=("k",))
        ordered, aborts = scheduler.schedule([u1, u2])
        assert [t.tx_id for t in ordered] == ["u1", "u2"]
        assert aborts == []
        scheduler.observe_commit(u1, 1)  # no-op, part of the protocol
