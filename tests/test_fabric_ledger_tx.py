"""Unit tests for ledger blocks and transaction types."""

import pytest

from repro.fabric.ledger import Block, Ledger
from repro.fabric.transaction import (
    DELETED,
    RangeQueryInfo,
    ReadWriteSet,
    Transaction,
    TxStatus,
    TxType,
    Version,
)


def _tx(i: int) -> Transaction:
    return Transaction(
        tx_id=f"tx{i}",
        client_timestamp=0.0,
        activity="a",
        args=(),
        contract="c",
        invoker_client="Org1-client0",
        invoker_org="Org1",
    )


class TestLedger:
    def test_append_and_iterate(self):
        ledger = Ledger()
        block = Block(number=0, transactions=[_tx(1)], previous_hash=Ledger.GENESIS_HASH)
        ledger.append(block)
        assert ledger.height == 1
        assert [t.tx_id for t in ledger.transactions()] == ["tx1"]

    def test_wrong_number_rejected(self):
        ledger = Ledger()
        block = Block(number=1, transactions=[_tx(1)], previous_hash=Ledger.GENESIS_HASH)
        with pytest.raises(ValueError):
            ledger.append(block)

    def test_wrong_previous_hash_rejected(self):
        ledger = Ledger()
        ledger.append(Block(number=0, transactions=[_tx(1)], previous_hash=Ledger.GENESIS_HASH))
        with pytest.raises(ValueError):
            ledger.append(Block(number=1, transactions=[_tx(2)], previous_hash="bogus"))

    def test_chain_verification(self):
        ledger = Ledger()
        for i in range(3):
            ledger.append(
                Block(number=i, transactions=[_tx(i)], previous_hash=ledger.tip_hash)
            )
        assert ledger.verify_chain()

    def test_tampering_detected(self):
        ledger = Ledger()
        ledger.append(Block(number=0, transactions=[_tx(1)], previous_hash=Ledger.GENESIS_HASH))
        ledger.append(Block(number=1, transactions=[_tx(2)], previous_hash=ledger.tip_hash))
        ledger.block(0).transactions.append(_tx(99))
        assert not ledger.verify_chain()

    def test_config_filtering(self):
        ledger = Ledger()
        config_tx = _tx(0)
        config_tx.is_config = True
        ledger.append(Block(number=0, transactions=[config_tx], previous_hash=Ledger.GENESIS_HASH))
        ledger.append(Block(number=1, transactions=[_tx(1)], previous_hash=ledger.tip_hash))
        assert [t.tx_id for t in ledger.transactions(include_config=False)] == ["tx1"]
        assert len(list(ledger.transactions(include_config=True))) == 2


class TestTxTypeDerivation:
    def test_pure_read(self):
        rwset = ReadWriteSet(reads={"k": Version(0, 0)})
        assert rwset.derive_type() is TxType.READ

    def test_blind_write(self):
        rwset = ReadWriteSet(writes={"k": 1})
        assert rwset.derive_type() is TxType.WRITE

    def test_update_reads_and_writes(self):
        rwset = ReadWriteSet(reads={"k": Version(0, 0)}, writes={"k": 2})
        assert rwset.derive_type() is TxType.UPDATE

    def test_range_read(self):
        rwset = ReadWriteSet(
            range_queries=[RangeQueryInfo(start="a", end="b", results=())]
        )
        assert rwset.derive_type() is TxType.RANGE_READ

    def test_delete_takes_priority(self):
        rwset = ReadWriteSet(reads={"k": Version(0, 0)}, writes={"k": DELETED})
        assert rwset.derive_type() is TxType.DELETE

    def test_empty_rwset_is_read(self):
        assert ReadWriteSet().derive_type() is TxType.READ


class TestReadWriteSet:
    def test_read_keys_include_range_results(self):
        rwset = ReadWriteSet(
            reads={"a": Version(0, 0)},
            range_queries=[
                RangeQueryInfo(start="b", end="d", results=(("b", Version(0, 1)), ("c", Version(0, 2))))
            ],
        )
        assert rwset.read_keys == {"a", "b", "c"}
        assert rwset.all_keys == {"a", "b", "c"}

    def test_estimated_bytes_grows_with_content(self):
        small = ReadWriteSet(writes={"k": 1}).estimated_bytes()
        big = ReadWriteSet(writes={f"key{i}": "x" * 50 for i in range(10)}).estimated_bytes()
        assert big > small


class TestTransaction:
    def test_latency_requires_commit(self):
        tx = _tx(1)
        assert tx.latency is None
        tx.commit_time = 4.0
        tx.client_timestamp = 1.0
        assert tx.latency == 3.0

    def test_status_failure_flags(self):
        assert not TxStatus.SUCCESS.is_failure
        for status in (
            TxStatus.MVCC_CONFLICT,
            TxStatus.PHANTOM_CONFLICT,
            TxStatus.ENDORSEMENT_FAILURE,
            TxStatus.EARLY_ABORT,
        ):
            assert status.is_failure
