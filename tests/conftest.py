"""Shared fixtures: small, fast network/workload setups for unit tests."""

from __future__ import annotations

import pytest

from repro.fabric.chaincode import ChaincodeContext, Contract, contract_function
from repro.fabric.config import NetworkConfig, TimingConfig, default_orgs
from repro.fabric.network import FabricNetwork, run_workload
from repro.fabric.state import WorldState
from repro.fabric.transaction import TxRequest, Version


class CounterContract(Contract):
    """Tiny contract used across unit tests: counters plus reads/scans."""

    name = "counter"

    def __init__(self, num_keys: int = 20) -> None:
        self.num_keys = num_keys

    def key(self, index: int) -> str:
        return f"ctr:{index:04d}"

    def setup(self, state: WorldState) -> None:
        for index in range(self.num_keys):
            state.put(self.key(index), 0, Version(0, index))

    @contract_function
    def get(self, ctx: ChaincodeContext, key: str):
        return ctx.get_state(key)

    @contract_function
    def bump(self, ctx: ChaincodeContext, key: str) -> None:
        value = ctx.get_state(key) or 0
        ctx.put_state(key, value + 1)

    @contract_function
    def put(self, ctx: ChaincodeContext, key: str, value) -> None:
        ctx.put_state(key, value)

    @contract_function
    def scan(self, ctx: ChaincodeContext, start: str, end: str):
        return ctx.get_state_range(start, end)

    @contract_function
    def drop(self, ctx: ChaincodeContext, key: str) -> None:
        ctx.get_state(key)
        ctx.delete_state(key)


def small_config(**overrides) -> NetworkConfig:
    """A 2-org network with fast timing for unit tests."""
    defaults = dict(
        orgs=default_orgs(2, num_clients=2, endorsers_per_org=1),
        endorsement_policy="Majority(Org1,Org2)",
        block_count=25,
        block_timeout=0.5,
        timing=TimingConfig(),
        seed=11,
    )
    defaults.update(overrides)
    return NetworkConfig(**defaults)


def counter_requests(
    count: int = 100, rate: float = 100.0, bump_fraction: float = 0.5, num_keys: int = 20
) -> list[TxRequest]:
    """Deterministic mixed read/bump workload over the counter contract."""
    requests = []
    for index in range(count):
        key = f"ctr:{index % num_keys:04d}"
        if index % 100 < bump_fraction * 100:
            requests.append(
                TxRequest(submit_time=index / rate, activity="bump", args=(key,), contract="counter")
            )
        else:
            requests.append(
                TxRequest(submit_time=index / rate, activity="get", args=(key,), contract="counter")
            )
    return requests


@pytest.fixture
def counter_contract() -> CounterContract:
    return CounterContract()


@pytest.fixture
def small_network(counter_contract) -> FabricNetwork:
    return FabricNetwork(small_config(), [counter_contract])


@pytest.fixture
def finished_network(counter_contract):
    """A network that has already executed a small mixed workload."""
    network, result = run_workload(
        small_config(), [counter_contract], counter_requests(count=200, rate=200.0)
    )
    return network, result
