"""Tests for the extension modules: serializability verification, the
feedback loop, threshold auto-tuning, insights, fuzzy mining, DOT export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.experiments import make_usecase
from repro.contracts.registry import scm_family, voting_family
from repro.core import (
    BlockOptR,
    FeedbackLoop,
    GridTuner,
    LabelledLog,
    OptimizationKind as K,
    calibrate_rate_threshold,
    derive_insights,
    render_insights,
    technical_only,
)
from repro.core.autotune import TuningResult
from repro.core.feedback import approve_all
from repro.core.recommendations import Recommendation
from repro.core.thresholds import Thresholds
from repro.fabric import run_workload, verify_serializability
from repro.fabric.transaction import TxRequest
from repro.logs import extract_blockchain_log
from repro.mining import (
    DirectlyFollowsGraph,
    alpha_miner,
    dependency_to_dot,
    dfg_to_dot,
    fuzzy_miner,
    fuzzy_to_dot,
    heuristics_miner,
    petri_to_dot,
)

from tests.conftest import CounterContract, counter_requests, small_config


# -- serializability ----------------------------------------------------------------


class TestSerializability:
    def test_counter_workload_serializable(self, finished_network):
        network, _ = finished_network
        report = verify_serializability(network)
        assert report.ok
        assert report.transactions_replayed > 0

    def test_contended_workload_serializable(self):
        requests = [
            TxRequest(submit_time=0.002 * i, activity="bump", args=("ctr:0000",), contract="counter")
            for i in range(40)
        ]
        network, result = run_workload(small_config(), [CounterContract()], requests)
        assert result.success_rate < 1.0  # real contention happened
        assert verify_serializability(network).ok

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_any_seed_serializable(self, seed):
        config = small_config(seed=seed)
        requests = counter_requests(count=120, rate=400.0)
        network, _ = run_workload(config, [CounterContract()], requests)
        assert verify_serializability(network).ok

    def test_usecase_workloads_serializable(self):
        for usecase in ("scm", "voting"):
            config, family, requests = make_usecase(usecase, total_transactions=800)()
            deployment = family.deploy()
            network, _ = run_workload(config, deployment.contracts, requests)
            assert verify_serializability(network).ok, usecase


# -- feedback loop -------------------------------------------------------------------


class TestFeedbackLoop:
    def test_voting_loop_reaches_high_success(self):
        config, family, requests = make_usecase("voting", total_transactions=800)()
        loop = FeedbackLoop(voting_family(), max_iterations=3)
        outcome = loop.run(config, requests)
        assert outcome.final.success_rate > outcome.baseline.success_rate
        assert outcome.improvement() > 10.0
        assert len(outcome.rounds) >= 2

    def test_loop_converges_when_nothing_recommended(self):
        config = small_config()
        from repro.contracts.registry import genchain_family

        requests = [
            TxRequest(submit_time=i / 10.0, activity="get", args=(f"ctr:{i % 5:04d}",), contract="counter")
            for i in range(50)
        ]
        # Healthy low-rate workload on the counter contract: use a family
        # whose baseline is the counter contract itself.
        from repro.contracts.registry import ContractDeployment, ContractFamily

        family = ContractFamily(
            family="counter",
            baseline=lambda: ContractDeployment(contracts=[CounterContract()]),
        )
        loop = FeedbackLoop(family, max_iterations=3)
        outcome = loop.run(config, requests)
        assert outcome.converged
        assert len(outcome.rounds) == 1
        assert outcome.rounds[0].applied == []

    def test_approval_policy_vetoes(self):
        config, family, requests = make_usecase("scm", total_transactions=1200)()
        loop = FeedbackLoop(scm_family(), approval=technical_only, max_iterations=2)
        outcome = loop.run(config, requests)
        vetoed = {kind for round_ in outcome.rounds for kind in round_.vetoed}
        applied = {kind for round_ in outcome.rounds for kind in round_.applied}
        assert K.ACTIVITY_REORDERING in vetoed
        assert K.ACTIVITY_REORDERING not in applied

    def test_approve_all_passes_everything(self):
        rec = Recommendation(kind=K.DELTA_WRITES, rationale="")
        assert approve_all(rec)
        assert not technical_only(
            Recommendation(kind=K.ENDORSER_RESTRUCTURING, rationale="")
        )
        assert technical_only(rec)

    def test_bad_iteration_budget(self):
        with pytest.raises(ValueError):
            FeedbackLoop(voting_family(), max_iterations=0)


# -- autotune ------------------------------------------------------------------------


class TestAutotune:
    def test_calibrate_rate_threshold_finds_instability(self, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        tuned = calibrate_rate_threshold(log, Thresholds(failure_fraction=0.01))
        assert tuned.rate_high <= Thresholds().rate_high

    def test_calibrate_keeps_default_when_stable(self, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        tuned = calibrate_rate_threshold(log, Thresholds(failure_fraction=1.0))
        assert tuned.rate_high == Thresholds().rate_high

    def test_grid_tuner_improves_agreement(self):
        config, family, requests = make_usecase("voting", total_transactions=800)()
        deployment = family.deploy()
        network, _ = run_workload(config, deployment.contracts, requests)
        log = extract_blockchain_log(network)
        example = LabelledLog(
            log=log,
            expected=frozenset({K.DATA_MODEL_ALTERATION, K.TRANSACTION_RATE_CONTROL}),
        )
        result = GridTuner().tune([example])
        assert isinstance(result, TuningResult)
        assert 0.0 <= result.f1 <= 1.0
        assert result.evaluated == 27  # 3x3x3 default grid
        assert result.f1 >= max(score for _, score in result.trace) - 1e-9

    def test_grid_tuner_validates_grid(self):
        with pytest.raises(ValueError):
            GridTuner({"bogus_threshold": (1.0,)})

    def test_grid_tuner_needs_examples(self):
        with pytest.raises(ValueError):
            GridTuner().tune([])


# -- insights ------------------------------------------------------------------------


class TestInsights:
    @pytest.fixture(scope="class")
    def drm_insights(self):
        config, family, requests = make_usecase("drm", total_transactions=1500)()
        deployment = family.deploy()
        network, _ = run_workload(config, deployment.contracts, requests)
        report = BlockOptR().analyze_network(network)
        return derive_insights(report.metrics)

    def test_play_identified_as_culprit_and_victim(self, drm_insights):
        assert "play" in drm_insights.top_culprits()
        assert "play" in drm_insights.top_victims()

    def test_distance_histogram_populated(self, drm_insights):
        assert sum(drm_insights.distance_histogram.values()) > 0

    def test_scheduler_suggestion_valid(self, drm_insights):
        assert drm_insights.suggested_scheduler in ("fabricpp", "fabricsharp", "none")

    def test_conflict_graph_edges_weighted(self, drm_insights):
        graph = drm_insights.conflict_graph
        assert graph.number_of_edges() > 0
        assert all("weight" in data for _, _, data in graph.edges(data=True))

    def test_render_insights_readable(self, drm_insights):
        text = render_insights(drm_insights)
        assert "intra-block failure share" in text

    def test_empty_metrics_suggest_none(self):
        from repro.core.metrics import compute_metrics
        from tests.test_logs import make_log, make_record

        insights = derive_insights(compute_metrics(make_log([make_record(0)])))
        assert insights.suggested_scheduler == "none"
        assert insights.intra_block_share == 0.0


# -- fuzzy miner ---------------------------------------------------------------------


TRACES = [("a", "b", "c")] * 50 + [("a", "x", "c")] * 2  # x is rare noise


class TestFuzzyMiner:
    def test_rare_activity_clustered(self):
        model = fuzzy_miner(TRACES, node_significance=0.05)
        assert "x" in model.clustered
        assert "a" in model.nodes and "b" in model.nodes

    def test_main_edges_kept(self):
        model = fuzzy_miner(TRACES, node_significance=0.05, edge_significance=0.05)
        assert ("a", "b") in model.edges

    def test_simplification_ratio(self):
        dfg = DirectlyFollowsGraph.from_traces(TRACES)
        model = fuzzy_miner(TRACES, node_significance=0.05, edge_significance=0.05)
        assert 0.0 < model.simplification_ratio(dfg) <= 1.0

    def test_zero_thresholds_keep_everything(self):
        model = fuzzy_miner(TRACES, node_significance=0.0, edge_significance=0.0)
        assert not model.clustered
        dfg = DirectlyFollowsGraph.from_traces(TRACES)
        assert len(model.edges) == len(dfg.counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            fuzzy_miner(TRACES, node_significance=2.0)
        with pytest.raises(ValueError):
            fuzzy_miner([])


# -- DOT export ----------------------------------------------------------------------


class TestDotExport:
    def test_dfg_dot(self):
        dot = dfg_to_dot(DirectlyFollowsGraph.from_traces(TRACES))
        assert dot.startswith("digraph dfg {") and dot.endswith("}")
        assert '"a" -> "b"' in dot

    def test_petri_dot(self):
        dot = petri_to_dot(alpha_miner([("a", "b", "c")] * 5))
        assert "shape=box" in dot and "doublecircle" in dot

    def test_dependency_dot(self):
        dot = dependency_to_dot(heuristics_miner(TRACES, dependency_threshold=0.5))
        assert '"a" -> "b"' in dot

    def test_fuzzy_dot(self):
        dot = fuzzy_to_dot(fuzzy_miner(TRACES, node_significance=0.05))
        assert "style=dashed" in dot  # the cluster node

    def test_quoting_special_names(self):
        traces = [('say "hi"', "b")] * 3
        dot = dfg_to_dot(DirectlyFollowsGraph.from_traces(traces))
        assert '\\"hi\\"' in dot
