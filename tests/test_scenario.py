"""Scenario engine: spec DSL, interventions, transforms, bench + CLI paths."""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import make_synthetic
from repro.fabric.network import FabricNetwork, run_workload
from repro.scenario import (
    Intervention,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.workloads.schedule import compress_window, piecewise_rate_times

from tests.conftest import CounterContract, counter_requests, small_config


def _bundle(total=400, experiment="default"):
    config, family, requests = make_synthetic(
        experiment, total_transactions=total
    )()
    return config, family.deploy().contracts, requests


def _run(scenario=None, total=400, experiment="default"):
    config, contracts, requests = _bundle(total, experiment)
    if scenario is None:
        return run_workload(config, contracts, requests)
    return run_scenario(scenario, config, contracts, requests)


# -- spec validation and serialization -------------------------------------------------


class TestScenarioSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown intervention kind"):
            Intervention(kind="meteor_strike", at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Intervention(kind="peer_crash", at=-0.5)

    def test_windowed_kinds_require_duration(self):
        with pytest.raises(ValueError, match="requires a duration"):
            Intervention(kind="burst_arrivals", at=1.0, factor=2.0)
        with pytest.raises(ValueError, match="requires a duration"):
            Intervention(kind="conflict_storm", at=1.0)

    def test_burst_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="exceed 1"):
            Intervention(kind="burst_arrivals", at=0.0, duration=1.0, factor=1.0)

    def test_conflict_storm_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            Intervention(kind="conflict_storm", at=0.0, duration=1.0, fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            Intervention(kind="conflict_storm", at=0.0, duration=1.0, fraction=1.5)

    def test_scenario_needs_interventions(self):
        with pytest.raises(ValueError, match="no interventions"):
            ScenarioSpec(name="empty")

    def test_every_library_scenario_round_trips_through_json(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_dict_omits_fields_irrelevant_to_the_kind(self):
        # Dumps double as authoring templates: a crash must not advertise
        # factor/fraction/hot_keys/activity, which do nothing for it.
        crash = Intervention(kind="peer_crash", at=0.5, target="Org1-peer0").to_dict()
        assert set(crash) == {"kind", "at", "target"}
        spike = Intervention(kind="latency_spike", at=1.0, duration=2.0, factor=5.0)
        assert set(spike.to_dict()) == {"kind", "at", "duration", "factor"}
        storm = Intervention(kind="conflict_storm", at=0.0, duration=1.0).to_dict()
        assert {"fraction", "hot_keys", "activity"} <= set(storm)
        assert "target" not in storm

    def test_from_dict_reports_missing_fields(self):
        with pytest.raises(ValueError, match="missing field"):
            ScenarioSpec.from_dict({"name": "x"})
        with pytest.raises(ValueError, match="malformed"):
            ScenarioSpec.from_dict(
                {"name": "x", "interventions": [{"kind": "peer_crash", "when": 1}]}
            )

    def test_unknown_library_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_intervention_partition(self):
        spec = get_scenario("chaos")
        network = {iv.kind for iv in spec.network_interventions()}
        workload = {iv.kind for iv in spec.workload_interventions()}
        assert not network & workload
        assert len(spec.network_interventions()) + len(
            spec.workload_interventions()
        ) == len(spec.interventions)


class TestSpecValidationHardening:
    """Parse-time rejection of degenerate values (ISSUE 8, satellite 1).

    NaN comparisons are always false, so ``at < 0``-style checks silently
    accept NaN unless finiteness is checked first — and a NaN timestamp
    would wedge the kernel heap's tuple ordering mid-run.  The fuzzer
    relies on every one of these being caught at construction time.
    """

    def test_nan_and_inf_times_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                Intervention(kind="peer_crash", at=bad, target="Org1")

    def test_nan_and_inf_durations_rejected(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError, match="finite"):
                Intervention(kind="latency_spike", at=0.0, duration=bad, factor=2.0)

    def test_nan_factor_and_fraction_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Intervention(
                kind="latency_spike", at=0.0, duration=1.0, factor=float("nan")
            )
        with pytest.raises(ValueError, match="finite"):
            Intervention(
                kind="conflict_storm", at=0.0, duration=1.0, fraction=float("nan")
            )

    def test_out_of_range_factor_rejected(self):
        with pytest.raises(ValueError, match="must be <="):
            Intervention(kind="latency_spike", at=0.0, duration=1.0, factor=1e6)

    def test_profile_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at offset 0.0"):
            Intervention(kind="rate_curve", at=0.0, profile=((0.5, 100.0),))

    def test_unordered_profile_breakpoints_rejected(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Intervention(
                kind="rate_curve",
                at=0.0,
                profile=((0.0, 100.0), (2.0, 50.0), (1.0, 200.0)),
            )

    def test_profile_rates_must_be_positive_finite_and_bounded(self):
        with pytest.raises(ValueError, match="positive"):
            Intervention(kind="rate_curve", at=0.0, profile=((0.0, 0.0),))
        with pytest.raises(ValueError, match="finite"):
            Intervention(kind="rate_curve", at=0.0, profile=((0.0, float("nan")),))
        with pytest.raises(ValueError, match="must be <="):
            Intervention(kind="rate_curve", at=0.0, profile=((0.0, 1e9),))

    def test_profile_rejected_on_other_kinds(self):
        with pytest.raises(ValueError, match="does not take a rate profile"):
            Intervention(
                kind="latency_spike",
                at=0.0,
                duration=1.0,
                factor=2.0,
                profile=((0.0, 100.0),),
            )

    def test_region_lag_requires_an_org_target(self):
        with pytest.raises(ValueError, match="organization target"):
            Intervention(kind="region_lag", at=0.0, duration=1.0, factor=2.0)

    def test_hot_key_drift_needs_two_phases(self):
        with pytest.raises(ValueError, match=">= 2 phases"):
            Intervention(
                kind="hot_key_drift", at=0.0, duration=1.0, phases=1
            )

    def test_mix_shift_activity_membership(self):
        with pytest.raises(ValueError, match="from_activity"):
            Intervention(
                kind="mix_shift", at=0.0, duration=1.0, from_activity="meteor"
            )
        # write requires a value argument, so a shift *onto* write would
        # produce invalid single-arg requests — rejected at parse time.
        with pytest.raises(ValueError, match="to_activity"):
            Intervention(
                kind="mix_shift", at=0.0, duration=1.0, to_activity="write"
            )
        with pytest.raises(ValueError, match="must change the activity"):
            Intervention(
                kind="mix_shift",
                at=0.0,
                duration=1.0,
                from_activity="read",
                to_activity="read",
            )

    def test_new_kinds_round_trip_json(self):
        spec = ScenarioSpec(
            name="new_kinds",
            interventions=(
                Intervention(
                    kind="rate_curve",
                    at=0.2,
                    profile=((0.0, 500.0), (1.0, 100.0), (2.5, 900.0)),
                ),
                Intervention(
                    kind="hot_key_drift",
                    at=0.1,
                    duration=2.0,
                    fraction=0.5,
                    hot_keys=3,
                    activity="update",
                    phases=3,
                ),
                Intervention(
                    kind="mix_shift",
                    at=0.3,
                    duration=1.0,
                    fraction=0.75,
                    from_activity="write",
                    to_activity="read",
                ),
                Intervention(
                    kind="region_lag", at=0.4, duration=1.0, target="Org2", factor=5.0
                ),
            ),
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        for iv in spec.interventions:
            assert iv.describe()


# -- kernel-scheduled interventions ----------------------------------------------------


class TestNetworkInterventions:
    def test_crash_causes_endorsement_failures_until_recovery(self):
        _, baseline = _run()
        crash = ScenarioSpec(
            name="crash",
            interventions=(
                Intervention(kind="peer_crash", at=0.2, duration=0.5, target="Org1-peer0"),
            ),
        )
        network, result = _run(crash)
        assert "endorsement_policy_failure" not in baseline.failure_counts
        assert result.failure_counts.get("endorsement_policy_failure", 0) > 0
        # Recovery happened: transactions after the window still succeed.
        assert result.success_count > 0
        kinds = [kind for _, kind, _ in network.scenario_engine.timeline]
        assert kinds == ["peer_crash", "peer_recover"]

    def test_explicit_recover_matches_auto_recover(self):
        auto = ScenarioSpec(
            name="auto",
            interventions=(
                Intervention(kind="peer_crash", at=0.2, duration=0.5, target="Org2-peer0"),
            ),
        )
        explicit = ScenarioSpec(
            name="explicit",
            interventions=(
                Intervention(kind="peer_crash", at=0.2, target="Org2-peer0"),
                Intervention(kind="peer_recover", at=0.7, target="Org2-peer0"),
            ),
        )
        _, a = _run(auto)
        _, b = _run(explicit)
        assert a.summary_row() == b.summary_row()
        assert a.failure_counts == b.failure_counts

    def test_endorser_slowdown_raises_latency_and_restores(self):
        _, baseline = _run()
        slow = ScenarioSpec(
            name="slow",
            interventions=(
                Intervention(
                    kind="endorser_slowdown", at=0.2, duration=1.0, target="Org1", factor=8.0
                ),
            ),
        )
        network, result = _run(slow)
        assert result.avg_latency > baseline.avg_latency
        # The multiplier is restored after the window.
        for peer in network.endorsers.peers("Org1"):
            assert peer.service_multiplier == 1.0

    def test_latency_spike_raises_latency_and_restores(self):
        _, baseline = _run()
        spike = ScenarioSpec(
            name="spike",
            interventions=(
                Intervention(kind="latency_spike", at=0.2, duration=1.0, factor=200.0),
            ),
        )
        network, result = _run(spike)
        assert result.avg_latency > baseline.avg_latency
        assert network.conditions.delay_multiplier == 1.0

    def test_orderer_degradation_raises_latency(self):
        _, baseline = _run()
        degraded = ScenarioSpec(
            name="degraded",
            interventions=(
                Intervention(kind="orderer_degradation", at=0.2, duration=1.5, factor=6.0),
            ),
        )
        network, result = _run(degraded)
        assert result.avg_latency > baseline.avg_latency
        assert network.orderer.server.service_multiplier == 1.0

    def test_permanent_crash_of_all_peers_fails_everything_submitted(self):
        dead = ScenarioSpec(
            name="dead",
            interventions=(Intervention(kind="peer_crash", at=0.0),),
        )
        _, result = _run(dead)
        assert result.success_count == 0
        assert result.failure_counts.get("endorsement_policy_failure", 0) > 0

    def test_unknown_target_raises_at_install_time(self):
        config, contracts, requests = _bundle()
        bad = ScenarioSpec(
            name="bad",
            interventions=(
                Intervention(kind="peer_crash", at=0.5, target="Org9-peer3"),
            ),
        )
        with pytest.raises(KeyError, match="unknown endorser target"):
            FabricNetwork(config, contracts, scenario=bad)

    def test_accounting_survives_interventions(self):
        # run() raises on any transaction-accounting mismatch, so a clean
        # return under chaos means nothing was lost or double counted.
        _, result = _run(get_scenario("chaos"), total=600)
        assert result.total_issued == 600

    def test_disabled_peer_not_selected_while_sibling_up(self):
        config = small_config(seed=3)
        config.orgs[0].endorsers_per_org = 2
        contract = CounterContract()
        network = FabricNetwork(config, [contract])
        crashed, healthy = network.endorsers.peers("Org1")
        crashed.enabled = False
        result = network.run(counter_requests(count=60, rate=200.0))
        assert crashed.stats.jobs == 0
        assert healthy.stats.jobs > 0
        assert "endorsement_policy_failure" not in result.failure_counts
        assert result.success_count > 0


# -- workload transforms ---------------------------------------------------------------


class TestWorkloadTransforms:
    def test_compress_window_preserves_count_and_order(self):
        config, contracts, requests = _bundle()
        squeezed = compress_window(requests, start=0.5, duration=0.6, factor=3.0)
        assert len(squeezed) == len(requests)
        times = [r.submit_time for r in squeezed]
        assert times == sorted(times)
        for before, after in zip(requests, squeezed):
            if 0.5 <= before.submit_time < 1.1:
                assert after.submit_time == pytest.approx(
                    0.5 + (before.submit_time - 0.5) / 3.0
                )
            else:
                assert after.submit_time == before.submit_time
            assert (after.activity, after.args) == (before.activity, before.args)

    def test_compress_window_validation(self):
        with pytest.raises(ValueError, match="duration"):
            compress_window([], start=0.0, duration=0.0, factor=2.0)
        with pytest.raises(ValueError, match="factor"):
            compress_window([], start=0.0, duration=1.0, factor=1.0)

    def test_burst_raises_peak_pressure(self):
        _, baseline = _run()
        burst = ScenarioSpec(
            name="burst",
            interventions=(
                Intervention(kind="burst_arrivals", at=0.2, duration=0.8, factor=4.0),
            ),
        )
        _, result = _run(burst)
        # Compressing arrivals can only hold or worsen latency.
        assert result.avg_latency >= baseline.avg_latency

    def test_conflict_storm_inflates_mvcc_conflicts(self):
        _, baseline = _run(experiment="workload_update_heavy")
        storm = ScenarioSpec(
            name="storm",
            interventions=(
                Intervention(
                    kind="conflict_storm",
                    at=0.0,
                    duration=2.0,
                    fraction=1.0,
                    hot_keys=2,
                ),
            ),
        )
        _, result = _run(storm, experiment="workload_update_heavy")
        assert result.failure_counts.get(
            "mvcc_read_conflict", 0
        ) > baseline.failure_counts.get("mvcc_read_conflict", 0)

    def test_conflict_storm_retargets_requested_fraction(self):
        from repro.scenario.engine import _conflict_storm

        config, contracts, requests = _bundle(experiment="workload_update_heavy")
        iv = Intervention(
            kind="conflict_storm", at=0.0, duration=1.0, fraction=0.5, hot_keys=3
        )
        out, hit = _conflict_storm(requests, iv)
        assert len(out) == len(requests)
        in_window = [
            r for r in requests if r.activity == "update" and 0.0 <= r.submit_time < 1.0
        ]
        assert hit == pytest.approx(len(in_window) * 0.5, abs=1)
        retargeted_keys = {o.args[0] for r, o in zip(requests, out) if o.args != r.args}
        assert 0 < len(retargeted_keys) <= 3
        # Non-update requests are untouched.
        for before, after in zip(requests, out):
            if before.activity != "update":
                assert before.args == after.args

    def test_piecewise_rate_times_counts_and_extends(self):
        times = piecewise_rate_times(10, [(1.0, 5.0), (1.0, 2.0)])
        assert len(times) == 10
        assert times == sorted(times)
        assert times[:5] == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8])
        # Second segment (and its rate) extends past its nominal duration.
        assert times[5:] == pytest.approx([1.0, 1.5, 2.0, 2.5, 3.0])

    def test_piecewise_rate_times_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            piecewise_rate_times(5, [])
        with pytest.raises(ValueError, match="duration"):
            piecewise_rate_times(5, [(0.0, 10.0)])
        with pytest.raises(ValueError, match="rate"):
            piecewise_rate_times(5, [(1.0, 0.0)])

    def test_control_variables_send_rate_profile(self):
        from repro.workloads.spec import ControlVariables
        from repro.workloads.synthetic import synthetic_workload

        spec = ControlVariables(
            total_transactions=20, send_rate_profile=[(0.05, 100.0), (1.0, 400.0)]
        )
        _, _, requests = synthetic_workload(spec)
        times = [r.submit_time for r in requests]
        assert len(times) == 20
        assert times[:5] == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])
        assert times[6] - times[5] == pytest.approx(1 / 400.0)


# -- bench and CLI integration ---------------------------------------------------------


class TestScenarioBench:
    def test_registry_exposes_scenario_group(self):
        from repro.bench.registry import experiments

        specs = experiments("scenario_faults") + experiments("fuzzed")
        # Every library scenario runs from the registry: the hand-written
        # ones under scenario_faults, the fuzzer-promoted ones under fuzzed.
        assert {spec.variant for spec in specs} >= set(scenario_names()) - {"chaos"}
        for spec in specs:
            assert spec.maker == "scenario"
            # Scenario name is part of the cache identity.
            assert spec.variant in spec.payload()["maker_args"]

    def test_scenario_experiment_round_trips_executor_and_cache(self, tmp_path):
        from repro.bench.cache import ResultCache
        from repro.bench.executor import run_spec, run_suite
        from repro.bench.registry import get

        spec = get("scenario_faults/crash_burst").with_overrides(
            total_transactions=300
        )
        serial = run_spec(spec)
        cache = ResultCache(tmp_path)
        cold = run_suite([spec], jobs=2, cache=cache)
        assert cold.simulated_runs == spec.run_count()
        warm = run_suite([spec], jobs=2, cache=cache)
        assert warm.simulated_runs == 0
        assert cold.outcomes[0].rows == serial.rows == warm.outcomes[0].rows
        assert cold.outcomes[0].recommendations == serial.recommendations

    def test_scenario_baseline_differs_from_steady_state(self):
        from repro.bench.executor import run_spec
        from repro.bench.registry import get

        faulted = run_spec(
            get("scenario_faults/crash_burst").with_overrides(total_transactions=300)
        )
        # send_rate_300 is the default configuration spelled explicitly.
        steady = run_spec(
            get("table3/send_rate_300").with_overrides(total_transactions=300)
        )
        assert faulted.row("without") != steady.row("without")


class TestScenarioCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_dump_round_trips(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--dump", "crash_burst"]) == 0
        dumped = ScenarioSpec.from_json(capsys.readouterr().out)
        assert dumped == get_scenario("crash_burst")

    def test_run_with_determinism_check(self, capsys):
        from repro.cli import main

        rc = main(["scenario", "--txs", "300", "--check-determinism"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "determinism check (second run, same seed): identical" in out
        assert "under scenario" in out

    def test_run_from_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "storm.json"
        path.write_text(get_scenario("conflict_storm").to_json())
        rc = main(["scenario", "--spec", str(path), "--txs", "300"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflict_storm" in out

    def test_unknown_scenario_name_errors(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--name", "nope", "--txs", "100"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_spec_file_errors(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "interventions": []}))
        assert main(["scenario", "--spec", str(path), "--txs", "100"]) == 2

    def test_missing_spec_file_reports_filename(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "nope.json"
        assert main(["scenario", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "nope.json" in err  # not a bare errno like "error: 2"
