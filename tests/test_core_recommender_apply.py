"""Tests for the BlockOptR workflow, optimization appliers, and report."""

import pytest

from repro.contracts.registry import drm_family, genchain_family, scm_family, voting_family
from repro.core import (
    BlockOptR,
    OptimizationKind as K,
    Recommendation,
    apply_recommendations,
    render_report,
)
from repro.core.thresholds import Thresholds
from repro.fabric import run_workload
from repro.fabric.transaction import TxRequest
from repro.logs import extract_blockchain_log, log_to_csv, log_to_json
from repro.workloads import ControlVariables, synthetic_workload

from tests.conftest import CounterContract, counter_requests, small_config


@pytest.fixture(scope="module")
def synthetic_report():
    spec = ControlVariables(total_transactions=1500, seed=5)
    config, deployment, requests = synthetic_workload(spec)
    network, _ = run_workload(config, deployment.contracts, requests)
    return BlockOptR().analyze_network(network), config, requests


class TestWorkflow:
    def test_report_has_all_artifacts(self, synthetic_report):
        report, _, _ = synthetic_report
        assert report.metrics.total_transactions == 1500
        assert report.event_log.derivation.attribute
        assert report.dfg.activities()
        assert report.footprint.activities

    def test_by_level_partitions(self, synthetic_report):
        report, _, _ = synthetic_report
        from repro.core.recommendations import Level

        total = sum(len(report.by_level(level)) for level in Level)
        assert total == len(report.recommendations)

    def test_get_unknown_kind_raises(self, synthetic_report):
        report, _, _ = synthetic_report
        missing = (set(K) - report.recommended_kinds()).pop()
        with pytest.raises(KeyError):
            report.get(missing)

    def test_analyze_file_csv_and_json(self, tmp_path, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        csv_path, json_path = tmp_path / "log.csv", tmp_path / "log.json"
        log_to_csv(log, csv_path)
        log_to_json(log, json_path)
        report_csv = BlockOptR().analyze_file(csv_path)
        report_json = BlockOptR().analyze_file(json_path)
        assert report_csv.metrics.total_transactions == report_json.metrics.total_transactions
        with pytest.raises(ValueError):
            BlockOptR().analyze_file(tmp_path / "log.xml")

    def test_analyze_ledger_direct(self, finished_network):
        network, _ = finished_network
        report = BlockOptR().analyze_ledger(network.ledger)
        assert report.metrics.total_transactions == 200

    def test_custom_thresholds_respected(self, finished_network):
        network, _ = finished_network
        strict = Thresholds(rate_high=1.0, failure_fraction=0.0)
        report = BlockOptR(strict).analyze_network(network)
        assert report.recommends(K.TRANSACTION_RATE_CONTROL)


class TestApply:
    def _base(self):
        config = small_config()
        family = genchain_family(num_keys=50)
        requests = counter_requests(count=50)
        return config, family, requests

    def test_rate_control_caps_rate(self):
        config, family, requests = self._base()
        rec = Recommendation(
            kind=K.TRANSACTION_RATE_CONTROL, rationale="", actions={"target_rate": 10.0}
        )
        result = apply_recommendations([rec], config, family, requests)
        gaps = [
            b.submit_time - a.submit_time
            for a, b in zip(result.requests, result.requests[1:])
        ]
        assert all(g >= 0.1 - 1e-9 for g in gaps)
        assert result.applied == [K.TRANSACTION_RATE_CONTROL]

    def test_block_size_applied(self):
        config, family, requests = self._base()
        rec = Recommendation(
            kind=K.BLOCK_SIZE_ADAPTATION, rationale="", actions={"block_count": 123}
        )
        result = apply_recommendations([rec], config, family, requests)
        assert result.config.block_count == 123
        assert config.block_count != 123  # original untouched

    def test_endorser_restructuring_applied(self):
        config, family, requests = self._base()
        rec = Recommendation(
            kind=K.ENDORSER_RESTRUCTURING,
            rationale="",
            actions={"policy": "OutOf(1,Org1,Org2)", "balance_selection": True},
        )
        result = apply_recommendations([rec], config, family, requests)
        assert result.config.endorsement_policy == "OutOf(1,Org1,Org2)"
        assert result.config.endorser_selection_skew == 0.0

    def test_client_boost_doubles_clients(self):
        config, family, requests = self._base()
        before = config.org("Org1").num_clients
        rec = Recommendation(
            kind=K.CLIENT_RESOURCE_BOOST,
            rationale="",
            actions={"orgs": ("Org1",), "scale_factor": 2},
        )
        result = apply_recommendations([rec], config, family, requests)
        assert result.config.org("Org1").num_clients == 2 * before

    def test_reordering_moves_activities(self):
        config, family, requests = self._base()
        rec = Recommendation(
            kind=K.ACTIVITY_REORDERING,
            rationale="",
            actions={"front": ("get",), "back": ()},
        )
        result = apply_recommendations([rec], config, family, requests)
        activities = [r.activity for r in result.requests]
        first_bump = activities.index("bump")
        assert all(a == "get" for a in activities[:first_bump])

    def test_contract_swap_unsupported_skipped(self):
        config, family, requests = self._base()  # genchain has no variants
        rec = Recommendation(kind=K.DELTA_WRITES, rationale="")
        result = apply_recommendations([rec], config, family, requests)
        assert result.skipped == [K.DELTA_WRITES]
        assert result.applied == []

    def test_contract_swap_pruning(self):
        from repro.contracts.scm import PrunedScmContract

        config, _, requests = self._base()
        family = scm_family()
        rec = Recommendation(kind=K.PROCESS_MODEL_PRUNING, rationale="")
        result = apply_recommendations([rec], config, family, requests)
        assert isinstance(result.deployment.contracts[0], PrunedScmContract)

    def test_only_one_swap_applied(self):
        config, _, requests = self._base()
        family = drm_family()
        recs = [
            Recommendation(kind=K.DELTA_WRITES, rationale=""),
            Recommendation(kind=K.SMART_CONTRACT_PARTITIONING, rationale=""),
        ]
        result = apply_recommendations(recs, config, family, requests)
        assert result.applied == [K.DELTA_WRITES]
        assert result.skipped == [K.SMART_CONTRACT_PARTITIONING]

    def test_partitioning_reroutes_requests(self):
        config = small_config()
        family = drm_family(num_tracks=5)
        requests = [
            TxRequest(submit_time=0.0, activity="play", args=("M00000",), contract="drm"),
            TxRequest(submit_time=0.1, activity="viewMetaData", args=("M00000",), contract="drm"),
        ]
        rec = Recommendation(kind=K.SMART_CONTRACT_PARTITIONING, rationale="")
        result = apply_recommendations([rec], config, family, requests)
        contracts = {r.activity: r.contract for r in result.requests}
        assert contracts == {"play": "drm_play", "viewMetaData": "drm_meta"}

    def test_only_filter_restricts(self):
        config, family, requests = self._base()
        recs = [
            Recommendation(kind=K.BLOCK_SIZE_ADAPTATION, rationale="", actions={"block_count": 5}),
            Recommendation(kind=K.TRANSACTION_RATE_CONTROL, rationale="", actions={"target_rate": 10.0}),
        ]
        result = apply_recommendations(
            recs, config, family, requests, only={K.BLOCK_SIZE_ADAPTATION}
        )
        assert result.applied == [K.BLOCK_SIZE_ADAPTATION]
        assert result.config.block_count == 5

    def test_voting_alteration_end_to_end(self):
        """Applying data model alteration to the DV contract removes conflicts."""
        from repro.workloads import voting_workload
        from repro.workloads.usecases import UseCaseSpec

        config, _, requests = voting_workload(
            UseCaseSpec(total_transactions=600, seed=3), query_count=50, vote_count=400
        )
        family = voting_family()
        _, baseline = run_workload(config, family.deploy().contracts, requests)
        rec = Recommendation(kind=K.DATA_MODEL_ALTERATION, rationale="")
        applied = apply_recommendations([rec], config, family, requests)
        _, optimized = run_workload(applied.config, applied.deployment.contracts, applied.requests)
        assert optimized.success_rate > baseline.success_rate
        # Votes no longer conflict; only the final seeResults scan can race.
        assert optimized.success_rate >= 0.99


class TestReport:
    def test_render_includes_recommendations(self, synthetic_report):
        report, _, _ = synthetic_report
        text = render_report(report)
        assert "BlockOptR analysis" in text
        for rec in report.recommendations:
            assert rec.kind.value in text

    def test_render_without_model(self, synthetic_report):
        report, _, _ = synthetic_report
        text = render_report(report, include_model=False)
        assert "Derived process model" not in text

    def test_render_no_recommendations(self, finished_network):
        network, _ = finished_network
        lenient = Thresholds(
            rate_high=1e9,
            reorderable_mvcc_share=1.0,
            hotkey_min_failures=10**9,
            invoker_share=1.0,
            endorser_share=1.0,
            block_tolerance=1.0,
            pruning_min_anomalies=10**9,
            delta_min_candidates=10**9,
        )
        report = BlockOptR(lenient).analyze_network(network)
        if not report.recommendations:
            assert "No optimizations recommended" in render_report(report)
