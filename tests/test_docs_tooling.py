"""The docs toolchain: link checker, generated CLI reference, doc presence.

Covers scripts/check_doc_links.py (the repo's own docs must be clean;
broken paths and anchors are caught; GitHub slug rules), the generated
docs/CLI.md staying in sync with the argparse tree, the extended
docstring-check scope, and the cross-links the failure taxonomy promises.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(name, module)
    spec.loader.exec_module(module)
    return module


check_doc_links = _load("check_doc_links")
generate_cli_md = _load("generate_cli_md")


class TestLinkChecker:
    def test_repo_docs_are_clean(self):
        assert check_doc_links.main([]) == 0

    def test_scope_covers_readme_and_docs(self):
        names = {path.name for path in check_doc_links.default_scope()}
        assert "README.md" in names
        assert {"FAILURES.md", "SCENARIOS.md", "CLI.md", "ARCHITECTURE.md"} <= names

    def test_broken_path_and_anchor_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n\n"
            "ok: [self](#title), [other](other.md), [deep](other.md#a-heading)\n"
            "bad: [gone](missing.md) and [noanchor](other.md#nope) "
            "and [selfbad](#absent)\n"
        )
        (tmp_path / "other.md").write_text("# A heading\n")
        violations = check_doc_links.check_file(doc)
        assert len(violations) == 3
        assert any("missing.md" in line for line in violations)
        assert any("#nope" in line for line in violations)
        assert any("#absent" in line for line in violations)

    def test_external_schemes_and_code_fences_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[web](https://example.com/x)\n"
            "```\n[not a link](nowhere.md)\n```\n"
        )
        assert check_doc_links.check_file(doc) == []

    def test_github_slug_rules(self):
        seen: dict[str, int] = {}
        assert check_doc_links.github_slug("The `analyze` Command!", seen) == (
            "the-analyze-command"
        )
        assert check_doc_links.github_slug("Dup", {}) == "dup"
        seen2: dict[str, int] = {}
        assert check_doc_links.github_slug("Dup", seen2) == "dup"
        assert check_doc_links.github_slug("Dup", seen2) == "dup-1"

    def test_missing_input_file_errors(self, tmp_path):
        assert check_doc_links.main([str(tmp_path / "absent.md")]) == 2

    def test_main_reports_violations(self, tmp_path, capsys):
        doc = tmp_path / "doc.md"
        doc.write_text("[gone](missing.md)\n")
        assert check_doc_links.main([str(doc)]) == 1
        assert "missing.md" in capsys.readouterr().out


class TestCliReference:
    def test_cli_md_matches_the_argparse_tree(self):
        """docs/CLI.md is generated; drift fails here (the fix: regenerate).

        Regenerate with `PYTHONPATH=src python scripts/generate_cli_md.py`.
        """
        committed = (REPO_ROOT / "docs" / "CLI.md").read_text()
        assert committed == generate_cli_md.generate_text()

    def test_reference_documents_every_subcommand_and_new_flags(self):
        text = generate_cli_md.generate_text()
        for command in ("analyze", "export", "demo", "suite", "scenario", "perf"):
            assert f"## {command}" in text
        assert "--cached EXP_ID" in text
        assert "--mitigation" in text
        assert "--retry ATTEMPTS" in text

    def test_check_mode(self):
        assert generate_cli_md.main(["--check"]) == 0


class TestDocCrossLinks:
    def test_failure_taxonomy_is_cross_linked(self):
        """docs/FAILURES.md exists and is referenced where promised."""
        failures = REPO_ROOT / "docs" / "FAILURES.md"
        assert failures.is_file()
        for referrer in ("README.md", "docs/ARCHITECTURE.md", "EXPERIMENTS.md"):
            text = (REPO_ROOT / referrer).read_text()
            assert "FAILURES.md" in text, f"{referrer} should link the taxonomy"

    def test_scenario_guide_exists_and_readme_points_at_it(self):
        assert (REPO_ROOT / "docs" / "SCENARIOS.md").is_file()
        assert "SCENARIOS.md" in (REPO_ROOT / "README.md").read_text()

    def test_docstring_scope_covers_analysis_and_fabric(self):
        check_docstrings = _load("check_docstrings")
        fabric = check_docstrings.package_modules(
            REPO_ROOT / "src" / "repro" / "fabric"
        )
        analysis = check_docstrings.package_modules(
            REPO_ROOT / "src" / "repro" / "analysis"
        )
        assert any(path.name == "retry.py" for path in fabric)
        assert any(path.name == "forensics.py" for path in analysis)
