"""Declarative experiment matrices: parsing, expansion, stats, CLI, resume."""

import json

import pytest

from repro.bench.cache import ResultCache
from repro.bench.executor import run_suite
from repro.bench.matrix import (
    MatrixError,
    MatrixSpec,
    aggregate,
    bootstrap_ci,
    expand,
    load_matrix,
    matrix_from_dict,
    run_table_csv,
    select_runs,
    summary_markdown,
    write_outputs,
)
from repro.bench.registry import UnknownSelectionError
from repro.cli import main

SMALL = {
    "name": "tiny",
    "maker": "synthetic",
    "txs": 300,
    "seeds": [7, 11],
    "factors": {"experiment": ["default", "block_count_100"]},
}


def small_matrix(**overrides) -> MatrixSpec:
    data = dict(SMALL)
    data.update(overrides)
    return matrix_from_dict(data)


def write_spec(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestParsing:
    def test_round_trip_counts(self):
        matrix = small_matrix()
        assert matrix.cell_count() == 2
        assert matrix.run_count() == 4
        assert matrix.factor_names() == ["experiment"]

    def test_yaml_and_json_files_load(self, tmp_path):
        json_path = write_spec(tmp_path, SMALL)
        assert load_matrix(json_path) == small_matrix()
        yaml_path = tmp_path / "spec.yaml"
        yaml_path.write_text(
            "name: tiny\nmaker: synthetic\ntxs: 300\nseeds: [7, 11]\n"
            "factors:\n  experiment: [default, block_count_100]\n"
        )
        assert load_matrix(yaml_path) == small_matrix()

    def test_scalar_factor_and_scalar_seed_become_lists(self):
        matrix = matrix_from_dict(
            {
                "name": "one",
                "seeds": 7,
                "factors": {"experiment": "default"},
            }
        )
        assert matrix.seeds == (7,)
        assert matrix.factors == (("experiment", ("default",)),)

    @pytest.mark.parametrize(
        "broken, message",
        [
            ({"name": ""}, "non-empty string 'name'"),
            ({"name": "a/b"}, "must not contain"),
            ({"maker": "nope"}, "unknown maker"),
            ({"seeds": []}, "non-empty list"),
            ({"seeds": [7, 7]}, "repeats a value"),
            ({"seeds": [7, "x"]}, "must be integers"),
            ({"txs": 0}, "positive integer"),
            ({"factors": {}}, "non-empty 'factors'"),
            ({"factors": {"experiment": []}}, "empty value list"),
            ({"factors": {"experiment": ["default", "default"]}}, "repeats a value"),
            ({"factors": {"bogus": ["x"]}}, "does not accept factor"),
            ({"factors": {"scheduler": ["fifo"]}}, "requires factor"),
            ({"extra_key": 1}, "unknown spec key"),
        ],
    )
    def test_malformed_specs_rejected(self, broken, message):
        data = dict(SMALL)
        data.update(broken)
        with pytest.raises(MatrixError, match=message):
            matrix_from_dict(data)

    def test_invalid_json_and_yaml_rejected(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        with pytest.raises(MatrixError, match="invalid JSON"):
            load_matrix(bad_json)
        bad_yaml = tmp_path / "bad.yaml"
        bad_yaml.write_text("a: [unclosed")
        with pytest.raises(MatrixError, match="invalid YAML"):
            load_matrix(bad_yaml)
        scalar = tmp_path / "scalar.yaml"
        scalar.write_text("just a string")
        with pytest.raises(MatrixError, match="must be a mapping"):
            load_matrix(scalar)


class TestExpansion:
    def test_cells_cross_factors_and_seeds(self):
        runs = expand(small_matrix())
        assert len(runs) == 4
        assert [run.exp_id for run in runs] == [
            "tiny/default@s7",
            "tiny/default@s11",
            "tiny/block_count_100@s7",
            "tiny/block_count_100@s11",
        ]
        assert all(run.spec.total_transactions == 300 for run in runs)
        assert {run.spec.seed for run in runs} == {7, 11}
        # exp_ids are unique — the executor's outcome map depends on it.
        assert len({run.exp_id for run in runs}) == len(runs)

    def test_tuned_cells_cross_numeric_knobs(self):
        matrix = matrix_from_dict(
            {
                "name": "grid",
                "maker": "tuned",
                "txs": 200,
                "seeds": [7],
                "factors": {"block_count": [50, 100], "send_rate": [150, 300]},
            }
        )
        runs = expand(matrix)
        assert len(runs) == 4
        base, overrides = runs[0].spec.maker_args
        assert base == "default"
        assert dict(overrides) == {"block_count": 50, "send_rate": 150}
        # The bundle materializes with the overrides applied.
        config, _, requests = runs[0].spec.make_bundle()()
        assert config.block_count == 50
        assert len(requests) == 200

    def test_forensics_cells_default_optional_factors(self):
        matrix = matrix_from_dict(
            {
                "name": "faults",
                "maker": "forensics",
                "seeds": [7],
                "factors": {"base": ["default"], "scenario": ["crash_burst"]},
            }
        )
        (run,) = expand(matrix)
        assert run.spec.maker_args == ("default", "crash_burst", "none", 1)

    def test_duplicate_cell_ids_rejected(self):
        matrix = matrix_from_dict(
            {
                "name": "dup",
                "maker": "tuned",
                "seeds": [7],
                # 150 and 150.0 survive parse-time dedup (distinct str())
                # but slug to the same cell id fragment.
                "factors": {"send_rate": [150, 150.0]},
            }
        )
        with pytest.raises(MatrixError, match="duplicate cell id"):
            expand(matrix)

    def test_tuned_rejects_impossible_combination_at_bundle_time(self):
        matrix = matrix_from_dict(
            {
                "name": "bad",
                "maker": "tuned",
                "seeds": [7],
                "factors": {"endorsement_policy": ["P1"]},  # needs 4 orgs
            }
        )
        (run,) = expand(matrix)
        with pytest.raises(ValueError, match="orgs"):
            run.spec.make_bundle()()

    def test_select_runs_matches_cells_runs_and_prefixes(self):
        runs = expand(small_matrix())
        assert [r.exp_id for r in select_runs(runs, ["tiny/default"])] == [
            "tiny/default@s7",
            "tiny/default@s11",
        ]
        assert [r.exp_id for r in select_runs(runs, ["tiny/default@s11"])] == [
            "tiny/default@s11"
        ]
        assert len(select_runs(runs, ["tiny/"])) == 4

    def test_select_runs_lists_every_unmatched_token(self):
        runs = expand(small_matrix())
        with pytest.raises(UnknownSelectionError) as excinfo:
            select_runs(runs, ["tiny/default", "nope", "also_nope"])
        assert excinfo.value.unmatched == ["nope", "also_nope"]
        with pytest.raises(UnknownSelectionError, match="empty"):
            select_runs(runs, ["", "  "])


class TestStatistics:
    def test_bootstrap_ci_is_deterministic_and_ordered(self):
        values = [10.0, 12.0, 11.0, 14.0, 9.0]
        first = bootstrap_ci(values, key="cell:tput")
        assert first == bootstrap_ci(values, key="cell:tput")
        low, high = first
        assert low <= high
        assert min(values) <= low and high <= max(values)

    def test_single_seed_ci_degrades_to_the_point(self):
        assert bootstrap_ci([42.0], key="x") == (42.0, 42.0)
        with pytest.raises(ValueError):
            bootstrap_ci([], key="x")

    def test_aggregate_single_seed_matrix(self, tmp_path):
        matrix = small_matrix(seeds=[7])
        runs = expand(matrix)
        report = run_suite([run.spec for run in runs], jobs=1, cache=None)
        outcomes = dict(zip([run.exp_id for run in runs], report.outcomes))
        cells = aggregate(runs, outcomes)
        assert [cell.n for cell in cells] == [1, 1]
        for cell in cells:
            for stats in cell.metrics.values():
                assert stats.ci_low == stats.median == stats.ci_high
        # Markdown renders the degenerate interval as a bare median.
        text = summary_markdown(matrix, cells)
        assert "[" not in text.split("|---")[0] or True
        assert f"{cells[0].metrics['latency'].median:.2f}" in text


class TestPipeline:
    @pytest.fixture(scope="class")
    def executed(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("matrix-cache")
        matrix = small_matrix()
        runs = expand(matrix)
        cache = ResultCache(cache_dir)
        report = run_suite([run.spec for run in runs], jobs=1, cache=cache)
        outcomes = dict(zip([run.exp_id for run in runs], report.outcomes))
        return matrix, runs, outcomes, cache

    def test_run_table_rows_follow_expansion_order(self, executed):
        matrix, runs, outcomes, _ = executed
        text = run_table_csv(runs, outcomes)
        lines = text.strip().split("\n")
        assert lines[0] == (
            "run_id,cell_id,experiment,seed,txs,"
            "throughput_tps,latency_s,success_pct"
        )
        assert len(lines) == 1 + len(runs)
        assert lines[1].startswith("tiny/default@s7,tiny/default,default,7,300,")

    def test_summary_markdown_has_median_and_ci_columns(self, executed):
        matrix, runs, outcomes, _ = executed
        text = summary_markdown(matrix, aggregate(runs, outcomes))
        assert "| cell | experiment | n | tput (tps) | latency (s) | success (%) |" in text
        assert "2 cells × 2 seeds = 4 runs" in text
        assert "[" in text  # at least one non-degenerate interval

    def test_outputs_are_byte_stable(self, executed, tmp_path):
        matrix, runs, outcomes, cache = executed
        first = write_outputs(tmp_path / "a", matrix, runs, outcomes)
        # A second pass served entirely from cache must write identical bytes.
        warm = run_suite([run.spec for run in runs], jobs=1, cache=cache)
        assert warm.simulated_runs == 0
        warm_outcomes = dict(zip([run.exp_id for run in runs], warm.outcomes))
        second = write_outputs(tmp_path / "b", matrix, runs, warm_outcomes)
        for path_a, path_b in zip(first, second):
            assert path_a.read_bytes() == path_b.read_bytes()

    def test_interrupted_sweep_resumes_from_partial_cache(self, tmp_path):
        matrix = small_matrix()
        runs = expand(matrix)
        cache = ResultCache(tmp_path)
        # Simulate an interrupt: only the first cell's runs completed.
        partial = [run.spec for run in runs if run.cell_id == "tiny/default"]
        run_suite(partial, jobs=1, cache=cache)
        resumed = run_suite([run.spec for run in runs], jobs=1, cache=cache)
        assert sorted(resumed.cached) == sorted(spec.exp_id for spec in partial)
        assert resumed.simulated_runs == len(runs) - len(partial)


class TestCli:
    def spec_path(self, tmp_path):
        return write_spec(tmp_path, SMALL)

    def test_dry_run_lists_cells(self, tmp_path, capsys):
        assert main(["matrix", "--spec", str(self.spec_path(tmp_path)), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "tiny/default@s7" in out and "4 runs" in out

    def test_end_to_end_writes_tables_and_resumes(self, tmp_path, capsys):
        args = [
            "matrix",
            "--spec", str(self.spec_path(tmp_path)),
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
            "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 simulation runs" in out
        table = (tmp_path / "out" / "run_table.csv").read_bytes()
        assert (tmp_path / "out" / "summary.md").exists()
        assert main(args) == 0
        assert "0 simulation runs" in capsys.readouterr().out
        assert (tmp_path / "out" / "run_table.csv").read_bytes() == table

    def test_unknown_only_token_exits_1_listing_ids(self, tmp_path, capsys):
        code = main(
            ["matrix", "--spec", str(self.spec_path(tmp_path)),
             "--only", "tiny/default,ghost", "--dry-run"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "ghost" in err

    def test_malformed_spec_exits_2(self, tmp_path, capsys):
        path = write_spec(tmp_path, {"name": "x", "seeds": [], "factors": {}})
        assert main(["matrix", "--spec", str(path), "--dry-run"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["matrix", "--spec", str(tmp_path / "nope.yaml")]) == 2
        assert "error:" in capsys.readouterr().err


class TestExampleMatrices:
    def test_examples_expand_to_documented_sizes(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples" / "matrices"
        sizes = {
            "smoke_8cell.yaml": (8, 16),
            "block_rate_sweep.yaml": (75, 225),
            "mitigation_scenarios.yaml": (36, 108),
        }
        for name, (cells, runs) in sizes.items():
            matrix = load_matrix(examples / name)
            assert matrix.cell_count() == cells, name
            assert matrix.run_count() == runs, name
            expanded = expand(matrix)
            assert len(expanded) == runs
            assert len({run.exp_id for run in expanded}) == runs
            assert len(matrix.seeds) >= 2

    def test_flagship_example_is_a_200_cell_multi_seed_table(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples" / "matrices"
        matrix = load_matrix(examples / "block_rate_sweep.yaml")
        assert matrix.run_count() >= 200
        assert len(matrix.seeds) >= 3
