"""Unit + property tests for the Fabric++/FabricSharp schedulers."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric.reorder import (
    FabricPlusPlusScheduler,
    FabricSharpScheduler,
    FifoScheduler,
    make_scheduler,
)
from repro.fabric.transaction import ReadWriteSet, Transaction, Version


def _tx(tx_id, reads=(), writes=(), endorse_time=0.0):
    rwset = ReadWriteSet(
        reads={key: Version(0, 0) for key in reads},
        writes={key: 1 for key in writes},
    )
    tx = Transaction(
        tx_id=tx_id,
        client_timestamp=0.0,
        activity="a",
        args=(),
        contract="c",
        invoker_client="cl",
        invoker_org="Org1",
        rwset=rwset,
    )
    tx.endorse_time = endorse_time
    return tx


class TestFifo:
    def test_passthrough(self):
        batch = [_tx("a"), _tx("b")]
        ordered, aborts = FifoScheduler().schedule(batch)
        assert [t.tx_id for t in ordered] == ["a", "b"]
        assert aborts == []


class TestFabricPlusPlus:
    def test_reader_moved_before_writer(self):
        writer = _tx("w", writes=["k"])
        reader = _tx("r", reads=["k"])
        ordered, aborts = FabricPlusPlusScheduler().schedule([writer, reader])
        assert [t.tx_id for t in ordered] == ["r", "w"]
        assert aborts == []

    def test_independent_txs_keep_arrival_order(self):
        batch = [_tx("a", writes=["x"]), _tx("b", writes=["y"]), _tx("c", reads=["z"])]
        ordered, aborts = FabricPlusPlusScheduler().schedule(batch)
        assert [t.tx_id for t in ordered] == ["a", "b", "c"]
        assert aborts == []

    def test_cycle_broken_with_abort(self):
        # a reads x writes y; b reads y writes x -> 2-cycle.
        a = _tx("a", reads=["x"], writes=["y"])
        b = _tx("b", reads=["y"], writes=["x"])
        ordered, aborts = FabricPlusPlusScheduler().schedule([a, b])
        assert len(ordered) == 1
        assert len(aborts) == 1

    def test_update_chain_orders_readers_first(self):
        u1 = _tx("u1", reads=["k"], writes=["k"])
        u2 = _tx("u2", reads=["k"], writes=["k"])
        ordered, aborts = FabricPlusPlusScheduler().schedule([u1, u2])
        # Two read-modify-writes of the same key form a cycle: one aborts.
        assert len(ordered) + len(aborts) == 2
        assert len(aborts) == 1

    def test_empty_and_single(self):
        assert FabricPlusPlusScheduler().schedule([]) == ([], [])
        single = [_tx("a")]
        ordered, aborts = FabricPlusPlusScheduler().schedule(single)
        assert ordered == single and aborts == []


class TestFabricSharp:
    def test_stale_read_aborted(self):
        sharp = FabricSharpScheduler(window=5)
        writer = _tx("w", writes=["k"], endorse_time=1.0)
        sharp.schedule([writer])
        stale = _tx("s", reads=["k"], endorse_time=0.5)  # endorsed before the write
        ordered, aborts = sharp.schedule([stale])
        assert ordered == []
        assert [t.tx_id for t in aborts] == ["s"]

    def test_fresh_read_passes(self):
        sharp = FabricSharpScheduler(window=5)
        sharp.schedule([_tx("w", writes=["k"], endorse_time=1.0)])
        fresh = _tx("f", reads=["k"], endorse_time=2.0)
        ordered, aborts = sharp.schedule([fresh])
        assert [t.tx_id for t in ordered] == ["f"]
        assert aborts == []

    def test_window_expiry_forgets_writes(self):
        sharp = FabricSharpScheduler(window=1)
        sharp.schedule([_tx("w", writes=["k"], endorse_time=1.0)])
        sharp.schedule([_tx("other", writes=["z"], endorse_time=2.0)])  # expires k
        stale = _tx("s", reads=["k"], endorse_time=0.5)
        ordered, aborts = sharp.schedule([stale])
        assert [t.tx_id for t in ordered] == ["s"]

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FabricSharpScheduler(window=0)


def test_factory():
    assert isinstance(make_scheduler("fifo"), FifoScheduler)
    assert isinstance(make_scheduler("fabricpp"), FabricPlusPlusScheduler)
    sharp = make_scheduler("fabricsharp", window=3)
    assert isinstance(sharp, FabricSharpScheduler)
    assert sharp.window == 3
    with pytest.raises(ValueError):
        make_scheduler("bogus")


_keys = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def batches(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    batch = []
    for i in range(n):
        reads = draw(st.sets(_keys, max_size=2))
        writes = draw(st.sets(_keys, max_size=2))
        batch.append(_tx(f"t{i}", reads=sorted(reads), writes=sorted(writes)))
    return batch


@given(batches())
def test_property_fabricpp_preserves_multiset(batch):
    ordered, aborts = FabricPlusPlusScheduler().schedule(list(batch))
    assert sorted(t.tx_id for t in ordered + aborts) == sorted(t.tx_id for t in batch)


@given(batches())
def test_property_fabricpp_output_conflict_free(batch):
    """No surviving tx reads a key written by an *earlier* surviving tx."""
    ordered, _ = FabricPlusPlusScheduler().schedule(list(batch))
    written: set[str] = set()
    for tx in ordered:
        assert not (tx.rwset.read_keys & written)
        written |= tx.rwset.write_keys


@given(batches())
def test_property_fabricsharp_accounts_everything(batch):
    sharp = FabricSharpScheduler(window=3)
    ordered, aborts = sharp.schedule(list(batch))
    assert len(ordered) + len(aborts) == len(batch)
