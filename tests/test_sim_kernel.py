"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.kernel import ARRIVAL_PRIORITY, INTERVENTION_PRIORITY, Kernel


def test_events_fire_in_time_order():
    kernel = Kernel()
    fired = []
    kernel.schedule(3.0, lambda: fired.append("c"))
    kernel.schedule(1.0, lambda: fired.append("a"))
    kernel.schedule(2.0, lambda: fired.append("b"))
    kernel.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_insertion_order():
    kernel = Kernel()
    fired = []
    for label in "abcde":
        kernel.schedule(1.0, lambda label=label: fired.append(label))
    kernel.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    kernel = Kernel()
    seen = []
    kernel.schedule(5.5, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [5.5]
    assert kernel.now == 5.5


def test_schedule_in_past_raises():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(ValueError):
        kernel.schedule(0.5, lambda: None)


def test_schedule_in_negative_delay_raises():
    kernel = Kernel()
    with pytest.raises(ValueError):
        kernel.schedule_in(-0.1, lambda: None)


def test_schedule_in_is_relative():
    kernel = Kernel()
    times = []
    kernel.schedule(2.0, lambda: kernel.schedule_in(3.0, lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [5.0]


def test_cancelled_event_does_not_fire():
    kernel = Kernel()
    fired = []
    event = kernel.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    kernel.run()
    assert fired == []
    assert kernel.events_processed == 0


def test_run_until_stops_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append(1))
    kernel.schedule(10.0, lambda: fired.append(10))
    kernel.run(until=5.0)
    assert fired == [1]
    assert kernel.now == 5.0
    kernel.run()
    assert fired == [1, 10]


def test_run_until_past_all_events_advances_clock():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run(until=7.0)
    assert kernel.now == 7.0


def test_max_events_limits_processing():
    kernel = Kernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i), lambda i=i: fired.append(i))
    kernel.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_processed():
    kernel = Kernel()
    fired = []

    def chain(depth: int):
        fired.append(depth)
        if depth < 3:
            kernel.schedule_in(1.0, lambda: chain(depth + 1))

    kernel.schedule(0.0, lambda: chain(0))
    kernel.run()
    assert fired == [0, 1, 2, 3]
    assert kernel.now == 3.0


def test_pending_counts_non_cancelled():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    event = kernel.schedule(2.0, lambda: None)
    event.cancel()
    assert kernel.pending() == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_firing_times_are_sorted(times):
    kernel = Kernel()
    observed = []
    for t in times:
        kernel.schedule(t, lambda: observed.append(kernel.now))
    kernel.run()
    assert observed == sorted(observed)
    assert len(observed) == len(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_events_never_fire(items):
    kernel = Kernel()
    fired = []
    events = []
    for t, cancel in items:
        events.append((kernel.schedule(t, lambda t=t: fired.append(t)), cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    kernel.run()
    expected = sorted(t for (t, cancel) in items if not cancel)
    assert fired == expected


def test_pending_tracks_cancel_then_pop():
    """The live-event counter must survive a cancel followed by the pop.

    ``pending()`` is tracked incrementally (O(1), not a heap scan): cancel
    decrements immediately, and popping the already-cancelled event must
    not decrement again.
    """
    kernel = Kernel()
    cancelled = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.schedule(3.0, lambda: None)
    assert kernel.pending() == 3
    cancelled.cancel()
    assert kernel.pending() == 2
    kernel.run(until=2.0)  # pops the cancelled event and fires the 2.0 one
    assert kernel.pending() == 1
    kernel.run()
    assert kernel.pending() == 0


def test_double_cancel_decrements_once():
    kernel = Kernel()
    event = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert kernel.pending() == 1


def test_cancel_after_fire_is_a_noop():
    """Cancelling a fired timeout (the orderer does this) must not corrupt
    the live count of still-queued events."""
    kernel = Kernel()
    fired = kernel.schedule(1.0, lambda: None)
    kernel.schedule(5.0, lambda: None)
    kernel.run(until=2.0)
    assert kernel.pending() == 1
    fired.cancel()
    assert kernel.pending() == 1


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_pending_matches_heap_scan(items):
    kernel = Kernel()
    events = [kernel.schedule(t, lambda: None) for t, _ in items]
    for event, (_, cancel) in zip(events, items):
        if cancel:
            event.cancel()
            event.cancel()  # idempotent
    live = sum(1 for _, cancel in items if not cancel)
    assert kernel.pending() == live
    kernel.run()
    assert kernel.pending() == 0


def test_intervention_lane_fires_before_ordinary_events_at_same_time():
    kernel = Kernel()
    order = []
    kernel.schedule(2.0, lambda: order.append("late-workload"))
    kernel.schedule(1.0, lambda: order.append("workload"))
    # Scheduled last, still fires first at t=1.0.
    kernel.schedule_intervention(1.0, lambda: order.append("intervention"))
    kernel.run()
    assert order == ["intervention", "workload", "late-workload"]


def test_intervention_lane_preserves_insertion_order_within_lane():
    kernel = Kernel()
    order = []
    kernel.schedule_intervention(1.0, lambda: order.append("first"))
    kernel.schedule_intervention(1.0, lambda: order.append("second"))
    kernel.run()
    assert order == ["first", "second"]


def test_trace_records_fired_events_only():
    kernel = Kernel()
    trace = kernel.enable_trace()
    kernel.schedule(1.0, lambda: None)
    cancelled = kernel.schedule(2.0, lambda: None)
    cancelled.cancel()
    kernel.schedule_intervention(3.0, lambda: None)
    kernel.run()
    assert [(time, priority) for time, priority, _ in trace] == [
        (1.0, 0),
        (3.0, INTERVENTION_PRIORITY),
    ]


def test_priority_lanes_order_same_instant_events():
    # Interventions beat arrivals beat ordinary events at equal
    # timestamps, regardless of scheduling order — the lane contract the
    # scenario engine and streamed runs rely on.
    kernel = Kernel()
    order: list[str] = []
    kernel.schedule(1.0, lambda: order.append("ordinary"))
    kernel.schedule(1.0, lambda: order.append("arrival"), priority=ARRIVAL_PRIORITY)
    kernel.schedule_intervention(1.0, lambda: order.append("intervention"))
    kernel.run()
    assert order == ["intervention", "arrival", "ordinary"]
    assert INTERVENTION_PRIORITY < ARRIVAL_PRIORITY < 0


def test_enable_trace_is_idempotent():
    kernel = Kernel()
    first = kernel.enable_trace()
    second = kernel.enable_trace()
    assert first is second
