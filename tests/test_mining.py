"""Tests for process mining: DFG, footprints, alpha, heuristics, conformance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining import (
    DirectlyFollowsGraph,
    FootprintMatrix,
    PetriNet,
    Relation,
    alpha_miner,
    footprint_conformance,
    heuristics_miner,
    model_diff,
    token_replay_fitness,
)

SIMPLE = [("a", "b", "c")] * 10
CHOICE = [("a", "b", "d")] * 5 + [("a", "c", "d")] * 5
PARALLEL = [("a", "b", "c", "d")] * 5 + [("a", "c", "b", "d")] * 5


class TestDfg:
    def test_counts(self):
        dfg = DirectlyFollowsGraph.from_traces(SIMPLE)
        assert dfg.follows("a", "b") == 10
        assert dfg.follows("b", "a") == 0
        assert dfg.activity_counts["a"] == 10

    def test_start_end_activities(self):
        dfg = DirectlyFollowsGraph.from_traces(CHOICE)
        assert set(dfg.start_activities) == {"a"}
        assert set(dfg.end_activities) == {"d"}

    def test_edges_threshold(self):
        dfg = DirectlyFollowsGraph.from_traces(CHOICE)
        assert ("a", "b", 5) in dfg.edges()
        assert dfg.edges(min_count=6) == []

    def test_networkx_export(self):
        graph = DirectlyFollowsGraph.from_traces(SIMPLE).to_networkx()
        assert graph.has_edge("a", "b")
        assert graph["a"]["b"]["weight"] == 10

    def test_most_frequent_path(self):
        dfg = DirectlyFollowsGraph.from_traces(SIMPLE)
        assert dfg.most_frequent_path() == ["a", "b", "c"]

    def test_empty_traces_ignored(self):
        dfg = DirectlyFollowsGraph.from_traces([(), ("a",)])
        assert dfg.activity_counts["a"] == 1
        assert dfg.most_frequent_path() == ["a"]


class TestFootprint:
    def test_causality(self):
        fp = FootprintMatrix.from_traces(SIMPLE)
        assert fp.relation("a", "b") is Relation.CAUSALITY
        assert fp.relation("b", "a") is Relation.REVERSE

    def test_choice(self):
        fp = FootprintMatrix.from_traces(CHOICE)
        assert fp.relation("b", "c") is Relation.CHOICE
        assert fp.independent("b", "c")

    def test_parallel(self):
        fp = FootprintMatrix.from_traces(PARALLEL)
        assert fp.relation("b", "c") is Relation.PARALLEL

    def test_causal_pairs_sorted(self):
        fp = FootprintMatrix.from_traces(SIMPLE)
        assert fp.causal_pairs() == [("a", "b"), ("b", "c")]

    def test_render_contains_symbols(self):
        text = FootprintMatrix.from_traces(SIMPLE).render()
        assert "->" in text and "#" in text


class TestAlpha:
    def test_sequence_model(self):
        net = alpha_miner(SIMPLE)
        assert set(net.transitions) == {"a", "b", "c"}
        names = net.place_names()
        assert PetriNet.SOURCE in names and PetriNet.SINK in names
        assert net.allows(("a", "b", "c"))
        assert not net.allows(("b", "a", "c"))

    def test_choice_model(self):
        net = alpha_miner(CHOICE)
        assert net.allows(("a", "b", "d"))
        assert net.allows(("a", "c", "d"))
        assert not net.allows(("a", "b", "c", "d"))

    def test_xor_split_creates_shared_place(self):
        net = alpha_miner(CHOICE)
        # One place a->(b|c) rather than two separate ones.
        shared = [p for p in net.places if set(p.outputs) == {"b", "c"}]
        assert shared

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            alpha_miner([])

    def test_replay_counts(self):
        net = alpha_miner(SIMPLE)
        produced, consumed, missing, remaining = net.replay_trace(("a", "b", "c"))
        assert missing == 0 and remaining == 0
        assert produced == consumed

    def test_unknown_activity_counts_missing(self):
        net = alpha_miner(SIMPLE)
        _, _, missing, _ = net.replay_trace(("a", "zzz", "b", "c"))
        assert missing >= 1


class TestHeuristics:
    def test_dependency_measure(self):
        graph = heuristics_miner(SIMPLE)
        assert graph.measure("a", "b") == pytest.approx(10 / 11)
        assert graph.measure("b", "a") == pytest.approx(-10 / 11)

    def test_edges_thresholded(self):
        graph = heuristics_miner(SIMPLE, dependency_threshold=0.9)
        assert ("a", "b") in graph.edges
        assert ("b", "a") not in graph.edges

    def test_noise_filtered_by_frequency(self):
        noisy = SIMPLE + [("c", "a")]  # one backwards observation
        strict = heuristics_miner(noisy, dependency_threshold=0.3, min_edge_frequency=2)
        assert ("c", "a") not in strict.edges

    def test_parallel_pairs_get_no_edges(self):
        graph = heuristics_miner(PARALLEL, dependency_threshold=0.5)
        assert ("b", "c") not in graph.edges
        assert ("c", "b") not in graph.edges

    def test_successors_predecessors(self):
        graph = heuristics_miner(SIMPLE)
        assert graph.successors("a") == ["b"]
        assert graph.predecessors("b") == ["a"]

    def test_loop_detection(self):
        looping = [("a", "b", "a", "b", "c")] * 5
        graph = heuristics_miner(looping, dependency_threshold=0.3)
        assert graph.has_loop() or not graph.has_loop()  # runs without error

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            heuristics_miner(SIMPLE, dependency_threshold=1.5)


class TestConformance:
    def test_perfect_fitness(self):
        net = alpha_miner(SIMPLE)
        assert token_replay_fitness(net, SIMPLE) == pytest.approx(1.0)

    def test_deviating_traces_lower_fitness(self):
        net = alpha_miner(SIMPLE)
        fitness = token_replay_fitness(net, [("c", "b", "a")])
        assert fitness < 1.0

    def test_fitness_needs_traces(self):
        net = alpha_miner(SIMPLE)
        with pytest.raises(ValueError):
            token_replay_fitness(net, [])

    def test_footprint_conformance_identical(self):
        fp = FootprintMatrix.from_traces(SIMPLE)
        assert footprint_conformance(fp, fp) == 1.0

    def test_footprint_conformance_partial(self):
        before = FootprintMatrix.from_traces(SIMPLE)
        after = FootprintMatrix.from_traces([("a", "c", "b")] * 5)
        score = footprint_conformance(before, after)
        assert 0.0 < score < 1.0

    def test_model_diff_detects_new_activity(self):
        before = FootprintMatrix.from_traces(SIMPLE)
        after = FootprintMatrix.from_traces([("a", "b", "c", "x")] * 5)
        diff = model_diff(before, after)
        assert diff.added_activities == ("x",)
        assert not diff.is_identical()

    def test_model_diff_detects_relation_change(self):
        before = FootprintMatrix.from_traces([("a", "b")] * 5)
        after = FootprintMatrix.from_traces([("b", "a")] * 5)
        diff = model_diff(before, after)
        changed = {(a, b) for a, b, _, _ in diff.changed_relations}
        assert ("a", "b") in changed

    def test_model_diff_identical(self):
        fp = FootprintMatrix.from_traces(SIMPLE)
        assert model_diff(fp, fp).is_identical()


_activities = st.sampled_from(["a", "b", "c", "d", "e"])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(_activities, min_size=1, max_size=6).map(tuple), min_size=1, max_size=20))
def test_property_footprint_symmetry(traces):
    """The footprint is anti-symmetric: rel(a,b) mirrors rel(b,a)."""
    fp = FootprintMatrix.from_traces(traces)
    mirror = {
        Relation.CAUSALITY: Relation.REVERSE,
        Relation.REVERSE: Relation.CAUSALITY,
        Relation.PARALLEL: Relation.PARALLEL,
        Relation.CHOICE: Relation.CHOICE,
    }
    for a in fp.activities:
        for b in fp.activities:
            assert fp.relation(b, a) is mirror[fp.relation(a, b)]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.lists(_activities, min_size=1, max_size=5).map(tuple), min_size=1, max_size=15))
def test_property_alpha_transitions_cover_log(traces):
    net = alpha_miner(traces)
    seen = {activity for trace in traces for activity in trace}
    assert set(net.transitions) == seen
