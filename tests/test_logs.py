"""Tests for blockchain-log extraction, export round trips, event logs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fabric.transaction import TxStatus, TxType
from repro.logs import (
    BlockchainLog,
    ChannelConfig,
    EventLog,
    LogRecord,
    derive_case_attribute,
    extract_blockchain_log,
    log_from_csv,
    log_from_json,
    log_to_csv,
    log_to_json,
)
from repro.logs.blockchain_log import interval_index, slice_by_interval


def make_record(order, activity="act", args=(), keys=(), writes=None, status=TxStatus.SUCCESS, ts=None):
    writes = writes or {}
    return LogRecord(
        commit_order=order,
        tx_id=f"tx{order}",
        client_timestamp=float(order) / 10.0 if ts is None else ts,
        activity=activity,
        args=tuple(args),
        endorsers=("Org1-peer0",),
        invoker="Org1-client0",
        invoker_org="Org1",
        read_keys=tuple(keys),
        write_keys=tuple(writes),
        writes=dict(writes),
        read_versions={k: (0, 0) for k in keys},
        range_reads=(),
        status=status,
        tx_type=TxType.UPDATE if writes else TxType.READ,
        block_number=order // 10,
        block_position=order % 10,
        commit_time=float(order) / 10.0 + 1.0,
    )


def make_log(records):
    config = ChannelConfig(
        block_count=100, block_timeout=1.0, block_bytes=1 << 20, endorsement_policy="Majority(Org1,Org2)"
    )
    return BlockchainLog(records=records, config=config)


class TestExtraction:
    def test_nine_attributes_present(self, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        record = log.records[0]
        # Paper Section 4.1: the nine attributes.
        assert record.client_timestamp >= 0.0
        assert record.activity
        assert isinstance(record.args, tuple)
        assert record.endorsers
        assert record.invoker and record.invoker_org
        assert isinstance(record.rw_keys, frozenset)
        assert isinstance(record.status, TxStatus)
        assert isinstance(record.tx_type, TxType)
        assert record.commit_order == 0

    def test_config_transactions_cleaned(self, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        assert all(record.activity != "__config__" for record in log)

    def test_config_recovered_from_ledger(self, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        assert log.config.block_count == network.config.block_count
        assert log.config.endorsement_policy == network.config.endorsement_policy

    def test_commit_order_strictly_increasing(self, finished_network):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        log.validate()

    def test_ledger_without_config_rejected(self):
        from repro.fabric.ledger import Ledger

        with pytest.raises(ValueError):
            extract_blockchain_log(Ledger())


class TestSlicing:
    def test_slices_partition_records(self):
        log = make_log([make_record(i) for i in range(50)])
        slices = slice_by_interval(log, 1.0)
        assert sum(s.count for s in slices) == 50

    def test_interval_boundaries(self):
        log = make_log([make_record(i) for i in range(30)])  # ts 0.0 .. 2.9
        slices = slice_by_interval(log, 1.0)
        assert len(slices) == 3
        assert slices[0].count == 10

    def test_bad_interval(self):
        log = make_log([make_record(0)])
        with pytest.raises(ValueError):
            slice_by_interval(log, 0.0)

    def test_empty_log(self):
        assert slice_by_interval(make_log([]), 1.0) == []


class TestIntervalBoundaries:
    """Regressions for the float-division binning bug in interval_index."""

    def test_division_overshoot_pulled_back(self):
        # (1.3 - 1.0) / 0.1 rounds to 3.0000000000000004, so naive int()
        # binning places the record in a window that starts after it.
        index = interval_index(1.3, 1.0, 0.1)
        assert 1.0 + index * 0.1 <= 1.3 < 1.0 + (index + 1) * 0.1

    def test_division_undershoot_pushed_forward(self):
        # 2.1 / 0.7 rounds to 2.9999999999999996, leaving the record one
        # window short of the boundary it sits on.
        index = interval_index(2.1, 0.0, 0.7)
        assert index * 0.7 <= 2.1 < (index + 1) * 0.7

    def test_half_open_invariant_on_boundary_grid(self):
        # Every k*ins timestamp must satisfy the half-open window
        # comparisons exactly as slice_by_interval evaluates them.
        for ins in (0.1, 0.3, 0.7, 1.0):
            for k in range(200):
                timestamp = k * ins
                index = interval_index(timestamp, 0.0, ins)
                assert index * ins <= timestamp < (index + 1) * ins

    def test_slices_respect_their_own_boundaries(self):
        records = [make_record(i, ts=1.0 + i * 0.1) for i in range(31)]
        slices = slice_by_interval(make_log(records), 0.1)
        assert sum(s.count for s in slices) == len(records)
        for log_slice in slices[:-1]:
            for record in log_slice.records:
                assert log_slice.start <= record.client_timestamp < log_slice.end


class TestValidation:
    def test_validate_rejects_read_versions_without_keys(self):
        record = make_record(0, keys=["a"])
        record.read_versions["ghost"] = (1, 0)
        with pytest.raises(ValueError, match="read versions without keys"):
            make_log([record]).validate()

    def test_validate_rejects_writes_without_keys(self):
        record = make_record(0, writes={"k": 1})
        record.writes["ghost"] = 2
        with pytest.raises(ValueError, match="write values without keys"):
            make_log([record]).validate()

    def test_validate_accepts_partial_read_versions(self):
        # A version map covering only some read keys is fine (range reads
        # may surface keys without versions); the subset must hold the
        # other way around.
        record = make_record(0, keys=["a", "b"])
        del record.read_versions["b"]
        make_log([record]).validate()


class TestExport:
    def test_json_roundtrip(self, finished_network, tmp_path):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        path = tmp_path / "log.json"
        log_to_json(log, path)
        loaded = log_from_json(path)
        assert len(loaded) == len(log)
        assert loaded.config == log.config
        assert loaded.records[0] == log.records[0]

    def test_csv_roundtrip(self, finished_network, tmp_path):
        network, _ = finished_network
        log = extract_blockchain_log(network)
        path = tmp_path / "log.csv"
        log_to_csv(log, path)
        loaded = log_from_csv(path)
        assert len(loaded) == len(log)
        for original, restored in zip(log.records, loaded.records):
            assert restored.activity == original.activity
            assert restored.status == original.status
            assert restored.read_versions == original.read_versions
            assert restored.range_reads == original.range_reads

    def test_csv_requires_config_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,log\n")
        with pytest.raises(ValueError):
            log_from_csv(path)


class TestCaseIdDerivation:
    def test_key_family_wins_on_coverage(self):
        records = [
            make_record(0, activity="create", keys=["item:A"], writes={"item:A": 1}),
            make_record(1, activity="check", keys=["item:A"]),
            make_record(2, activity="create", keys=["item:B"], writes={"item:B": 1}),
            make_record(3, activity="check", keys=["item:B"]),
        ]
        derivation = derive_case_attribute(make_log(records))
        assert derivation.attribute == "key:item"
        assert derivation.coverage == 1.0
        assert derivation.distinct_values == 2

    def test_granularity_breaks_ties(self):
        # arg0 has 2 distinct values, arg1 has 4 -> arg1 preferred.
        records = [
            make_record(i, activity="a", args=(f"coarse{i % 2}", f"fine{i}"))
            for i in range(4)
        ]
        derivation = derive_case_attribute(make_log(records))
        assert derivation.attribute == "arg:1"

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            derive_case_attribute(make_log([]))

    def test_scores_exposed(self):
        records = [make_record(0, activity="a", args=("x",))]
        derivation = derive_case_attribute(make_log(records))
        assert "arg:0" in derivation.scores


class TestEventLog:
    def _sample_log(self):
        records = []
        order = 0
        for case in ("A", "B", "C"):
            for activity in ("create", "process", "close"):
                records.append(
                    make_record(order, activity=activity, keys=[f"case:{case}"])
                )
                order += 1
        return make_log(records)

    def test_traces_follow_commit_order(self):
        event_log = EventLog.from_blockchain_log(self._sample_log())
        assert event_log.traces() == [("create", "process", "close")] * 3

    def test_trace_variants_counted(self):
        event_log = EventLog.from_blockchain_log(self._sample_log())
        assert event_log.trace_variants() == {("create", "process", "close"): 3}

    def test_explicit_case_attribute(self):
        event_log = EventLog.from_blockchain_log(self._sample_log(), case_attribute="key:case")
        assert len(event_log.cases()) == 3

    def test_exclude_failures(self):
        records = [
            make_record(0, activity="a", keys=["case:A"]),
            make_record(1, activity="b", keys=["case:A"], status=TxStatus.MVCC_CONFLICT),
        ]
        log = make_log(records)
        with_failures = EventLog.from_blockchain_log(log, case_attribute="key:case")
        without = EventLog.from_blockchain_log(
            log, case_attribute="key:case", include_failures=False
        )
        assert len(with_failures) == 2
        assert len(without) == 1

    def test_records_without_case_value_skipped(self):
        records = [
            make_record(0, activity="a", keys=["case:A"]),
            make_record(1, activity="noise"),  # no keys, no args
        ]
        event_log = EventLog.from_blockchain_log(make_log(records), case_attribute="key:case")
        assert len(event_log) == 1

    def test_activities_listing(self):
        event_log = EventLog.from_blockchain_log(self._sample_log())
        assert event_log.activities() == ["close", "create", "process"]


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["create", "update", "close"]),
            st.sampled_from(["A", "B", "C", "D"]),
            st.sampled_from(list(TxStatus)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_event_log_partitions_records(items):
    records = [
        make_record(i, activity=activity, keys=[f"case:{case}"], status=status)
        for i, (activity, case, status) in enumerate(items)
    ]
    event_log = EventLog.from_blockchain_log(make_log(records), case_attribute="key:case")
    assert sum(len(events) for events in event_log.cases().values()) == len(items)
    # Within each case, commit order is increasing.
    for events in event_log.cases().values():
        orders = [e.commit_order for e in events]
        assert orders == sorted(orders)
