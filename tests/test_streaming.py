"""Streaming pipeline tests: batch equivalence, reference properties, memory.

The batch entry points (``compute_metrics``, ``forensics_report``) now
delegate to the same accumulators the streaming path uses, so comparing
the two directly would be vacuous.  The property tests here therefore
check the accumulators against *independent reference implementations
written in this file* (linear-scan binning, quadratic conflict search),
and the end-to-end tests check that a live streamed run reproduces what
batch extraction + post-processing derives from the identical workload.
"""

import gc

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import report_digest
from repro.analysis.forensics import ForensicsAccumulator, forensics_report
from repro.bench.experiments import make_synthetic, synthetic_spec
from repro.contracts.registry import genchain_family
from repro.core.metrics import MetricsAccumulator, compute_metrics
from repro.fabric.network import FabricNetwork, run_workload
from repro.fabric.transaction import TxStatus, TxType
from repro.logs.blockchain_log import (
    ChannelConfig,
    LogRecord,
    interval_index,
)
from repro.logs.extract import extract_blockchain_log
from repro.logs.stream import RunStream, StreamingLedger
from repro.shard.summary import RateSeriesAccumulator
from repro.workloads.synthetic import iter_synthetic_requests


def _streamed_run(spec, record_consumers=(), tx_consumers=()):
    """One full streaming-mode run of ``spec``; returns (stream, network, stats)."""
    deployment = genchain_family(num_keys=spec.num_keys).deploy()
    stream = RunStream()
    for consumer in record_consumers:
        stream.add_record_consumer(consumer)
    for consumer in tx_consumers:
        stream.add_transaction_consumer(consumer)
    network = FabricNetwork(spec.to_network_config(), deployment.contracts, stream=stream)
    stats = network.run_streamed(
        iter_synthetic_requests(spec, deployment.contracts[0].name)
    )
    return stream, network, stats


def _batch_run(base, seed, total):
    config, family, requests = make_synthetic(base, seed=seed, total_transactions=total)()
    return run_workload(config, family.deploy().contracts, requests)


class TestStreamedEquivalence:
    """A live streamed run == batch extraction on the identical workload."""

    BASE, SEED, TOTAL = "default", 13, 400

    def _spec(self):
        spec = synthetic_spec(self.BASE, seed=self.SEED)
        spec.total_transactions = self.TOTAL
        return spec

    def test_metrics_match_batch_end_to_end(self):
        network, _ = _batch_run(self.BASE, self.SEED, self.TOTAL)
        batch = compute_metrics(extract_blockchain_log(network))

        accumulator = MetricsAccumulator()
        stream, _, _ = _streamed_run(self._spec(), record_consumers=[accumulator])
        accumulator.config = stream.config
        assert accumulator.finish() == batch

    def test_forensics_match_batch_end_to_end(self):
        network, _ = _batch_run(self.BASE, self.SEED, self.TOTAL)
        batch = forensics_report(network)

        accumulator = ForensicsAccumulator()
        _, streamed_network, _ = _streamed_run(self._spec(), tx_consumers=[accumulator])
        streamed = accumulator.finish(
            mitigation=streamed_network.config.mitigation
        )
        assert report_digest(streamed) == report_digest(batch)

    def test_run_stats_match_the_batch_ledger(self):
        network, _ = _batch_run(self.BASE, self.SEED, self.TOTAL)
        log = extract_blockchain_log(network)

        stream, streamed_network, stats = _streamed_run(self._spec())
        assert stats.committed == len(log.records)
        assert stream.records_streamed == len(log.records)
        assert streamed_network.ledger.height == network.ledger.height
        assert streamed_network.ledger.tip_hash == network.ledger.tip_hash

    def test_streaming_ledger_refuses_read_back(self):
        _, network, _ = _streamed_run(self._spec())
        with pytest.raises(RuntimeError):
            network.ledger.transactions()
        with pytest.raises(RuntimeError):
            list(network.ledger)


# -- reference-implementation properties -------------------------------------------


def _make_record(order, ts, status=TxStatus.SUCCESS, keys=(), writes=None,
                 activity="act", endorsers=("Org1-peer0",)):
    writes = writes or {}
    return LogRecord(
        commit_order=order,
        tx_id=f"tx{order}",
        client_timestamp=ts,
        activity=activity,
        args=(),
        endorsers=tuple(endorsers),
        invoker="Org1-client0",
        invoker_org="Org1",
        read_keys=tuple(keys),
        write_keys=tuple(sorted(writes)),
        writes=dict(writes),
        read_versions={key: (0, 0) for key in keys},
        range_reads=(),
        status=status,
        tx_type=TxType.UPDATE if writes else TxType.READ,
        block_number=order // 10,
        block_position=order % 10,
        commit_time=ts + 1.0,
    )


def _linear_scan_index(timestamp, start, ins):
    """Reference binning: walk the windows until the half-open test holds."""
    index = 0
    while timestamp >= start + (index + 1) * ins:
        index += 1
    return index


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=40),
    st.floats(0.1, 5.0, allow_nan=False),
    st.floats(0.0, 10.0, allow_nan=False),
)
def test_property_interval_index_matches_linear_scan(stamps, ins, start):
    for stamp in stamps:
        timestamp = start + stamp
        assert interval_index(timestamp, start, ins) == _linear_scan_index(
            timestamp, start, ins
        )


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 30.0, allow_nan=False), st.booleans()),
        min_size=1,
        max_size=40,
    ),
    st.floats(0.1, 3.0, allow_nan=False),
)
def test_property_rate_series_matches_brute_force(items, ins):
    accumulator = RateSeriesAccumulator(ins)
    totals: dict[int, int] = {}
    failures: dict[int, int] = {}
    for order, (ts, failed) in enumerate(items):
        status = TxStatus.MVCC_CONFLICT if failed else TxStatus.SUCCESS
        accumulator.consume(_make_record(order, ts, status=status))
        index = _linear_scan_index(ts, 0.0, ins)
        totals[index] = totals.get(index, 0) + 1
        if failed:
            failures[index] = failures.get(index, 0) + 1
    expected = sorted(
        [index, totals[index], failures.get(index, 0)] for index in totals
    )
    assert [list(row) for row in accumulator.series()] == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["pay", "check", "close"]),
            st.lists(st.sampled_from(["k1", "k2", "k3", "k4"]), max_size=3),
            st.sampled_from(
                [TxStatus.SUCCESS, TxStatus.MVCC_CONFLICT, TxStatus.ENDORSEMENT_FAILURE]
            ),
            st.booleans(),  # writes its read keys too
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_metrics_counts_match_reference(items):
    records = []
    for order, (activity, keys, status, writes_keys) in enumerate(items):
        writes = {key: order for key in keys} if writes_keys else {}
        records.append(
            _make_record(
                order, float(order), status=status, keys=keys, writes=writes,
                activity=activity,
            )
        )

    accumulator = MetricsAccumulator(
        config=ChannelConfig(100, 1.0, 1 << 20, "Majority(Org1,Org2)")
    )
    for record in records:
        accumulator.consume(record)
    metrics = accumulator.finish()

    # Reference: brute-force recomputation of the countable metrics.
    failed = [r for r in records if r.status is not TxStatus.SUCCESS]
    assert metrics.total_transactions == len(records)
    assert metrics.total_failures == len(failed)
    failure_counts: dict[TxStatus, int] = {}
    for record in failed:
        failure_counts[record.status] = failure_counts.get(record.status, 0) + 1
    assert metrics.failure_counts == failure_counts
    kfreq: dict[str, int] = {}
    for record in failed:
        for key in record.rw_keys:
            kfreq[key] = kfreq.get(key, 0) + 1
    assert metrics.kfreq == kfreq
    ivsig: dict[str, int] = {}
    for record in records:
        ivsig[record.invoker] = ivsig.get(record.invoker, 0) + 1
    assert metrics.ivsig == ivsig
    corpa: dict[str, list[int]] = {}
    last: dict[str, int] = {}
    for record in records:
        if record.activity in last:
            corpa.setdefault(record.activity, []).append(
                record.commit_order - last[record.activity]
            )
        last[record.activity] = record.commit_order
    assert metrics.corpa == corpa


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.sampled_from(["a", "b", "c"]), max_size=2),  # read keys
            st.lists(st.sampled_from(["a", "b", "c"]), max_size=2),  # write keys
            st.booleans(),  # this record fails with an MVCC conflict
        ),
        min_size=1,
        max_size=25,
    )
)
def test_property_conflict_pairs_match_quadratic_reference(items):
    """The bounded last-writer index == a full-history quadratic search."""
    records = []
    for order, (reads, writes, fails) in enumerate(items):
        status = TxStatus.MVCC_CONFLICT if fails else TxStatus.SUCCESS
        records.append(
            _make_record(
                order,
                float(order),
                status=status,
                keys=reads,
                writes={key: order for key in writes},
            )
        )

    accumulator = MetricsAccumulator(
        config=ChannelConfig(100, 1.0, 1 << 20, "Majority(Org1,Org2)")
    )
    for record in records:
        accumulator.consume(record)
    pairs = accumulator.finish().conflict_pairs

    expected = []
    for position, record in enumerate(records):
        if record.status is not TxStatus.MVCC_CONFLICT:
            continue
        culprit = None
        for earlier in records[:position]:
            if earlier.status is not TxStatus.SUCCESS or not earlier.write_keys:
                continue
            if set(record.read_keys) & set(earlier.write_keys):
                if culprit is None or earlier.commit_order > culprit.commit_order:
                    culprit = earlier
        if culprit is not None:
            expected.append(
                (
                    record.commit_order,
                    culprit.commit_order,
                    tuple(sorted(set(record.read_keys) & set(culprit.write_keys))),
                )
            )
    assert [
        (pair.failed_order, pair.culprit_order, pair.shared_keys) for pair in pairs
    ] == expected


# -- memory ceiling ----------------------------------------------------------------


class _RecordCensus:
    """Record consumer that samples how many LogRecords are alive."""

    def __init__(self, every: int = 10_000) -> None:
        self.every = every
        self.seen = 0
        self.max_live = 0

    def consume(self, record: LogRecord) -> None:
        self.seen += 1
        if self.seen % self.every == 0:
            live = sum(1 for obj in gc.get_objects() if type(obj) is LogRecord)
            if live > self.max_live:
                self.max_live = live


def test_streamed_run_never_holds_more_than_one_block_of_records():
    """100k transactions streamed: live LogRecords stay below one block.

    The batch pipeline would hold all 100k records at once; the streaming
    path materializes each record transiently during fan-out, so at any
    sampled moment the census sees at most a handful (bounded by one
    block even if a consumer were to batch per block).
    """
    spec = synthetic_spec("default", seed=7)
    spec.total_transactions = 100_000
    census = _RecordCensus(every=10_000)
    _, network, stats = _streamed_run(spec, record_consumers=[census])
    assert stats.committed == 100_000
    assert census.seen == 100_000
    ceiling = network.ledger.max_block_transactions
    assert census.max_live <= ceiling, (
        f"{census.max_live} live records at a sample point; "
        f"expected at most one block ({ceiling})"
    )
