"""Focused tests for validation semantics and endorsement behaviour."""

import pytest

from repro.fabric.config import TimingConfig
from repro.fabric.network import run_workload
from repro.fabric.transaction import TxRequest, TxStatus

from tests.conftest import CounterContract, small_config


def _statuses(network):
    return [tx.status for tx in network.ledger.transactions(include_config=False)]


def test_intra_block_conflict_detected():
    """Two updates of one key in the same block: the second fails."""
    config = small_config(block_count=25, block_timeout=5.0)
    requests = [
        TxRequest(submit_time=0.0, activity="bump", args=("ctr:0000",), contract="counter"),
        TxRequest(submit_time=0.001, activity="bump", args=("ctr:0000",), contract="counter"),
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    statuses = _statuses(network)
    assert statuses.count(TxStatus.SUCCESS) == 1
    assert statuses.count(TxStatus.MVCC_CONFLICT) == 1
    blocks = {tx.block_number for tx in network.ledger.transactions(include_config=False)}
    assert len(blocks) == 1  # really intra-block


def test_inter_block_conflict_detected():
    """Updates landing in different blocks can still conflict if the second
    was endorsed before the first committed."""
    config = small_config(block_count=1, block_timeout=5.0)
    requests = [
        TxRequest(submit_time=0.0, activity="bump", args=("ctr:0000",), contract="counter"),
        TxRequest(submit_time=0.002, activity="bump", args=("ctr:0000",), contract="counter"),
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    statuses = _statuses(network)
    blocks = [tx.block_number for tx in network.ledger.transactions(include_config=False)]
    assert blocks[0] != blocks[1]
    assert statuses == [TxStatus.SUCCESS, TxStatus.MVCC_CONFLICT]


def test_blind_writes_never_conflict():
    config = small_config()
    requests = [
        TxRequest(submit_time=0.001 * i, activity="put", args=("ctr:0000", i), contract="counter")
        for i in range(10)
    ]
    _, result = run_workload(config, [CounterContract()], requests)
    assert result.success_rate == 1.0


def test_failed_tx_does_not_update_state():
    config = small_config()
    requests = [
        TxRequest(submit_time=0.001 * i, activity="bump", args=("ctr:0000",), contract="counter")
        for i in range(6)
    ]
    network, result = run_workload(config, [CounterContract()], requests)
    value = network.state_db.namespace("counter").get("ctr:0000").value
    assert value == result.success_count < 6


def test_read_missing_key_fails_if_created_before_commit():
    config = small_config()
    requests = [
        # Read of a key that does not exist yet...
        TxRequest(submit_time=0.0, activity="get", args=("ctr:7777",), contract="counter"),
        # ...while a creation races it into the same block.
        TxRequest(submit_time=0.001, activity="put", args=("ctr:7777", 1), contract="counter"),
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    # FIFO: the read commits first (still missing -> success); re-run with
    # creation first to exercise the failure path.
    requests = [
        TxRequest(submit_time=0.0, activity="put", args=("ctr:8888", 1), contract="counter"),
        TxRequest(submit_time=0.001, activity="get", args=("ctr:8888",), contract="counter"),
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    statuses = _statuses(network)
    assert statuses == [TxStatus.SUCCESS, TxStatus.MVCC_CONFLICT]


def test_endorsement_timeout_produces_policy_failure():
    """An overloaded mandatory endorser makes clients give up -> policy failure."""
    timing = TimingConfig(endorse_per_tx=0.5, endorse_timeout=0.4)
    config = small_config(timing=timing, endorsement_policy="And(Org1,Org2)")
    requests = [
        TxRequest(submit_time=0.001 * i, activity="get", args=("ctr:0001",), contract="counter")
        for i in range(10)
    ]
    network, result = run_workload(config, [CounterContract()], requests)
    assert result.failure_counts.get(TxStatus.ENDORSEMENT_FAILURE.value, 0) > 0


def test_missing_endorsements_recorded():
    timing = TimingConfig(endorse_per_tx=0.5, endorse_timeout=0.4)
    config = small_config(timing=timing, endorsement_policy="And(Org1,Org2)")
    requests = [
        TxRequest(submit_time=0.001 * i, activity="get", args=("ctr:0001",), contract="counter")
        for i in range(10)
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    failing = [
        tx
        for tx in network.ledger.transactions(include_config=False)
        if tx.status is TxStatus.ENDORSEMENT_FAILURE
    ]
    assert failing
    assert all(tx.missing_endorsements for tx in failing)


def test_selection_skew_concentrates_endorsers():
    config = small_config(
        endorsement_policy="OutOf(1,Org1,Org2)", endorser_selection_skew=6.0
    )
    requests = [
        TxRequest(submit_time=0.01 * i, activity="get", args=("ctr:0001",), contract="counter")
        for i in range(60)
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    from collections import Counter

    counts = Counter()
    for tx in network.ledger.transactions(include_config=False):
        for endorser in tx.endorsers:
            counts[endorser.rpartition("-peer")[0]] += 1
    assert counts["Org1"] > 50  # skew 6 -> nearly always the first alternative


def test_balanced_selection_spreads_endorsers():
    config = small_config(
        endorsement_policy="OutOf(1,Org1,Org2)", endorser_selection_skew=0.0
    )
    requests = [
        TxRequest(submit_time=0.01 * i, activity="get", args=("ctr:0001",), contract="counter")
        for i in range(200)
    ]
    network, _ = run_workload(config, [CounterContract()], requests)
    from collections import Counter

    counts = Counter()
    for tx in network.ledger.transactions(include_config=False):
        for endorser in tx.endorsers:
            counts[endorser.rpartition("-peer")[0]] += 1
    assert abs(counts["Org1"] - counts["Org2"]) < 60


def test_fabricpp_scheduler_reduces_intra_block_conflicts():
    """With the Fabric++ scheduler, the reader-before-writer order saves
    transactions that FIFO would fail."""
    base = small_config(block_count=25, block_timeout=5.0)
    requests = []
    for i in range(12):
        requests.append(
            TxRequest(submit_time=0.001 * (2 * i), activity="put", args=(f"ctr:{i:04d}", 1), contract="counter")
        )
        requests.append(
            TxRequest(submit_time=0.001 * (2 * i) + 0.0005, activity="get", args=(f"ctr:{i:04d}",), contract="counter")
        )
    _, fifo_result = run_workload(base, [CounterContract()], list(requests))
    pp = small_config(block_count=25, block_timeout=5.0, scheduler="fabricpp")
    _, pp_result = run_workload(pp, [CounterContract()], list(requests))
    assert pp_result.success_count > fifo_result.success_count


def test_fabricsharp_early_aborts_counted():
    config = small_config(scheduler="fabricsharp", block_count=5, block_timeout=0.05)
    requests = [
        TxRequest(submit_time=0.001 * i, activity="bump", args=("ctr:0000",), contract="counter")
        for i in range(30)
    ]
    network, result = run_workload(config, [CounterContract()], requests)
    if result.early_aborts:
        assert all(tx.abort_stage == "ordering" for tx in network.aborted)
        # Ordering-stage aborts stay in the success-rate denominator.
        assert result.failure_counts.get(TxStatus.EARLY_ABORT.value, 0) == result.early_aborts
