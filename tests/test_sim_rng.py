"""Unit tests for seeded RNG streams and Zipf helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SimRng, zipf_weights


def test_same_seed_same_draws():
    a, b = SimRng(42), SimRng(42)
    assert [a.uniform("x", 0, 1) for _ in range(5)] == [
        b.uniform("x", 0, 1) for _ in range(5)
    ]


def test_different_seeds_differ():
    a, b = SimRng(1), SimRng(2)
    assert [a.uniform("x", 0, 1) for _ in range(5)] != [
        b.uniform("x", 0, 1) for _ in range(5)
    ]


def test_streams_are_independent():
    """Drawing extra values from one stream must not shift another."""
    a, b = SimRng(7), SimRng(7)
    for _ in range(10):
        a.uniform("noise", 0, 1)  # extra draws on a different stream
    assert a.uniform("target", 0, 1) == b.uniform("target", 0, 1)


def test_choice_respects_items():
    rng = SimRng(3)
    items = ["x", "y", "z"]
    for _ in range(20):
        assert rng.choice("c", items) in items


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        SimRng(1).choice("c", [])


def test_exponential_requires_positive_mean():
    with pytest.raises(ValueError):
        SimRng(1).exponential("e", 0.0)


def test_shuffled_preserves_multiset():
    rng = SimRng(5)
    items = list(range(50))
    shuffled = rng.shuffled("s", items)
    assert sorted(shuffled) == items
    assert items == list(range(50))  # original untouched


def test_zipf_weights_uniform_at_zero_skew():
    weights = zipf_weights(10, 0.0)
    assert np.allclose(weights, 0.1)


def test_zipf_weights_monotone_decreasing():
    weights = zipf_weights(10, 1.5)
    assert all(weights[i] >= weights[i + 1] for i in range(9))


def test_zipf_weights_sum_to_one():
    for skew in (0.0, 0.5, 1.0, 2.0, 6.0):
        assert zipf_weights(37, skew).sum() == pytest.approx(1.0)


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)
    with pytest.raises(ValueError):
        zipf_weights(5, -1.0)


def test_zipf_index_in_range():
    rng = SimRng(9)
    for _ in range(100):
        assert 0 <= rng.zipf_index("z", 20, 1.0) < 20


def test_high_skew_concentrates_on_rank_zero():
    rng = SimRng(11)
    draws = [rng.zipf_index("z", 10, 6.0) for _ in range(200)]
    assert draws.count(0) > 150


@given(st.integers(min_value=1, max_value=200), st.floats(min_value=0, max_value=4))
def test_property_zipf_weights_valid_distribution(n, skew):
    weights = zipf_weights(n, skew)
    assert len(weights) == n
    assert np.all(weights > 0)
    assert weights.sum() == pytest.approx(1.0)


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_stream_determinism_across_instances(seed):
    assert SimRng(seed).uniform("s", 0, 1) == SimRng(seed).uniform("s", 0, 1)


# -- WeightedSampler ---------------------------------------------------------------


def test_weighted_sampler_matches_numpy_choice_draw_stream():
    """The precomputed-CDF sampler must be bit-identical to
    ``Generator.choice(n, p=weights)`` — the goldens depend on it."""
    from repro.sim.rng import WeightedSampler

    for n, skew in [(2, 0.0), (3, 1.0), (5, 2.5), (8, 0.3)]:
        weights = zipf_weights(n, skew)
        reference = np.random.default_rng(99)
        sampler = WeightedSampler(np.random.default_rng(99), weights)
        expected = [int(reference.choice(n, p=weights)) for _ in range(2000)]
        actual = [sampler.draw() for _ in range(2000)]
        assert actual == expected


def test_weighted_sampler_draw_array_matches_numpy_choice_draw_stream():
    """The vectorized batch draw must consume the identical PCG64 double
    stream as ``Generator.choice`` scalar calls — the batch kernel tier's
    endorser selection depends on it (ISSUE 9)."""
    from repro.sim.rng import WeightedSampler

    for n, skew in [(2, 0.0), (3, 1.0), (5, 2.5), (8, 0.3)]:
        weights = zipf_weights(n, skew)
        reference = np.random.default_rng(99)
        sampler = WeightedSampler(np.random.default_rng(99), weights)
        expected = [int(reference.choice(n, p=weights)) for _ in range(2000)]
        actual = []
        # Uneven chunk sizes: array draws must be chunking-invariant.
        for size in (1, 7, 256, 1000, 736):
            actual.extend(sampler.draw_array(size).tolist())
        assert actual == expected


def test_weighted_sampler_prefetch_matches_scalar_draws():
    """Prefetched scalar draws == unbuffered scalar draws, draw for draw,
    including across refill boundaries."""
    from repro.sim.rng import WeightedSampler

    weights = zipf_weights(6, 1.2)
    plain = WeightedSampler(np.random.default_rng(42), weights)
    buffered = WeightedSampler(np.random.default_rng(42), weights, prefetch=64)
    assert [buffered.draw() for _ in range(333)] == [
        plain.draw() for _ in range(333)
    ]


def test_weighted_sampler_rejects_negative_prefetch():
    from repro.sim.rng import WeightedSampler

    with pytest.raises(ValueError):
        WeightedSampler(np.random.default_rng(1), [1.0], prefetch=-1)


def test_weighted_sampler_accepts_plain_lists_and_rejects_empty():
    from repro.sim.rng import WeightedSampler

    sampler = WeightedSampler(np.random.default_rng(1), [1.0, 1.0])
    assert sampler.draw() in (0, 1)
    with pytest.raises(ValueError):
        WeightedSampler(np.random.default_rng(1), [])


def test_zipf_index_sampler_cache_matches_fresh_instance():
    """Cached CDFs must not perturb the stream vs a cold SimRng."""
    warm = SimRng(42)
    draws_warm = [warm.zipf_index("k", 10, 1.5) for _ in range(50)]
    draws_warm += [warm.zipf_index("k", 7, 0.5) for _ in range(50)]
    draws_warm += [warm.zipf_index("k", 10, 1.5) for _ in range(50)]

    cold = SimRng(42)
    gen = cold.stream("k")
    expected = [int(gen.choice(10, p=zipf_weights(10, 1.5))) for _ in range(50)]
    expected += [int(gen.choice(7, p=zipf_weights(7, 0.5))) for _ in range(50)]
    expected += [int(gen.choice(10, p=zipf_weights(10, 1.5))) for _ in range(50)]
    assert draws_warm == expected
