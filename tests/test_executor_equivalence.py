"""Serial/parallel equivalence: the process-pool executor must be exact.

The simulator is fully deterministic for a fixed seed (the kernel breaks
ties by insertion order), so fanning an experiment out over worker
processes must reproduce serial ``execute_experiment`` output bit for bit
— exact floats, same applied/forced flags, same recommendation sets.
Three representative experiments cover the three bundle makers
(synthetic, use case, loan) and multi-plan resolution.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import ResultCache
from repro.bench.executor import derive_seed, run_spec, run_suite
from repro.bench.registry import get

#: Small but non-trivial budgets: enough traffic for MVCC conflicts and
#: recommendations to fire, small enough for the tier-1 time budget.
REPRESENTATIVES = [
    get("fig09_block_size/block_count_50").with_overrides(total_transactions=400),
    get("fig16_voting/voting").with_overrides(total_transactions=400),
    get("fig17_loan/send_rate_300").with_overrides(total_transactions=400),
]


@pytest.fixture(scope="module")
def serial_outcomes():
    return [run_spec(spec) for spec in REPRESENTATIVES]


def test_parallel_rows_identical_to_serial(serial_outcomes):
    report = run_suite(REPRESENTATIVES, jobs=2, cache=None)
    assert len(report.outcomes) == len(serial_outcomes)
    for parallel, serial in zip(report.outcomes, serial_outcomes):
        assert parallel.name == serial.name
        # RunRow dataclass equality covers exact float equality of the
        # headline numbers plus applied kinds and forced flags.
        assert parallel.rows == serial.rows
        assert parallel.recommendations == serial.recommendations
        assert parallel.paper == serial.paper


def test_parallel_matches_at_higher_job_counts(serial_outcomes):
    report = run_suite(REPRESENTATIVES, jobs=4, cache=None)
    assert [outcome.rows for outcome in report.outcomes] == [
        outcome.rows for outcome in serial_outcomes
    ]


def test_cache_round_trip_preserves_rows(tmp_path, serial_outcomes):
    cache = ResultCache(tmp_path)
    first = run_suite(REPRESENTATIVES, jobs=2, cache=cache)
    assert first.simulated_runs == sum(s.run_count() for s in REPRESENTATIVES)
    warm = run_suite(REPRESENTATIVES, jobs=2, cache=cache)
    assert warm.simulated_runs == 0
    assert warm.cached == [spec.exp_id for spec in REPRESENTATIVES]
    assert [outcome.rows for outcome in warm.outcomes] == [
        outcome.rows for outcome in serial_outcomes
    ]


def test_seed_override_changes_results_deterministically():
    spec = REPRESENTATIVES[0]
    reseeded = spec.with_overrides(seed=derive_seed(99, spec.exp_id))
    assert reseeded.seed != spec.seed
    a, b = run_spec(reseeded), run_spec(reseeded)
    assert a.rows == b.rows  # same derived seed -> same exact numbers


class TestCacheRobustness:
    """Corrupt cache entries are a miss — deleted and re-executed."""

    SPEC = get("table3/num_orgs_4").with_overrides(total_transactions=200)

    @pytest.fixture()
    def warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = run_suite([self.SPEC], jobs=1, cache=cache)
        assert report.executed == [self.SPEC.exp_id]
        return cache

    @pytest.mark.parametrize(
        "garbage",
        [
            b"",  # interrupted before any byte landed
            b'{"exp_id": "table3/num_orgs_4", "outcome"',  # truncated mid-write
            b"\xff\xfe\x00 not even utf-8 \x9c",  # binary junk
            b'{"spec": {}}',  # valid JSON, missing the outcome
            b'{"outcome": 42}',  # outcome of the wrong shape
        ],
        ids=["empty", "truncated", "binary", "missing-key", "wrong-shape"],
    )
    def test_garbage_entry_is_deleted_and_rerun(self, warm_cache, garbage):
        path = warm_cache.path(self.SPEC)
        path.write_bytes(garbage)
        assert warm_cache.get(self.SPEC) is None
        assert not path.exists()  # the bad bytes never trip a second run
        rerun = run_suite([self.SPEC], jobs=1, cache=warm_cache)
        assert rerun.executed == [self.SPEC.exp_id]
        assert rerun.simulated_runs == self.SPEC.run_count()
        # The fresh entry is healthy again.
        assert warm_cache.get(self.SPEC) is not None

    def test_intact_entry_is_untouched(self, warm_cache):
        path = warm_cache.path(self.SPEC)
        before = path.read_bytes()
        warm = run_suite([self.SPEC], jobs=1, cache=warm_cache)
        assert warm.cached == [self.SPEC.exp_id]
        assert path.read_bytes() == before


class TestFailureAttribution:
    """A crashing cell must surface its exp_id plus the original traceback."""

    @staticmethod
    def poison_spec():
        from dataclasses import replace

        return replace(
            get("table3/num_orgs_4").with_overrides(total_transactions=200),
            exp_id="poison/bad_maker",
            maker="no_such_maker",
        )

    def test_serial_failure_names_the_experiment(self):
        from repro.bench.executor import ExperimentExecutionError

        with pytest.raises(ExperimentExecutionError) as excinfo:
            run_suite([self.poison_spec()], jobs=1, cache=None)
        error = excinfo.value
        assert error.exp_id == "poison/bad_maker"
        assert "poison/bad_maker" in str(error)
        assert "original traceback" in str(error)
        assert "no_such_maker" in str(error)
        assert isinstance(error.original, KeyError)

    def test_parallel_failure_names_the_experiment(self):
        from repro.bench.executor import ExperimentExecutionError

        with pytest.raises(ExperimentExecutionError) as excinfo:
            run_suite([self.poison_spec()], jobs=2, cache=None)
        error = excinfo.value
        assert error.exp_id == "poison/bad_maker"
        assert error.stage == "baseline"
        assert "no_such_maker" in str(error)
