"""Shard layer tests: deterministic planning, stitching, registry routing."""

import pytest

from repro.bench.registry import ON_DEMAND_GROUPS, all_specs, get
from repro.shard import (
    assign_clients,
    derive_channel_seed,
    plan_shards,
    run_registry_spec,
    run_sharded,
    stitch,
)


class TestPlanning:
    def test_plan_is_deterministic(self):
        first = plan_shards("default", channels=4, total_transactions=10_001, seed=11)
        second = plan_shards("default", channels=4, total_transactions=10_001, seed=11)
        assert first == second
        assert first.to_dict() == second.to_dict()

    def test_transactions_partition_with_remainder_to_front(self):
        plan = plan_shards("default", channels=4, total_transactions=10_002, seed=7)
        budgets = [channel.transactions for channel in plan.channels]
        assert sum(budgets) == 10_002
        assert budgets == [2501, 2501, 2500, 2500]

    def test_channel_seeds_are_distinct_and_name_derived(self):
        plan = plan_shards("default", channels=6, total_transactions=6_000, seed=7)
        seeds = [channel.seed for channel in plan.channels]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [
            derive_channel_seed(7, f"channel{index}") for index in range(6)
        ]

    def test_different_plan_seeds_give_different_channel_seeds(self):
        first = plan_shards("default", channels=2, total_transactions=100, seed=1)
        second = plan_shards("default", channels=2, total_transactions=100, seed=2)
        assert first.channels[0].seed != second.channels[0].seed

    def test_every_channel_keeps_at_least_one_client_per_org(self):
        # Enough channels that the hash is likely to leave gaps the
        # minimum-membership rule must fill.
        for split in assign_clients(["Org1", "Org2"], 1, 16):
            for _org, count in split:
                assert count >= 1

    def test_client_assignment_is_deterministic(self):
        assert assign_clients(["Org1", "Org2"], 2, 4) == assign_clients(
            ["Org1", "Org2"], 2, 4
        )

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="cannot cover"):
            plan_shards("default", channels=8, total_transactions=4)
        with pytest.raises(ValueError, match="interval_seconds"):
            plan_shards("default", channels=2, total_transactions=100, interval_seconds=0)
        with pytest.raises(KeyError):
            plan_shards("no_such_base", channels=2, total_transactions=100)


class TestStitching:
    @pytest.fixture(scope="class")
    def small_run(self):
        plan = plan_shards("default", channels=2, total_transactions=600, seed=7)
        return plan, run_sharded(plan)

    def test_totals_are_channel_sums(self, small_run):
        _, stitched = small_run
        for field in ("issued", "committed", "aborted", "submitted", "successes",
                      "blocks", "data_blocks"):
            assert getattr(stitched, field) == sum(
                getattr(channel, field) for channel in stitched.channels
            )
        assert stitched.committed == 600

    def test_digest_is_stable_across_runs(self, small_run):
        plan, stitched = small_run
        again = run_sharded(plan)
        assert again.digest() == stitched.digest()
        assert again.to_dict() == stitched.to_dict()

    def test_stitch_rejects_mismatched_summaries(self, small_run):
        plan, stitched = small_run
        with pytest.raises(ValueError):
            stitch(plan, list(stitched.channels[:1]))

    def test_makespan_spans_channels_not_their_sum(self, small_run):
        _, stitched = small_run
        longest = max(channel.makespan for channel in stitched.channels)
        assert longest <= stitched.makespan < sum(
            channel.makespan for channel in stitched.channels
        )

    def test_all_aborts_stitches_to_defined_values(self):
        # A channel (or a whole run) with zero commits — a harsh fault
        # scenario aborting everything — must stitch cleanly: defined
        # latency/throughput/success (0.0), a digestable summary, no
        # ZeroDivisionError out of the latency or success-rate merges.
        from repro.shard.summary import ChannelSummary

        plan = plan_shards("default", channels=2, total_transactions=10, seed=7)
        all_aborts = [
            ChannelSummary(
                name=channel.name,
                seed=channel.seed,
                planned_transactions=channel.transactions,
                issued=channel.transactions,
                committed=0,
                aborted=channel.transactions,
                blocks=0,
                data_blocks=0,
                max_block_transactions=0,
                cut_reasons={},
                submitted=0,
                successes=0,
                failures=channel.transactions,
                cause_counts={"policy_endorsement_timeout": channel.transactions},
                hot_keys=[],
                key_families=[],
                org_policy_failures={},
                max_attempt=1,
                latency_sum=0.0,
                latency_count=0,
                latency_max=0.0,
                first_submit=0.0,
                last_commit=0.0,
                rate_series=[],
            )
            for channel in plan.channels
        ]
        stitched = stitch(plan, all_aborts)
        assert stitched.avg_latency == 0.0
        assert stitched.success_rate == 0.0
        assert stitched.throughput == 0.0
        for channel in stitched.channels:
            assert channel.avg_latency == 0.0
            assert channel.success_rate == 0.0
        totals = stitched.to_dict()["totals"]
        assert totals["committed"] == 0
        assert totals["avg_latency"] == 0.0
        assert len(stitched.digest()) == 64


class TestRegistryRouting:
    def test_large_scale_is_on_demand_only(self):
        default_ids = {spec.exp_id for spec in all_specs()}
        all_ids = {spec.exp_id for spec in all_specs(include_on_demand=True)}
        assert not any(exp_id.startswith("large_scale/") for exp_id in default_ids)
        assert "large_scale/multichannel_1m" in all_ids
        assert "large_scale" in ON_DEMAND_GROUPS

    def test_sharded_spec_has_no_bundle(self):
        spec = get("large_scale/multichannel_5k")
        assert spec.maker == "sharded"
        with pytest.raises(ValueError, match="sharded"):
            spec.make_bundle()

    def test_run_registry_spec_outcome_shape(self):
        spec = get("large_scale/multichannel_5k").with_overrides(
            total_transactions=600
        )
        outcome = run_registry_spec(spec)
        assert outcome.name == spec.title
        (row,) = outcome.rows
        assert row.label == "sharded"
        assert row.throughput > 0
        assert 0.0 <= row.success_pct <= 100.0
        assert outcome.recommendations == []

    def test_suite_executes_and_caches_sharded_specs(self, tmp_path):
        from repro.bench.cache import ResultCache
        from repro.bench.executor import run_suite

        spec = get("large_scale/multichannel_5k").with_overrides(
            total_transactions=600
        )
        cache = ResultCache(tmp_path)
        cold = run_suite([spec], jobs=1, cache=cache)
        assert cold.executed == [spec.exp_id]
        warm = run_suite([spec], jobs=1, cache=cache)
        assert warm.simulated_runs == 0
        assert warm.cached == [spec.exp_id]
        assert warm.outcomes[0].rows == cold.outcomes[0].rows
