"""Property test for the suite executor (ISSUE 1, satellite 3).

For any subset of the run table, any ``jobs`` in 1..4 and any cache state
(cold or pre-warmed), the executor must return exactly one outcome per
requested experiment, in request order, with no duplicate or missing run
labels — and every outcome must equal the serial reference bit for bit.
"""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.cache import ResultCache
from repro.bench.executor import run_spec, run_suite
from repro.bench.registry import get

#: A tiny run table: all three plan shapes (none, single, multiple) at a
#: budget small enough for many hypothesis examples.
RUN_TABLE = [
    get("table3/send_rate_50").with_overrides(total_transactions=150),
    get("fig09_block_size/block_count_50").with_overrides(total_transactions=150),
    get("fig08_client_boost/tx_dist_skew_70").with_overrides(total_transactions=150),
    get("fig12_combined/tx_dist_skew_70").with_overrides(total_transactions=150),
]

_reference_cache: dict[str, object] = {}


def _reference(spec):
    """Serial reference outcome, computed once per spec across examples."""
    if spec.exp_id not in _reference_cache:
        _reference_cache[spec.exp_id] = run_spec(spec)
    return _reference_cache[spec.exp_id]


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=len(RUN_TABLE) - 1),
        min_size=0,
        max_size=len(RUN_TABLE),
        unique=True,
    ),
    jobs=st.integers(min_value=1, max_value=4),
    warm=st.booleans(),
)
def test_any_subset_any_jobs_any_cache_state(indices, jobs, warm):
    subset = [RUN_TABLE[i] for i in indices]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        if warm:
            primed = run_suite(subset, jobs=1, cache=cache)
            assert primed.simulated_runs == sum(s.run_count() for s in subset)

        report = run_suite(subset, jobs=jobs, cache=cache)

        # One outcome per requested experiment, in request order.
        assert [o.name for o in report.outcomes] == [s.title for s in subset]
        # Warm cache -> zero simulation runs; cold -> every run simulated.
        if warm:
            assert report.simulated_runs == 0
            assert report.executed == []
        else:
            assert report.simulated_runs == sum(s.run_count() for s in subset)
            assert sorted(report.executed) == sorted(s.exp_id for s in subset)

        for spec, outcome in zip(subset, report.outcomes):
            reference = _reference(spec)
            # No duplicate or missing run labels, exact row equality.
            labels = [row.label for row in outcome.rows]
            assert labels == ["without"] + [label for label, _ in spec.plans]
            assert len(set(labels)) == len(labels)
            assert outcome.rows == reference.rows
            assert outcome.recommendations == reference.recommendations
