"""Integration tests for the full EOV pipeline."""

import pytest

from repro.fabric.config import NetworkConfig, TimingConfig, default_orgs
from repro.fabric.network import FabricNetwork, run_workload
from repro.fabric.transaction import TxRequest, TxStatus

from tests.conftest import CounterContract, counter_requests, small_config


def test_all_transactions_accounted(finished_network):
    network, result = finished_network
    assert result.total_issued == 200
    assert result.success_count + sum(result.failure_counts.values()) == 200


def test_ledger_chain_valid(finished_network):
    network, _ = finished_network
    assert network.ledger.verify_chain()


def test_genesis_block_carries_config(finished_network):
    network, _ = finished_network
    genesis = network.ledger.block(0)
    assert genesis.transactions[0].is_config
    args = dict(genesis.transactions[0].args)
    assert args["block_count"] == network.config.block_count


def test_commit_order_assigned_sequentially(finished_network):
    network, _ = finished_network
    orders = [tx.commit_order for tx in network.ledger.transactions(include_config=False)]
    assert orders == list(range(len(orders)))


def test_successful_write_updates_state(counter_contract):
    config = small_config()
    requests = [
        TxRequest(submit_time=0.0, activity="put", args=("ctr:0001", 99), contract="counter")
    ]
    network, result = run_workload(config, [counter_contract], requests)
    assert result.success_count == 1
    assert network.state_db.namespace("counter").get("ctr:0001").value == 99


def test_sequential_bumps_all_succeed(counter_contract):
    """Spaced-out increments never conflict."""
    config = small_config()
    requests = [
        TxRequest(submit_time=i * 3.0, activity="bump", args=("ctr:0000",), contract="counter")
        for i in range(5)
    ]
    network, result = run_workload(config, [counter_contract], requests)
    assert result.success_rate == 1.0
    assert network.state_db.namespace("counter").get("ctr:0000").value == 5


def test_concurrent_bumps_conflict(counter_contract):
    """Simultaneous increments of one key: exactly the serializable subset wins."""
    config = small_config()
    requests = [
        TxRequest(submit_time=0.001 * i, activity="bump", args=("ctr:0000",), contract="counter")
        for i in range(10)
    ]
    network, result = run_workload(config, [counter_contract], requests)
    final = network.state_db.namespace("counter").get("ctr:0000").value
    # State must equal the number of SUCCESSFUL increments (serializability).
    assert final == result.success_count
    assert result.failure_counts.get(TxStatus.MVCC_CONFLICT.value, 0) > 0


def test_phantom_conflict_on_insert_during_scan(counter_contract):
    config = small_config()
    # The insert is sent first and commits earlier in the same block; the
    # scan executes against the pre-insert snapshot, so at validation the
    # scanned range has a new member.
    requests = [
        TxRequest(submit_time=0.0, activity="put", args=("ctr:9999", 1), contract="counter"),
        TxRequest(submit_time=0.001, activity="scan", args=("ctr:", "ctr:￿"), contract="counter"),
        # Second scan long after, should succeed.
        TxRequest(submit_time=10.0, activity="scan", args=("ctr:", "ctr:￿"), contract="counter"),
    ]
    network, result = run_workload(config, [counter_contract], requests)
    statuses = [tx.status for tx in network.ledger.transactions(include_config=False)]
    assert TxStatus.PHANTOM_CONFLICT in statuses
    assert statuses[-1] is TxStatus.SUCCESS


def test_reads_of_stable_keys_succeed(counter_contract):
    config = small_config()
    requests = [
        TxRequest(submit_time=i / 100.0, activity="get", args=(f"ctr:{i % 20:04d}",), contract="counter")
        for i in range(50)
    ]
    _, result = run_workload(config, [counter_contract], requests)
    assert result.success_rate == 1.0


def test_empty_workload_rejected(counter_contract):
    network = FabricNetwork(small_config(), [counter_contract])
    with pytest.raises(ValueError):
        network.run([])


def test_policy_must_match_orgs(counter_contract):
    config = small_config(endorsement_policy="And(Org1,Org9)")
    with pytest.raises(ValueError):
        FabricNetwork(config, [counter_contract])


def test_duplicate_contract_names_rejected():
    with pytest.raises(ValueError):
        FabricNetwork(small_config(), [CounterContract(), CounterContract()])


def test_no_contracts_rejected():
    with pytest.raises(ValueError):
        FabricNetwork(small_config(), [])


def test_determinism_same_seed(counter_contract):
    requests = counter_requests(count=150, rate=300.0)
    _, r1 = run_workload(small_config(), [CounterContract()], list(requests))
    _, r2 = run_workload(small_config(), [CounterContract()], list(requests))
    assert r1.success_count == r2.success_count
    assert r1.avg_latency == r2.avg_latency
    assert r1.failure_counts == r2.failure_counts


def test_block_cutting_by_count(counter_contract):
    config = small_config(block_count=10, block_timeout=60.0)
    requests = counter_requests(count=100, rate=1000.0)
    network, result = run_workload(config, [counter_contract], requests)
    data_blocks = [b for b in network.ledger if not b.transactions[0].is_config]
    full = [b for b in data_blocks if len(b) == 10]
    assert len(full) >= 9
    assert network.orderer.cut_reasons["count"] >= 9


def test_block_cutting_by_timeout(counter_contract):
    config = small_config(block_count=1000, block_timeout=0.2)
    requests = counter_requests(count=50, rate=100.0)
    network, _ = run_workload(config, [counter_contract], requests)
    assert network.orderer.cut_reasons["timeout"] >= 1
    assert network.orderer.cut_reasons["count"] == 0


def test_block_cutting_by_bytes(counter_contract):
    config = small_config(block_count=10_000, block_timeout=60.0, block_bytes=2000)
    requests = counter_requests(count=60, rate=1000.0)
    network, _ = run_workload(config, [counter_contract], requests)
    assert network.orderer.cut_reasons["bytes"] >= 1


def test_invoker_org_pinning(counter_contract):
    config = small_config()
    requests = [
        TxRequest(
            submit_time=i / 100.0,
            activity="get",
            args=("ctr:0000",),
            contract="counter",
            invoker_org="Org2",
        )
        for i in range(20)
    ]
    network, _ = run_workload(config, [counter_contract], requests)
    invokers = {tx.invoker_org for tx in network.ledger.transactions(include_config=False)}
    assert invokers == {"Org2"}


def test_endorsers_satisfy_policy(finished_network):
    network, _ = finished_network
    for tx in network.ledger.transactions(include_config=False):
        if tx.status is not TxStatus.ENDORSEMENT_FAILURE:
            orgs = {name.rpartition("-peer")[0] for name in tx.endorsers}
            assert network.policy.is_satisfied_by(orgs)


def test_utilization_reported(finished_network):
    _, result = finished_network
    assert "orderer" in result.utilization
    assert "validator" in result.utilization
    assert all(0.0 <= u <= 1.0 for u in result.utilization.values())


def test_latency_positive_for_all_successes(finished_network):
    network, _ = finished_network
    for tx in network.ledger.transactions(include_config=False):
        if tx.status is TxStatus.SUCCESS:
            assert tx.latency is not None and tx.latency > 0
