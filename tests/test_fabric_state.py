"""Unit + property tests for the versioned world state."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric.state import StateDatabase, WorldState
from repro.fabric.transaction import DELETED, Version


def test_put_get_roundtrip():
    ws = WorldState()
    ws.put("a", 1, Version(1, 0))
    entry = ws.get("a")
    assert entry.value == 1
    assert entry.version == Version(1, 0)


def test_missing_key_returns_none():
    ws = WorldState()
    assert ws.get("missing") is None
    assert ws.version("missing") is None


def test_overwrite_bumps_version():
    ws = WorldState()
    ws.put("a", 1, Version(1, 0))
    ws.put("a", 2, Version(2, 3))
    assert ws.get("a").value == 2
    assert ws.version("a") == Version(2, 3)
    assert len(ws) == 1


def test_delete_removes_key_and_index():
    ws = WorldState()
    ws.put("a", 1, Version(1, 0))
    ws.put("b", 2, Version(1, 1))
    ws.delete("a")
    assert "a" not in ws
    assert ws.keys() == ["b"]


def test_deleted_sentinel_removes():
    ws = WorldState()
    ws.put("a", 1, Version(1, 0))
    ws.put("a", DELETED, Version(2, 0))
    assert "a" not in ws


def test_delete_missing_is_noop():
    ws = WorldState()
    ws.delete("nope")
    assert len(ws) == 0


def test_range_scan_half_open_and_ordered():
    ws = WorldState()
    for i, key in enumerate(["b", "d", "a", "c", "e"]):
        ws.put(key, i, Version(1, i))
    keys = [k for k, _ in ws.range_scan("a", "d")]
    assert keys == ["a", "b", "c"]


def test_range_scan_empty_range():
    ws = WorldState()
    ws.put("m", 1, Version(1, 0))
    assert list(ws.range_scan("x", "z")) == []
    assert list(ws.range_scan("m", "m")) == []


def test_snapshot_versions():
    ws = WorldState()
    ws.put("a", 1, Version(1, 0))
    ws.put("b", 2, Version(2, 5))
    assert ws.snapshot_versions() == {"a": Version(1, 0), "b": Version(2, 5)}


def test_state_database_namespace_isolation():
    db = StateDatabase()
    db.namespace("c1").put("k", 1, Version(1, 0))
    db.namespace("c2").put("k", 2, Version(1, 0))
    assert db.namespace("c1").get("k").value == 1
    assert db.namespace("c2").get("k").value == 2
    assert db.namespaces() == ["c1", "c2"]
    assert db.total_keys() == 2


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(alphabet="abcdef", min_size=1, max_size=4),
        ),
        max_size=80,
    )
)
def test_property_sorted_index_matches_dict(ops):
    """The incremental sorted-key index always equals sorted(dict keys)."""
    ws = WorldState()
    version = 0
    for op, key in ops:
        if op == "put":
            ws.put(key, version, Version(1, version))
        else:
            ws.delete(key)
        version += 1
    assert ws.keys() == sorted(set(ws.snapshot_versions()))


@given(
    st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=5),
        st.integers(),
        max_size=40,
    ),
    st.text(alphabet="abcdefgh", min_size=1, max_size=5),
    st.text(alphabet="abcdefgh", min_size=1, max_size=5),
)
def test_property_range_scan_equals_filter(data, start, end):
    ws = WorldState()
    for index, (key, value) in enumerate(data.items()):
        ws.put(key, value, Version(1, index))
    scanned = {k: e.value for k, e in ws.range_scan(start, end)}
    expected = {k: v for k, v in data.items() if start <= k < end}
    assert scanned == expected
