"""Unit + property tests for endorsement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric.policy import (
    EndorsementPolicy,
    PolicyError,
    parse_policy,
    standard_policy,
)


class TestParsing:
    def test_single_org(self):
        policy = parse_policy("Org1")
        assert policy.kind == "org"
        assert policy.organizations() == {"Org1"}

    def test_p1_shape(self):
        policy = parse_policy("And(Org1,Or(Org2,Org3,Org4))")
        assert policy.kind == "and"
        assert policy.organizations() == {"Org1", "Org2", "Org3", "Org4"}

    def test_whitespace_tolerated(self):
        policy = parse_policy("  And( Org1 , Or(Org2, Org3) ) ")
        assert policy.organizations() == {"Org1", "Org2", "Org3"}

    def test_majority_normalizes_to_outof(self):
        policy = parse_policy("Majority(Org1,Org2,Org3,Org4)")
        assert policy.kind == "outof"
        assert policy.m == 3

    def test_majority_of_two_means_both(self):
        policy = parse_policy("Majority(Org1,Org2)")
        assert policy.m == 2

    def test_case_insensitive_keywords(self):
        assert parse_policy("AND(Org1,OR(Org2,Org3))").kind == "and"
        assert parse_policy("outof(1,Org1,Org2)").m == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "And(Org1",
            "And(Org1))",
            "OutOf(Org1,Org2)",
            "OutOf(5,Org1,Org2)",
            "And(Org1,,Org2)",
            "42",
            "And(Org1 Org2)",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(PolicyError):
            parse_policy(bad)

    def test_roundtrip_expression(self):
        text = "And(Org1,Or(Org2,Org3,Org4))"
        assert parse_policy(parse_policy(text).to_expression()).to_expression() == (
            parse_policy(text).to_expression()
        )


class TestEvaluation:
    def test_and_requires_all(self):
        policy = parse_policy("And(Org1,Org2)")
        assert policy.is_satisfied_by({"Org1", "Org2"})
        assert not policy.is_satisfied_by({"Org1"})

    def test_or_requires_any(self):
        policy = parse_policy("Or(Org1,Org2)")
        assert policy.is_satisfied_by({"Org2"})
        assert not policy.is_satisfied_by({"Org3"})

    def test_outof_threshold(self):
        policy = parse_policy("OutOf(2,Org1,Org2,Org3)")
        assert policy.is_satisfied_by({"Org1", "Org3"})
        assert not policy.is_satisfied_by({"Org2"})

    def test_p1_semantics(self):
        policy = standard_policy("P1")
        assert policy.is_satisfied_by({"Org1", "Org3"})
        assert not policy.is_satisfied_by({"Org2", "Org3", "Org4"})  # Org1 mandatory

    def test_p2_semantics(self):
        policy = standard_policy("P2")
        assert policy.is_satisfied_by({"Org2", "Org4"})
        assert not policy.is_satisfied_by({"Org1", "Org2"})

    def test_empty_set_never_satisfies(self):
        for name in ("P1", "P2", "P3", "P4"):
            assert not standard_policy(name).is_satisfied_by(set())


class TestMinimalSets:
    def test_p1_minimal_sets(self):
        sets = standard_policy("P1").minimal_satisfying_sets()
        assert sets == (
            frozenset({"Org1", "Org2"}),
            frozenset({"Org1", "Org3"}),
            frozenset({"Org1", "Org4"}),
        )

    def test_p4_minimal_sets_count(self):
        # OutOf(2, 4 orgs) -> C(4,2) = 6 pairs.
        assert len(standard_policy("P4").minimal_satisfying_sets()) == 6

    def test_mandatory_orgs_p1(self):
        assert standard_policy("P1").mandatory_orgs() == {"Org1"}

    def test_mandatory_orgs_p4_none(self):
        assert standard_policy("P4").mandatory_orgs() == frozenset()

    def test_min_endorsements(self):
        assert standard_policy("P1").min_endorsements() == 2
        assert standard_policy("P3").min_endorsements() == 3
        assert parse_policy("Or(Org1,Org2)").min_endorsements() == 1

    def test_minimal_sets_are_minimal(self):
        sets = standard_policy("P2").minimal_satisfying_sets()
        for a in sets:
            for b in sets:
                if a != b:
                    assert not a < b

    def test_p0_is_any_single_org(self):
        sets = standard_policy("P0", num_orgs=3).minimal_satisfying_sets()
        assert sets == (frozenset({"Org1"}), frozenset({"Org2"}), frozenset({"Org3"}))


def test_unknown_standard_policy():
    with pytest.raises(PolicyError):
        standard_policy("P9")


@st.composite
def policies(draw, depth=0):
    orgs = [f"Org{i}" for i in range(1, 6)]
    if depth >= 2 or draw(st.booleans()):
        return EndorsementPolicy.single(draw(st.sampled_from(orgs)))
    kind = draw(st.sampled_from(["and", "or", "outof"]))
    n = draw(st.integers(min_value=1, max_value=3))
    children = [draw(policies(depth=depth + 1)) for _ in range(n)]
    if kind == "and":
        return EndorsementPolicy.and_(*children)
    if kind == "or":
        return EndorsementPolicy.or_(*children)
    m = draw(st.integers(min_value=1, max_value=n))
    return EndorsementPolicy.out_of(m, *children)


@given(policies())
def test_property_minimal_sets_satisfy_policy(policy):
    for org_set in policy.minimal_satisfying_sets():
        assert policy.is_satisfied_by(org_set)


@given(policies())
def test_property_satisfaction_is_monotone(policy):
    """Adding endorsing orgs never breaks a satisfied policy."""
    all_orgs = policy.organizations()
    for org_set in policy.minimal_satisfying_sets():
        assert policy.is_satisfied_by(org_set | all_orgs)


@given(policies())
def test_property_expression_roundtrip(policy):
    reparsed = parse_policy(policy.to_expression())
    assert reparsed.minimal_satisfying_sets() == policy.minimal_satisfying_sets()


@given(policies())
def test_property_proper_subsets_of_minimal_fail(policy):
    for org_set in policy.minimal_satisfying_sets():
        for org in org_set:
            assert not policy.is_satisfied_by(org_set - {org})
