"""Golden-file regression tests for headline figure numbers.

Pins the exact headline numbers (throughput, latency, success%) of
representative experiments under the seed configs at a fixed 800-
transaction budget: ``fig07_endorser`` (endorser restructuring),
``fig09_block_size``, ``fig10_rate_control``, ``fig11_reordering``
(activity reordering), ``fig12_combined``, the Table 3 recommendation
sets, and one fault-injection scenario.  Any change to the simulator,
workload generation, scenario engine, recommender or apply pipeline that
shifts these numbers shows up as a diff against ``tests/golden/*.json``.

Regenerate deliberately after an intended behaviour change:

    PYTHONPATH=src python tests/test_golden_figures.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Fixed budget: large enough for the paper's shapes (collapse, rate
#: control) to manifest, small enough for the tier-1 time budget.
GOLDEN_TXS = 800

GOLDEN_EXPERIMENTS = [
    "fig07_endorser/endorsement_policy_p1",
    "fig07_endorser/endorsement_policy_p2_skew",
    "fig09_block_size/block_count_50",
    "fig09_block_size/send_rate_1000",
    "fig10_rate_control/num_orgs_4",
    "fig10_rate_control/send_rate_500",
    "fig11_reordering/workload_insert_heavy",
    "fig11_reordering/key_dist_skew_2",
    "fig12_combined/block_count_50",
    "fig12_combined/tx_dist_skew_70",
    # Table 3: pins the *recommendation sets* (rows carry the baseline).
    "table3/key_dist_skew_2",
    "table3/tx_dist_skew_70",
    "table3/workload_rangeread_heavy",
    # The scenario engine: crash + burst under the default workload.
    "scenario_faults/crash_burst",
]


def _golden_path(exp_id: str) -> Path:
    return GOLDEN_DIR / (exp_id.replace("/", "__") + ".json")


def _compute(exp_id: str) -> dict:
    from repro.bench.cache import outcome_to_dict
    from repro.bench.executor import run_spec
    from repro.bench.registry import get

    spec = get(exp_id).with_overrides(total_transactions=GOLDEN_TXS)
    data = outcome_to_dict(run_spec(spec))
    data["exp_id"] = exp_id
    data["total_transactions"] = GOLDEN_TXS
    data["seed"] = spec.seed
    return data


@pytest.mark.parametrize("exp_id", GOLDEN_EXPERIMENTS)
def test_headline_numbers_match_golden(exp_id):
    path = _golden_path(exp_id)
    assert path.is_file(), (
        f"missing golden file {path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_figures.py --regenerate`"
    )
    golden = json.loads(path.read_text())
    measured = _compute(exp_id)
    assert measured["rows"] == golden["rows"], (
        f"{exp_id}: headline numbers drifted from tests/golden — if the "
        f"change is intended, regenerate the golden files"
    )
    assert measured["recommendations"] == golden["recommendations"]


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for exp_id in GOLDEN_EXPERIMENTS:
        data = _compute(exp_id)
        path = _golden_path(exp_id)
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
