"""Golden-file regression tests for headline figure numbers.

Pins the exact headline numbers (throughput, latency, success%) of
representative experiments under the seed configs at a fixed 800-
transaction budget: ``fig07_endorser`` (endorser restructuring),
``fig09_block_size``, ``fig10_rate_control``, ``fig11_reordering``
(activity reordering), ``fig12_combined``, the Table 3 recommendation
sets, and one fault-injection scenario.  Any change to the simulator,
workload generation, scenario engine, recommender or apply pipeline that
shifts these numbers shows up as a diff against ``tests/golden/*.json``.

Regenerate deliberately after an intended behaviour change:

    PYTHONPATH=src python tests/test_golden_figures.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Fixed budget: large enough for the paper's shapes (collapse, rate
#: control) to manifest, small enough for the tier-1 time budget.
GOLDEN_TXS = 800

GOLDEN_EXPERIMENTS = [
    "fig07_endorser/endorsement_policy_p1",
    "fig07_endorser/endorsement_policy_p2_skew",
    "fig09_block_size/block_count_50",
    "fig09_block_size/send_rate_1000",
    "fig10_rate_control/num_orgs_4",
    "fig10_rate_control/send_rate_500",
    "fig11_reordering/workload_insert_heavy",
    "fig11_reordering/key_dist_skew_2",
    "fig12_combined/block_count_50",
    "fig12_combined/tx_dist_skew_70",
    # Table 3: pins the *recommendation sets* (rows carry the baseline).
    "table3/key_dist_skew_2",
    "table3/tx_dist_skew_70",
    "table3/workload_rangeread_heavy",
    # The scenario engine: crash + burst under the default workload.
    "scenario_faults/crash_burst",
    # The forensics showcase scenario (every abort cause in one run).
    "scenario_faults/partial_outage",
]

#: Experiment whose full baseline forensics report is pinned verbatim
#: (tests/golden/forensics__*.json): the abort-cause taxonomy, hot keys,
#: per-org breakdown, bucket series and timeline of the partial outage.
FORENSICS_GOLDEN = "scenario_faults/partial_outage"


def _golden_path(exp_id: str) -> Path:
    return GOLDEN_DIR / (exp_id.replace("/", "__") + ".json")


def _compute(exp_id: str) -> dict:
    from repro.bench.cache import outcome_to_dict
    from repro.bench.executor import run_spec
    from repro.bench.registry import get

    spec = get(exp_id).with_overrides(total_transactions=GOLDEN_TXS)
    data = outcome_to_dict(run_spec(spec))
    # The row goldens pin headline numbers only; the forensics report has
    # its own golden file (see FORENSICS_GOLDEN), so the row files stay
    # byte-identical across the forensics feature.
    data.pop("forensics", None)
    data["exp_id"] = exp_id
    data["total_transactions"] = GOLDEN_TXS
    data["seed"] = spec.seed
    return data


def _forensics_path(exp_id: str) -> Path:
    return GOLDEN_DIR / ("forensics__" + exp_id.replace("/", "__") + ".json")


def _compute_forensics(exp_id: str) -> dict:
    """The baseline run's forensics report for ``exp_id`` at GOLDEN_TXS."""
    from repro.analysis import forensics_report
    from repro.bench.harness import unpack_bundle
    from repro.bench.registry import get
    from repro.fabric.network import run_workload

    spec = get(exp_id).with_overrides(total_transactions=GOLDEN_TXS)
    config, family, requests, scenario = unpack_bundle(spec.make_bundle()())
    network, _ = run_workload(
        config, family.deploy().contracts, requests, scenario=scenario
    )
    return {
        "exp_id": exp_id,
        "total_transactions": GOLDEN_TXS,
        "seed": spec.seed,
        "report": forensics_report(network).to_dict(),
    }


def test_forensics_report_matches_golden():
    path = _forensics_path(FORENSICS_GOLDEN)
    assert path.is_file(), (
        f"missing golden forensics file {path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_figures.py --regenerate`"
    )
    golden = json.loads(path.read_text())
    measured = _compute_forensics(FORENSICS_GOLDEN)
    assert measured["report"] == golden["report"], (
        f"{FORENSICS_GOLDEN}: the forensics report drifted from "
        f"tests/golden — if the change is intended, regenerate"
    )
    # The acceptance bar: the pinned report attributes >= 4 abort causes.
    causes = [c for c, n in golden["report"]["cause_counts"].items() if n > 0]
    assert len(causes) >= 4


@pytest.mark.parametrize("exp_id", GOLDEN_EXPERIMENTS)
def test_headline_numbers_match_golden(exp_id):
    path = _golden_path(exp_id)
    assert path.is_file(), (
        f"missing golden file {path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_figures.py --regenerate`"
    )
    golden = json.loads(path.read_text())
    measured = _compute(exp_id)
    assert measured["rows"] == golden["rows"], (
        f"{exp_id}: headline numbers drifted from tests/golden — if the "
        f"change is intended, regenerate the golden files"
    )
    assert measured["recommendations"] == golden["recommendations"]


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for exp_id in GOLDEN_EXPERIMENTS:
        data = _compute(exp_id)
        path = _golden_path(exp_id)
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")
    data = _compute_forensics(FORENSICS_GOLDEN)
    path = _forensics_path(FORENSICS_GOLDEN)
    path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
