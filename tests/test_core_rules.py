"""Tests for the nine Table 1 recommendation rules."""

import pytest

from repro.core.recommendations import Level, OptimizationKind as K
from repro.core.rules import evaluate_rules
from repro.core.metrics import compute_metrics
from repro.core.thresholds import Thresholds
from repro.fabric.transaction import TxStatus

from tests.test_core_metrics import rec
from tests.test_logs import make_log


def kinds_of(recommendations):
    return {r.kind for r in recommendations}


def metrics_for(records, **kwargs):
    thresholds = Thresholds()
    return compute_metrics(
        make_log(records),
        interval_seconds=thresholds.interval_seconds,
        hotkey_failure_share=kwargs.pop("hotkey_failure_share", thresholds.hotkey_failure_share),
        hotkey_min_failures=kwargs.pop("hotkey_min_failures", thresholds.hotkey_min_failures),
    )


class TestActivityReordering:
    def _reorderable_records(self, n_fail=30, n_self=0):
        records = []
        order = 0
        for i in range(n_fail):
            records.append(rec(order, activity="update", reads=["k"], writes={"k": i}))
            order += 1
            records.append(
                rec(order, activity="read", reads=["k"], status=TxStatus.MVCC_CONFLICT)
            )
            order += 1
        for i in range(n_self):
            records.append(rec(order, activity="update", reads=["j"], writes={"j": i}))
            order += 1
            records.append(
                rec(
                    order,
                    activity="update",
                    reads=["j"],
                    writes={"j": -i},
                    status=TxStatus.MVCC_CONFLICT,
                )
            )
            order += 1
        return records

    def test_fires_when_share_above_threshold(self):
        metrics = metrics_for(self._reorderable_records())
        recs = evaluate_rules(metrics)
        assert K.ACTIVITY_REORDERING in kinds_of(recs)
        rec_ = next(r for r in recs if r.kind is K.ACTIVITY_REORDERING)
        assert "read" in rec_.actions["front"]

    def test_silent_when_mostly_self_dependent(self):
        metrics = metrics_for(self._reorderable_records(n_fail=5, n_self=30))
        recs = evaluate_rules(metrics)
        assert K.ACTIVITY_REORDERING not in kinds_of(recs)

    def test_silent_below_min_failures(self):
        metrics = metrics_for(self._reorderable_records(n_fail=5))
        recs = evaluate_rules(metrics)
        assert K.ACTIVITY_REORDERING not in kinds_of(recs)

    def test_culprit_activity_never_in_front(self):
        metrics = metrics_for(self._reorderable_records())
        rec_ = next(
            r for r in evaluate_rules(metrics) if r.kind is K.ACTIVITY_REORDERING
        )
        assert "update" not in rec_.actions["front"]

    def test_level_is_user(self):
        assert K.ACTIVITY_REORDERING.level is Level.USER


class TestPruning:
    def test_fires_on_minority_type(self):
        records = []
        # 20 normal updates, 6 anomalous read-only txs of the same activity.
        for i in range(20):
            records.append(rec(i, activity="ship", reads=["p"], writes={"p": i}))
        for i in range(20, 26):
            records.append(rec(i, activity="ship", reads=["p"]))
        metrics = metrics_for(records)
        recs = evaluate_rules(metrics)
        pruning = next(r for r in recs if r.kind is K.PROCESS_MODEL_PRUNING)
        assert pruning.actions["activities"] == ("ship",)

    def test_silent_below_min_anomalies(self):
        records = [rec(i, activity="ship", reads=["p"], writes={"p": i}) for i in range(20)]
        records.append(rec(20, activity="ship", reads=["p"]))
        metrics = metrics_for(records)
        assert K.PROCESS_MODEL_PRUNING not in kinds_of(evaluate_rules(metrics))

    def test_silent_when_minority_is_second_mode(self):
        # 50/50 split: two legitimate modes, not an anomaly.
        records = []
        for i in range(10):
            records.append(rec(2 * i, activity="x", reads=["p"], writes={"p": i}))
            records.append(rec(2 * i + 1, activity="x", reads=["p"]))
        metrics = metrics_for(records)
        assert K.PROCESS_MODEL_PRUNING not in kinds_of(evaluate_rules(metrics))


class TestRateControl:
    def _records(self, rate, failure_fraction):
        records = []
        n = int(rate)
        for i in range(n):
            status = TxStatus.MVCC_CONFLICT if i < n * failure_fraction else TxStatus.SUCCESS
            records.append(rec(i, status=status, ts=i / rate))
        return records

    def test_fires_on_hot_failing_interval(self):
        metrics = metrics_for(self._records(400, 0.5))
        recs = evaluate_rules(metrics)
        assert K.TRANSACTION_RATE_CONTROL in kinds_of(recs)

    def test_silent_at_low_rate(self):
        metrics = metrics_for(self._records(100, 0.9))
        assert K.TRANSACTION_RATE_CONTROL not in kinds_of(evaluate_rules(metrics))

    def test_silent_with_low_failures(self):
        metrics = metrics_for(self._records(400, 0.05))
        assert K.TRANSACTION_RATE_CONTROL not in kinds_of(evaluate_rules(metrics))

    def test_threshold_tunable(self):
        metrics = metrics_for(self._records(400, 0.2))
        lenient = Thresholds(failure_fraction=0.1)
        assert K.TRANSACTION_RATE_CONTROL in kinds_of(evaluate_rules(metrics, lenient))


class TestHotkeyRules:
    def _hot_records(self, activities, per_activity=30):
        records = []
        order = 0
        for _ in range(per_activity):
            for activity in activities:
                records.append(
                    rec(order, activity=activity, reads=["hot1"], status=TxStatus.MVCC_CONFLICT)
                )
                order += 1
                records.append(
                    rec(order, activity=activity, reads=["hot2"], status=TxStatus.MVCC_CONFLICT)
                )
                order += 1
        return records

    def test_partitioning_for_shared_hotkeys(self):
        metrics = metrics_for(self._hot_records(["play", "view"]))
        recs = kinds_of(evaluate_rules(metrics))
        assert K.SMART_CONTRACT_PARTITIONING in recs
        assert K.DATA_MODEL_ALTERATION not in recs

    def test_alteration_for_single_activity_hotkeys(self):
        metrics = metrics_for(self._hot_records(["vote"]))
        recs = kinds_of(evaluate_rules(metrics))
        assert K.DATA_MODEL_ALTERATION in recs
        assert K.SMART_CONTRACT_PARTITIONING not in recs

    def test_alteration_for_single_hotkey(self):
        records = []
        for i in range(60):
            records.append(
                rec(i, activity=f"act{i % 3}", reads=["only-hot"], status=TxStatus.MVCC_CONFLICT)
            )
        metrics = metrics_for(records)
        recs = kinds_of(evaluate_rules(metrics))
        assert K.DATA_MODEL_ALTERATION in recs
        assert K.SMART_CONTRACT_PARTITIONING not in recs

    def test_silent_without_hotkeys(self):
        records = [
            rec(i, reads=[f"k{i}"], status=TxStatus.MVCC_CONFLICT) for i in range(30)
        ]
        metrics = metrics_for(records)
        recs = kinds_of(evaluate_rules(metrics))
        assert K.SMART_CONTRACT_PARTITIONING not in recs
        assert K.DATA_MODEL_ALTERATION not in recs


class TestBlockSize:
    def _records(self, rate, block_size):
        records = []
        for i in range(600):
            records.append(rec(i, ts=i / rate, block=i // block_size))
        return records

    def test_fires_when_blocks_too_small(self):
        metrics = metrics_for(self._records(rate=300.0, block_size=50))
        recs = evaluate_rules(metrics)
        block_rec = next(r for r in recs if r.kind is K.BLOCK_SIZE_ADAPTATION)
        assert block_rec.actions["block_count"] == pytest.approx(300, rel=0.1)

    def test_silent_when_matched(self):
        metrics = metrics_for(self._records(rate=300.0, block_size=300))
        assert K.BLOCK_SIZE_ADAPTATION not in kinds_of(evaluate_rules(metrics))

    def test_fires_when_blocks_too_large(self):
        metrics = metrics_for(self._records(rate=50.0, block_size=300))
        assert K.BLOCK_SIZE_ADAPTATION in kinds_of(evaluate_rules(metrics))


class TestEndorserRestructuring:
    def _records(self, org1_share):
        records = []
        for i in range(100):
            endorser = "Org1-peer0" if i < org1_share * 100 else f"Org{2 + i % 3}-peer0"
            records.append(rec(i, endorser=endorser))
        return records

    def test_fair_share_mode_detects_imbalance(self):
        metrics = metrics_for(self._records(0.7))
        metrics.endorsement_policy = "OutOf(1,Org1,Org2,Org3,Org4)"
        recs = evaluate_rules(metrics)
        endorser = next(r for r in recs if r.kind is K.ENDORSER_RESTRUCTURING)
        assert "Org1" in endorser.evidence["bottleneck_orgs"]
        assert endorser.actions["policy"].startswith("OutOf(1,")

    def test_balanced_load_silent(self):
        records = [rec(i, endorser=f"Org{1 + i % 4}-peer0") for i in range(100)]
        metrics = metrics_for(records)
        metrics.endorsement_policy = "OutOf(1,Org1,Org2,Org3,Org4)"
        assert K.ENDORSER_RESTRUCTURING not in kinds_of(evaluate_rules(metrics))

    def test_absolute_mode_follows_table1(self):
        metrics = metrics_for(self._records(0.4))
        metrics.endorsement_policy = "OutOf(1,Org1,Org2,Org3,Org4)"
        absolute = Thresholds(endorser_mode="absolute", endorser_share=0.5)
        assert K.ENDORSER_RESTRUCTURING not in kinds_of(evaluate_rules(metrics, absolute))
        strict = Thresholds(endorser_mode="absolute", endorser_share=0.3)
        assert K.ENDORSER_RESTRUCTURING in kinds_of(evaluate_rules(metrics, strict))


class TestClientBoost:
    def test_fires_above_invoker_share(self):
        records = [
            rec(i, invoker_org="Org1" if i < 70 else "Org2") for i in range(100)
        ]
        metrics = metrics_for(records)
        recs = evaluate_rules(metrics)
        boost = next(r for r in recs if r.kind is K.CLIENT_RESOURCE_BOOST)
        assert boost.actions["orgs"] == ("Org1",)
        assert boost.actions["scale_factor"] == 2

    def test_silent_when_balanced(self):
        records = [rec(i, invoker_org=f"Org{1 + i % 2}") for i in range(100)]
        metrics = metrics_for(records)
        assert K.CLIENT_RESOURCE_BOOST not in kinds_of(evaluate_rules(metrics))


class TestThresholdsValidation:
    def test_defaults_match_paper(self):
        t = Thresholds()
        assert t.rate_high == 300.0
        assert t.failure_fraction == 0.3
        assert t.block_tolerance == 0.6
        assert t.endorser_share == 0.5
        assert t.invoker_share == 0.5
        assert t.reorderable_mvcc_share == 0.4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_seconds": 0.0},
            {"failure_fraction": 1.5},
            {"block_tolerance": -0.1},
            {"endorser_mode": "nope"},
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Thresholds(**kwargs)


def test_levels_cover_figure1():
    user = {K.ACTIVITY_REORDERING, K.PROCESS_MODEL_PRUNING, K.TRANSACTION_RATE_CONTROL}
    data = {K.DELTA_WRITES, K.SMART_CONTRACT_PARTITIONING, K.DATA_MODEL_ALTERATION}
    system = {K.BLOCK_SIZE_ADAPTATION, K.ENDORSER_RESTRUCTURING, K.CLIENT_RESOURCE_BOOST}
    assert all(k.level is Level.USER for k in user)
    assert all(k.level is Level.DATA for k in data)
    assert all(k.level is Level.SYSTEM for k in system)
    assert len(user | data | system) == 9
