#!/usr/bin/env python
"""Relative-link checker for the Markdown docs, dependency-free.

Scans README.md and every ``docs/*.md`` file for Markdown links and
images (inline ``[text](target)`` form) and verifies that every
*relative* target resolves:

* a path target must exist on disk, relative to the file containing it;
* an anchor (``file.md#section`` or a same-file ``#section``) must match
  a heading in the target file, using GitHub's slug rules (lowercase,
  spaces to hyphens, punctuation dropped, ``-N`` suffixes for duplicate
  headings).

External schemes (``http://``, ``https://``, ``mailto:``) are skipped —
CI must not depend on the network.

Usage::

    python scripts/check_doc_links.py            # check the default scope
    python scripts/check_doc_links.py FILE ...   # check specific files

Exit status 0 when every link resolves, 1 with one
``path:line: broken link`` line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links/images: ``[text](target)`` / ``![alt](target)``; targets
#: with spaces or nested parens are not used in this repo's docs.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings (``# Title`` ... ``###### Title``).
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Fenced code block delimiter (links inside fences are not links).
_FENCE_RE = re.compile(r"^\s*(```|~~~)")

_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def default_scope() -> list[Path]:
    """README.md plus every Markdown file under docs/."""
    paths = [REPO_ROOT / "README.md"]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in paths if path.is_file()]


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor slug for a heading text.

    Inline markup is stripped, the text is lowercased, punctuation other
    than hyphens/underscores is dropped, spaces become hyphens, and a
    ``-N`` suffix disambiguates repeated headings.
    """
    text = re.sub(r"[`*_]", "", heading)
    # Drop link syntax but keep the link text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


@lru_cache(maxsize=256)
def heading_anchors(path: Path) -> frozenset[str]:
    """All anchor slugs a Markdown file exposes (cached per file)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return frozenset(anchors)


def check_file(path: Path) -> list[str]:
    """All broken relative links in ``path``, as human-readable lines."""
    violations: list[str] = []
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_SCHEMES):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    violations.append(
                        f"{rel}:{lineno}: broken link {target!r} "
                        f"(no such file {file_part!r})"
                    )
                    continue
            else:
                resolved = path
            if anchor:
                if resolved.suffix.lower() != ".md" or resolved.is_dir():
                    continue  # anchors into non-Markdown targets: no check
                if anchor not in heading_anchors(resolved):
                    violations.append(
                        f"{rel}:{lineno}: broken anchor {target!r} "
                        f"(no heading #{anchor} in {resolved.name})"
                    )
    return violations


def main(argv: list[str]) -> int:
    """Check the given files (or the default scope); print violations."""
    paths = [Path(arg) for arg in argv] if argv else default_scope()
    missing = [path for path in paths if not path.is_file()]
    if missing:
        for path in missing:
            print(f"error: no such file {path}", file=sys.stderr)
        return 2
    violations: list[str] = []
    for path in paths:
        violations.extend(check_file(path))
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} broken link(s)", file=sys.stderr)
        return 1
    print(f"links ok across {len(paths)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
