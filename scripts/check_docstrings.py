#!/usr/bin/env python
"""Docstring presence check (pydocstyle D1-style), dependency-free.

The container has no ``pydocstyle``/``ruff``, so this small AST walker
enforces the documentation contract CI cares about: every scoped module
has a module docstring, and every *public* class, function and method in
the scoped files carries one.  Public means the name does not start with
an underscore; nested (function-local) definitions are skipped, as are
dunders other than ``__init__``-free classes (dunders document themselves
through the data model).

Scope: all ``repro.*`` package ``__init__.py`` files plus the public-API
modules the documentation contract names — the simulation kernel, the
suite executor, the scenario engine, the whole ``repro.bench.perf``
package, the whole ``repro.analysis`` and ``repro.control`` packages, and
every public module of ``repro.fabric``.

Usage::

    python scripts/check_docstrings.py            # check the default scope
    python scripts/check_docstrings.py FILE ...   # check specific files

Exit status 0 when clean, 1 with one ``path:line: code symbol`` line per
violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: Modules whose full public API must be documented.  The ``repro.fabric``,
#: ``repro.analysis`` and ``repro.control`` packages are scoped wholesale
#: (every non-dunder module), so new modules join the contract
#: automatically.
DEFAULT_SCOPE = [
    SRC / "sim" / "kernel.py",
    SRC / "bench" / "executor.py",
    SRC / "scenario" / "engine.py",
    SRC / "scenario" / "fuzz.py",
    SRC / "bench" / "perf" / "__init__.py",
    SRC / "bench" / "perf" / "benchmarks.py",
    SRC / "bench" / "perf" / "runner.py",
    SRC / "bench" / "perf" / "compare.py",
]


def package_modules(package: Path) -> list[Path]:
    """Every public module of ``package`` (``__init__`` is covered by
    :func:`package_inits`)."""
    return sorted(
        path for path in package.glob("*.py") if path.name != "__init__.py"
    )


def package_inits() -> list[Path]:
    """Every ``__init__.py`` under ``src/repro`` (package docstring scope)."""
    return sorted(SRC.rglob("__init__.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def check_file(path: Path) -> list[str]:
    """All violations in ``path`` as ``path:line: code symbol`` strings."""
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: list[str] = []
    if ast.get_docstring(tree) is None:
        violations.append(f"{rel}:1: D100 missing module docstring")

    def walk(node: ast.AST, inside_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    violations.append(
                        f"{rel}:{child.lineno}: D101 missing docstring on class "
                        f"{child.name}"
                    )
                walk(child, inside_class=True)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    kind = "method" if inside_class else "function"
                    code = "D102" if inside_class else "D103"
                    violations.append(
                        f"{rel}:{child.lineno}: {code} missing docstring on "
                        f"{kind} {child.name}"
                    )
                # Function-local definitions are implementation detail.
            else:
                # Recurse through compound statements (if/try/with/for) so
                # defs guarded by e.g. ``if TYPE_CHECKING:`` or a fallback
                # import are still checked, as pydocstyle would.
                walk(child, inside_class=inside_class)

    walk(tree, inside_class=False)
    return violations


def main(argv: list[str]) -> int:
    """Check the given files (or the default scope); print violations."""
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = (
            package_inits()
            + DEFAULT_SCOPE
            + package_modules(SRC / "fabric")
            + package_modules(SRC / "analysis")
            + package_modules(SRC / "control")
        )
    missing = [path for path in paths if not path.is_file()]
    if missing:
        for path in missing:
            print(f"error: no such file {path}", file=sys.stderr)
        return 2
    violations: list[str] = []
    for path in paths:
        violations.extend(check_file(path))
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} docstring violation(s)", file=sys.stderr)
        return 1
    print(f"docstrings ok across {len(paths)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
