"""End-to-end walkthrough: author a scenario, run the suite, read the perf report.

This is the runnable companion to ``docs/WALKTHROUGH.md``.  It goes
through the whole loop a contributor touches:

1. author a :class:`~repro.scenario.spec.ScenarioSpec` in code (and show
   its JSON form, which ``python -m repro scenario --spec`` accepts);
2. run the same workload steady-state and under the scenario, comparing
   headline numbers;
3. run a registry experiment through the cached suite executor twice,
   showing the warm re-run costs zero simulation runs;
4. run two perf microbenchmarks, write ``BENCH_perf.json``, and ratchet
   the fresh numbers against it.

Run with:  PYTHONPATH=src python examples/perf_walkthrough.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bench.cache import ResultCache
from repro.bench.executor import run_suite
from repro.bench.experiments import make_synthetic
from repro.bench.perf import (
    compare_reports,
    format_comparison,
    report_from_json,
    report_to_json,
    run_benchmarks,
)
from repro.bench.registry import select
from repro.fabric.network import run_workload
from repro.scenario import ScenarioSpec, run_scenario
from repro.scenario.spec import Intervention

TXS = 800
BENCHMARKS = ["kernel_event_churn", "metrics_accumulation"]


def step_1_author_scenario() -> ScenarioSpec:
    """A mid-run endorser brownout followed by an arrival burst."""
    scenario = ScenarioSpec(
        name="walkthrough_brownout",
        description="Org1 endorsers slow 6x mid-run, then a 2x arrival burst",
        interventions=(
            Intervention(
                kind="endorser_slowdown", at=1.5, duration=4.0, target="Org1", factor=6.0
            ),
            Intervention(kind="burst_arrivals", at=3.0, duration=2.5, factor=2.0),
        ),
    )
    print("=== 1. authored scenario (JSON, usable with `repro scenario --spec`) ===")
    print(scenario.to_json())
    return scenario


def step_2_run_scenario(scenario: ScenarioSpec) -> None:
    """Steady-state vs under-scenario headline numbers."""
    print("\n=== 2. steady-state vs under scenario ===")
    config, family, requests = make_synthetic(
        "default", seed=7, total_transactions=TXS
    )()
    deployment = family.deploy()
    _, steady = run_workload(config, deployment.contracts, requests)

    config, family, requests = make_synthetic(
        "default", seed=7, total_transactions=TXS
    )()
    deployment = family.deploy()
    network, faulted = run_scenario(scenario, config, deployment.contracts, requests)

    print(f"{'run':<16}{'tput(tps)':>10}{'lat(s)':>8}{'success%':>10}")
    for label, result in (("steady-state", steady), ("under scenario", faulted)):
        row = result.summary_row()
        print(
            f"{label:<16}{row['success_throughput_tps']:>10}"
            f"{row['avg_latency_s']:>8}{row['success_rate_pct']:>10}"
        )
    print("applied timeline:")
    for at, kind, detail in sorted(network.scenario_engine.timeline):
        print(f"  {at:8.3f}s  {kind:<24} {detail}")


def step_3_suite_with_cache(cache_dir: Path) -> None:
    """One registry experiment, cold then warm (cached) execution."""
    print("\n=== 3. suite executor + result cache ===")
    specs = [
        spec.with_overrides(total_transactions=TXS)
        for spec in select(["scenario_faults/crash_burst"])
    ]
    cache = ResultCache(cache_dir)
    cold = run_suite(specs, jobs=1, cache=cache)
    print(f"cold: {cold.summary()}")
    warm = run_suite(specs, jobs=1, cache=cache)
    print(f"warm: {warm.summary()}")
    assert warm.simulated_runs == 0, "warm cache must not simulate"
    for outcome in warm.outcomes:
        for row in outcome.rows:
            print(
                f"  {row.label:<24} tput={row.throughput:<7} "
                f"lat={row.latency:<6} success={row.success_pct}%"
            )


def step_4_perf_ratchet(baseline_path: Path) -> None:
    """Record a perf baseline, then compare a fresh run against it."""
    print("\n=== 4. perf baseline + ratchet ===")
    report = run_benchmarks(BENCHMARKS, warmup=1, trials=3, progress=print)
    baseline_path.write_text(report_to_json(report))
    print(f"wrote {baseline_path}")

    fresh = run_benchmarks(BENCHMARKS, warmup=1, trials=3)
    baseline = report_from_json(baseline_path.read_text())
    print(format_comparison(compare_reports(baseline, fresh)))
    print("(exit-1-on-regression form: python -m repro perf --compare BENCH_perf.json)")


def main() -> None:
    """Run all four walkthrough steps in a temporary working directory."""
    scenario = step_1_author_scenario()
    step_2_run_scenario(scenario)
    with tempfile.TemporaryDirectory(prefix="repro-walkthrough-") as tmp:
        step_3_suite_with_cache(Path(tmp) / "cache")
        step_4_perf_ratchet(Path(tmp) / "BENCH_perf.json")
    print("\nwalkthrough complete.")


if __name__ == "__main__":
    main()
