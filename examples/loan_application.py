"""Loan application process: replaying a real-world-shaped event log.

Reproduces the paper's LAP experiment (Figure 17): a BPI-2017-shaped loan
event log is replayed as blockchain transactions, the first-cut contract
keys everything by employeeID, and BlockOptR pinpoints employee 1's key as
the single hotkey — recommending a data model alteration that re-keys by
applicationID.

    python examples/loan_application.py
"""

from repro import BlockOptR, run_workload
from repro.contracts import loan_family
from repro.core import OptimizationKind as K, apply_recommendations, render_report
from repro.workloads import generate_loan_event_log, loan_workload
from repro.workloads.usecases import UseCaseSpec


def main() -> None:
    events = generate_loan_event_log(num_applications=400, seed=7)
    print(f"synthesized loan event log: {len(events)} events, "
          f"{len({e.application_id for e in events})} applications")

    config, deployment, requests = loan_workload(
        UseCaseSpec(seed=7), events=events, send_rate=10.0
    )
    network, baseline = run_workload(config, deployment.contracts, requests)
    print(f"baseline (employee-keyed): {baseline}\n")

    report = BlockOptR().analyze_network(network)
    print(render_report(report, include_model=False))
    print()

    applied = apply_recommendations(
        [report.get(K.DATA_MODEL_ALTERATION)], config, loan_family(), requests
    )
    _, altered = run_workload(
        applied.config, applied.deployment.contracts, applied.requests
    )
    print(f"altered (application-keyed): {altered}")

    # The derived process model still shows the loan flow.
    print("\nmined loan process (most frequent path):")
    print("  " + " -> ".join(report.dfg.most_frequent_path()))


if __name__ == "__main__":
    main()
