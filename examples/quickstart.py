"""Quickstart: simulate a workload, get recommendations, apply, re-run.

Runs the paper's synthetic genChain workload at 300 TPS on a simulated
2-org Fabric network, analyzes the ledger with BlockOptR, prints the
recommendation report, applies everything that was recommended, and shows
the before/after numbers.

    python examples/quickstart.py
"""

from repro import BlockOptR, run_workload
from repro.contracts import genchain_family
from repro.core import apply_recommendations, render_report
from repro.workloads import ControlVariables, synthetic_workload


def main() -> None:
    # 1. Describe the experiment with the paper's Table 2 control variables.
    spec = ControlVariables(total_transactions=3000, send_rate=300.0, seed=7)
    config, deployment, requests = synthetic_workload(spec)

    # 2. Execute the workload on a fresh simulated Fabric network.
    network, baseline = run_workload(config, deployment.contracts, requests)
    print(f"baseline: {baseline}\n")

    # 3. BlockOptR reads the ledger and derives recommendations (Figure 5).
    report = BlockOptR().analyze_network(network)
    print(render_report(report))
    print()

    # 4. Apply the recommended optimizations (Table 4 settings) and re-run.
    family = genchain_family(num_keys=spec.num_keys)
    applied = apply_recommendations(report.recommendations, config, family, requests)
    _, optimized = run_workload(
        applied.config, applied.deployment.contracts, applied.requests
    )
    print(f"applied: {[kind.value for kind in applied.applied]}")
    print(f"optimized: {optimized}")
    improvement = (optimized.success_rate - baseline.success_rate) * 100
    print(f"success rate: {baseline.success_rate:.1%} -> "
          f"{optimized.success_rate:.1%} ({improvement:+.1f} points)")


if __name__ == "__main__":
    main()
