"""Self-adaptive feedback loop (the paper's future-work extension).

Runs the EHR workload through iterated analyze -> approve -> apply ->
re-run cycles, once with every recommendation auto-approved and once with
an enterprise approval policy that vetoes governance-level changes
(process redesigns, endorsement policies) — reproducing the paper's point
that many optimizations "cannot be automatically applied".

    python examples/feedback_loop.py
"""

from repro.contracts import ehr_family
from repro.core import FeedbackLoop, technical_only
from repro.workloads import ehr_workload
from repro.workloads.usecases import UseCaseSpec


def show(outcome, title: str) -> None:
    print(title)
    for round_ in outcome.rounds:
        applied = ", ".join(k.value for k in round_.applied) or "-"
        vetoed = ", ".join(k.value for k in round_.vetoed) or "-"
        print(
            f"  round {round_.iteration}: success {round_.success_rate:.1%} "
            f"lat {round_.result.avg_latency:.2f}s | applied: {applied} | vetoed: {vetoed}"
        )
    print(f"  converged: {outcome.converged}; "
          f"total gain: {outcome.improvement():+.1f} points\n")


def main() -> None:
    spec = UseCaseSpec(total_transactions=2500, seed=7)
    config, _, requests = ehr_workload(spec)

    loop = FeedbackLoop(ehr_family(), max_iterations=4)
    show(loop.run(config, requests), "auto-approved feedback loop:")

    config2, _, requests2 = ehr_workload(spec)
    constrained = FeedbackLoop(ehr_family(), approval=technical_only, max_iterations=4)
    show(
        constrained.run(config2, requests2),
        "enterprise loop (governance changes vetoed):",
    )


if __name__ == "__main__":
    main()
