"""Digital rights management: hotkeys, delta writes, contract partitioning.

Reproduces the paper's DRM experiment (Figure 14): a Play-heavy workload
hammers per-track records, BlockOptR detects the hot music keys shared by
several functions, and two data-level redesigns fix it in different ways —
delta writes (blind writes to unique keys, aggregation in calcRevenue) and
smart contract partitioning (separate play-count and metadata world
states).

    python examples/drm_partitioning.py
"""

from repro import BlockOptR, run_workload
from repro.contracts import drm_family
from repro.core import OptimizationKind as K, apply_recommendations
from repro.workloads import drm_workload
from repro.workloads.usecases import UseCaseSpec


def main() -> None:
    spec = UseCaseSpec(total_transactions=3000, seed=7)
    config, deployment, requests = drm_workload(spec)
    network, baseline = run_workload(config, deployment.contracts, requests)
    print(f"baseline: {baseline}\n")

    report = BlockOptR().analyze_network(network)
    metrics = report.metrics
    print(f"hotkeys detected: {metrics.hotkeys}")
    for key in metrics.hotkeys[:2]:
        activities = sorted(metrics.key_failed_activities.get(key, ()))
        print(f"  {key}: failing activities {activities} "
              f"({metrics.kfreq[key]} failed accesses)")
    print()

    family = drm_family()

    # Delta writes: play becomes a blind write; calcRevenue aggregates.
    delta = apply_recommendations([report.get(K.DELTA_WRITES)], config, family, requests)
    _, delta_result = run_workload(delta.config, delta.deployment.contracts, delta.requests)
    print(f"delta writes:  {delta_result}")
    print("  note the higher latency — calcRevenue now aggregates the delta "
          "keys, as the paper observes.\n")

    # Partitioning: two contracts, two world states.
    partition = apply_recommendations(
        [report.get(K.SMART_CONTRACT_PARTITIONING)], config, family, requests
    )
    names = [contract.name for contract in partition.deployment.contracts]
    _, partition_result = run_workload(
        partition.config, partition.deployment.contracts, partition.requests
    )
    print(f"partitioning:  {partition_result}")
    print(f"  deployed contracts: {names}; metadata reads no longer conflict "
          "with play-count updates.")


if __name__ == "__main__":
    main()
