"""Digital voting: single-activity hotkeys and data model alteration.

Reproduces the paper's DV experiment (Figure 16): a voting burst at 300
TPS makes every ``party:<id>`` tally a hot key that only ``vote`` touches.
BlockOptR recommends *data model alteration*; re-keying votes by voterID
removes all transaction dependencies — success jumps to ~100%.

    python examples/voting_hotkey.py
"""

from repro import BlockOptR, run_workload
from repro.contracts import voting_family
from repro.core import OptimizationKind as K, apply_recommendations
from repro.workloads import voting_workload
from repro.workloads.usecases import UseCaseSpec


def main() -> None:
    config, deployment, requests = voting_workload(
        UseCaseSpec(seed=7), query_count=400, vote_count=2000
    )
    network, baseline = run_workload(config, deployment.contracts, requests)
    print(f"baseline (party-keyed votes): {baseline}")

    report = BlockOptR().analyze_network(network)
    print(f"hotkeys: {report.metrics.hotkeys}")
    alteration = report.get(K.DATA_MODEL_ALTERATION)
    print(f"recommendation: {alteration.describe()}\n")

    applied = apply_recommendations([alteration], config, voting_family(), requests)
    network2, altered = run_workload(
        applied.config, applied.deployment.contracts, applied.requests
    )
    print(f"altered (voter-keyed votes):  {altered}")

    # The election result is identical either way — the data model changed,
    # not the semantics.
    state = network2.state_db.namespace("voting")
    tallies = {}
    for key in state.keys():
        if key.startswith("voter:"):
            choice = state.get(key).value
            tallies[choice] = tallies.get(choice, 0) + 1
    print(f"final tallies from voter records: {dict(sorted(tallies.items()))}")


if __name__ == "__main__":
    main()
