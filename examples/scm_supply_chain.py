"""Supply chain management: process mining + pruning + reordering.

Reproduces the paper's running example (Sections 3 and 6.2): a product
lifecycle (pushASN -> ship -> queryASN -> unload) with manual errors and
randomly-timed side activities.  Shows how BlockOptR

1. derives the Figure 2 process model from the blockchain log,
2. detects the illogical paths (pruning) and the reorderable activities,
3. and how the redesigned runs behave (Figures 4 and 13).

    python examples/scm_supply_chain.py
"""

from repro import BlockOptR, run_workload
from repro.contracts import scm_family
from repro.core import OptimizationKind as K, apply_recommendations
from repro.mining import model_diff
from repro.workloads import scm_workload
from repro.workloads.usecases import UseCaseSpec


def main() -> None:
    spec = UseCaseSpec(total_transactions=3000, seed=7)
    config, deployment, requests = scm_workload(spec)
    network, baseline = run_workload(config, deployment.contracts, requests)
    print(f"baseline: {baseline}\n")

    report = BlockOptR().analyze_network(network)

    # Figure 2: the process model mined from the ledger.
    print("derived process model (Figure 2), most frequent path:")
    print("  " + " -> ".join(report.dfg.most_frequent_path()))
    print(f"case attribute: {report.event_log.derivation.attribute} "
          f"({report.event_log.derivation.distinct_values} products)\n")

    print("recommendations:")
    for rec in report.recommendations:
        print(f"  {rec.describe()}")
    print()

    family = scm_family()

    # Pruning: the smart contract aborts illogical transitions at endorsement.
    pruned = apply_recommendations(
        [report.get(K.PROCESS_MODEL_PRUNING)], config, family, requests
    )
    _, pruned_result = run_workload(
        pruned.config, pruned.deployment.contracts, pruned.requests
    )
    print(f"with pruning:    {pruned_result} "
          f"({pruned_result.early_aborts} anomalous txs aborted early)")

    # Reordering: the conflicting side activities move out of the main flow.
    reordered = apply_recommendations(
        [report.get(K.ACTIVITY_REORDERING)], config, family, requests
    )
    network2, reordered_result = run_workload(
        reordered.config, reordered.deployment.contracts, reordered.requests
    )
    print(f"with reordering: {reordered_result}")

    # Figure 4: the new log confirms adherence to the redesigned model.
    after = BlockOptR().analyze_network(network2)
    diff = model_diff(report.footprint, after.footprint)
    print(f"\nprocess model changed: {len(diff.changed_relations)} relation(s) "
          f"differ; footprint conformance {diff.conformance:.2f}")
    moved = report.get(K.ACTIVITY_REORDERING).actions["front"]
    print(f"activities moved out of the main flow: {', '.join(moved)}")


if __name__ == "__main__":
    main()
