"""Legacy setup shim.

The execution environment is offline and lacks the `wheel` package, so
pip's PEP 660 editable path (`bdist_wheel`) is unavailable; this shim lets
`pip install -e .` fall back to `setup.py develop`.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
