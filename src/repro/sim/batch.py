"""The batch execution tier: array-staged event draining.

The reference :class:`~repro.sim.kernel.Kernel` pays one ``heappush`` +
one ``heappop`` per event.  Profiling the experiment pipeline shows a
large share of those events is known *before the clock starts*: batch
runs pre-schedule every workload arrival, and the perf registry's
``kernel_event_churn`` shape (schedule everything, then drain) is
exactly how the orderer timeout and arrival machinery behave.

:class:`BatchKernel` exploits that. Events scheduled while the kernel is
idle are *staged* in a plain list instead of the heap; at
:meth:`BatchKernel.run` time one ``numpy.lexsort`` over the staged
``(time, priority, seq)`` columns produces the exact heap-pop order (the
sort key is unique — ``seq`` is a per-kernel counter — so stable lexsort
and repeated ``heappop`` agree element for element).  The drain loop
then walks the sorted cohort with a plain cursor, falling back to a real
heap only for events scheduled *during* the run, and merges the two
sources by the same three-column key.  The observable behaviour —
``now``, ``events_processed``, ``pending()``, trace entries, callback
order, ``until``/``max_events`` semantics — is bit-identical to the
reference kernel; ``tests/test_batch_equivalence.py`` and the fuzzer's
``batch_equivalence`` oracle enforce that, and every golden digest must
hold under either tier.

Tier selection is config-first, environment-second:
``NetworkConfig.kernel_tier`` wins when set, otherwise the
``REPRO_KERNEL`` environment variable, otherwise the reference tier —
so ``REPRO_KERNEL=batch pytest`` flips an entire test run without
touching a single config.
"""

from __future__ import annotations

import os
from heapq import heappop
from typing import Callable

import numpy as np

from repro.sim.kernel import KERNEL_TIERS, Event, Kernel

#: Environment variable consulted when ``NetworkConfig.kernel_tier`` is unset.
KERNEL_ENV = "REPRO_KERNEL"


def resolve_kernel_tier(configured: str | None = None) -> str:
    """The effective kernel tier: config beats environment beats default."""
    tier = configured if configured is not None else os.environ.get(KERNEL_ENV)
    if tier is None:
        return "reference"
    if tier not in KERNEL_TIERS:
        source = "kernel_tier" if configured is not None else KERNEL_ENV
        raise ValueError(
            f"unknown kernel tier {tier!r} (from {source}); "
            f"known: {', '.join(KERNEL_TIERS)}"
        )
    return tier


def make_kernel(tier: str) -> Kernel:
    """Construct the kernel implementing ``tier`` (already resolved)."""
    if tier == "batch":
        return BatchKernel()
    if tier == "reference":
        return Kernel()
    raise ValueError(f"unknown kernel tier {tier!r}; known: {', '.join(KERNEL_TIERS)}")


class BatchKernel(Kernel):
    """Drop-in :class:`~repro.sim.kernel.Kernel` with array-staged draining.

    Scheduling while idle appends the :class:`~repro.sim.kernel.Event`
    to a staging list; one ``numpy.lexsort`` at :meth:`run` entry
    replaces per-event heap maintenance.  Events scheduled mid-run take
    the inherited heap path, and the drain merges both sources in exact
    ``(time, priority, seq)`` order, so results are bit-identical to the
    reference kernel.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Events scheduled while idle, in insertion order (sorted at run).
        self._staged: list[Event] = []
        #: True while :meth:`run` is draining (mid-run schedules go to the heap).
        self._running = False

    def schedule(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` at absolute time ``time`` (staged while idle)."""
        if self._running:
            return super().schedule(time, action, priority)
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.6f} before now={self._now:.6f}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, action, self)
        self._staged.append(event)
        self._live += 1
        return event

    def _sorted_stage(self) -> tuple[list[Event], list[float]]:
        """The staged events in exact fire order, plus their times.

        ``lexsort`` keys are (time, priority, seq) with ``seq`` unique, so
        the stable sort reproduces heap-pop order exactly.  ``tolist()``
        converts the time column back to native floats once, keeping the
        drain loop free of numpy scalar overhead; priority and seq are
        read off the events themselves on the rare paths that need them
        (time-tie merges against the heap, tracing).
        """
        staged = self._staged
        count = len(staged)
        times = np.fromiter(
            (event.time for event in staged), dtype=np.float64, count=count
        )
        priorities = np.fromiter(
            (event.priority for event in staged), dtype=np.int64, count=count
        )
        seqs = np.fromiter(
            (event.seq for event in staged), dtype=np.int64, count=count
        )
        order = np.lexsort((seqs, priorities, times))
        return [staged[index] for index in order.tolist()], times[order].tolist()

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain staged events and the heap in exact reference order."""
        events, times = self._sorted_stage()
        self._staged = []
        self._running = True
        cursor = 0
        count = len(events)
        heap = self._heap
        pop = heappop
        try:
            if until is None and max_events is None:
                # Fast variant of the general merge below for the dominant
                # ``kernel.run()`` call shape: no bound checks inside the
                # loop, and the staged branch touches only the event list
                # and the time column.
                while True:
                    if heap:
                        time, priority, seq, event = heap[0]
                        if cursor < count:
                            stime = times[cursor]
                            staged_event = events[cursor]
                            if time > stime or (
                                time == stime
                                and (priority, seq)
                                > (staged_event.priority, staged_event.seq)
                            ):
                                event = staged_event
                                time = stime
                                cursor += 1
                            else:
                                pop(heap)
                        else:
                            pop(heap)
                    elif cursor < count:
                        event = events[cursor]
                        time = times[cursor]
                        cursor += 1
                    else:
                        break
                    event.popped = True
                    if event.cancelled:
                        # Its cancel() already removed it from the live count.
                        continue
                    self._live -= 1
                    self._now = time
                    self._processed += 1
                    if self._trace is not None:
                        self._trace.append((time, event.priority, event.seq))
                    event.action()
                return

            while True:
                staged_next = cursor < count
                if heap:
                    time, priority, seq, event = heap[0]
                    from_heap = True
                    if staged_next:
                        stime = times[cursor]
                        staged_event = events[cursor]
                        if time > stime or (
                            time == stime
                            and (priority, seq)
                            > (staged_event.priority, staged_event.seq)
                        ):
                            from_heap = False
                elif staged_next:
                    from_heap = False
                else:
                    break

                if not from_heap:
                    event = events[cursor]
                    time = times[cursor]
                    priority = event.priority
                    seq = event.seq

                if max_events is not None and self._processed >= max_events:
                    return
                if until is not None and time > until:
                    self._now = until
                    return
                if from_heap:
                    pop(heap)
                else:
                    cursor += 1
                event.popped = True
                if event.cancelled:
                    continue
                self._live -= 1
                self._now = time
                self._processed += 1
                if self._trace is not None:
                    self._trace.append((time, priority, seq))
                event.action()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            if cursor < count:
                # A paused run (`until`/`max_events`) leaves its undrained
                # tail staged; the next run re-sorts it together with any
                # newly staged events.
                self._staged = events[cursor:] + self._staged
