"""FIFO service stations.

Every pipeline stage of the simulated Fabric network (client, endorsing
peer, ordering service, validation pipeline) is a :class:`Server`: jobs
arrive, wait in FIFO order, occupy the server for a service time, and a
completion callback fires.  The server keeps busy-time and queue-wait
statistics so experiments can report utilization and locate bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import Kernel


@dataclass(slots=True)
class ServerStats:
    """Aggregate counters for one :class:`Server`."""

    jobs: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    max_queue: int = 0

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` the server spent serving jobs."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    @property
    def mean_wait(self) -> float:
        """Average queue wait per job in seconds."""
        return self.total_wait / self.jobs if self.jobs else 0.0


class Server:
    """A single FIFO server bound to a :class:`Kernel`.

    ``submit`` enqueues a job; when the job *starts* service the optional
    ``on_start`` callback fires (used to snapshot world state at execution
    time), and when it *completes* the ``on_done`` callback fires.

    Two dynamic control knobs back the scenario engine's interventions
    (:mod:`repro.scenario`): ``enabled`` (a crashed component stops
    accepting new work; queued jobs drain) and ``service_multiplier``
    (a degraded component serves every *subsequent* job slower — jobs
    already queued keep the service time they were admitted with).
    """

    __slots__ = (
        "kernel",
        "name",
        "stats",
        "_busy_until",
        "_queue_len",
        "enabled",
        "_service_multiplier",
    )

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.stats = ServerStats()
        self._busy_until = 0.0
        self._queue_len = 0
        self.enabled = True
        self._service_multiplier = 1.0

    @property
    def busy_until(self) -> float:
        """Earliest simulated time at which the server becomes idle."""
        return self._busy_until

    @property
    def service_multiplier(self) -> float:
        """Current service-time inflation factor (1.0 = nominal speed)."""
        return self._service_multiplier

    def set_service_multiplier(self, factor: float) -> None:
        """Inflate (or restore) the service time of subsequent jobs."""
        if factor <= 0:
            raise ValueError(f"service multiplier must be positive, got {factor!r}")
        self._service_multiplier = factor

    def queue_delay(self) -> float:
        """Wait a job submitted right now would incur before starting."""
        return max(0.0, self._busy_until - self.kernel.now)

    def submit(
        self,
        service_time: float,
        on_done: Callable[[float], None],
        on_start: Callable[[float], None] | None = None,
    ) -> float:
        """Enqueue a job; returns the completion time.

        Callbacks receive the simulated time at which they fire.  FIFO order
        is guaranteed because ``_busy_until`` advances monotonically with
        each submission.
        """
        if service_time < 0:
            raise ValueError(f"negative service time {service_time!r}")
        service_time *= self._service_multiplier
        now = self.kernel.now
        start = max(now, self._busy_until)
        finish = start + service_time
        self._busy_until = finish

        self.stats.jobs += 1
        self.stats.busy_time += service_time
        self.stats.total_wait += start - now
        self._queue_len += 1
        self.stats.max_queue = max(self.stats.max_queue, self._queue_len)

        if on_start is not None:
            self.kernel.schedule(start, lambda: on_start(start))

        def _complete() -> None:
            self._queue_len -= 1
            on_done(finish)

        self.kernel.schedule(finish, _complete)
        return finish
