"""Event heap and simulated clock.

The kernel is deliberately minimal: callers schedule callbacks at absolute
simulated times and :meth:`Kernel.run` drains the heap in time order.
Ties are broken by priority, then insertion order, which makes every
simulation run fully deterministic for a fixed seed and workload.

Two small control surfaces exist for the scenario engine
(:mod:`repro.scenario`):

* **interventions** — :meth:`Kernel.schedule_intervention` schedules a
  callback on a dedicated priority lane that fires *before* any ordinary
  event at the same instant, so a fault injected "at t=5" is in effect
  for every workload event at t=5 regardless of insertion order;
* **tracing** — :meth:`Kernel.enable_trace` records ``(time, priority,
  seq)`` for every fired event, giving determinism tests an exact event
  trace to compare across runs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Priority lane for scenario interventions: strictly before the default
#: lane (0) at equal timestamps.
INTERVENTION_PRIORITY = -1


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, priority, seq)``; ``seq`` is a monotonically
    increasing insertion counter so that two events scheduled for the same
    instant on the same lane fire in the order they were scheduled.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set by the kernel when the event leaves the heap (fired or skipped).
    popped: bool = field(default=False, compare=False, repr=False)
    _kernel: "Kernel | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Idempotent, and a no-op once the event has already left the heap —
        cancelling a fired timeout must not corrupt the live-event count.
        """
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        if self._kernel is not None:
            self._kernel._live -= 1


class Kernel:
    """A discrete-event loop with a simulated clock.

    >>> k = Kernel()
    >>> fired = []
    >>> _ = k.schedule(2.0, lambda: fired.append(k.now))
    >>> _ = k.schedule(1.0, lambda: fired.append(k.now))
    >>> k.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._live = 0
        self._trace: list[tuple[float, int, int]] | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    def schedule(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` to run at absolute simulated time ``time``.

        Scheduling in the past raises ``ValueError`` — it would silently
        corrupt causality in the pipeline models built on top.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.6f} before now={self._now:.6f}"
            )
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            _kernel=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_in(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, action)

    def schedule_intervention(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule a scenario intervention at absolute time ``time``.

        Interventions run on a priority lane ahead of every ordinary event
        at the same instant, so a fault injected at ``t`` is already in
        effect for workload events scheduled at ``t`` — regardless of
        which was scheduled first.
        """
        return self.schedule(time, action, priority=INTERVENTION_PRIORITY)

    def enable_trace(self) -> list[tuple[float, int, int]]:
        """Record ``(time, priority, seq)`` of every subsequently fired event.

        Returns the live trace list (grows as the kernel runs).  Used by
        determinism tests: two runs with the same seed and scenario must
        produce identical traces.
        """
        if self._trace is None:
            self._trace = []
        return self._trace

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event heap.

        ``until`` stops the clock once the next event would fire strictly
        after that time (the event stays queued).  ``max_events`` is a
        safety valve for property tests over adversarial schedules.
        """
        while self._heap:
            if max_events is not None and self._processed >= max_events:
                return
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            event.popped = True
            if event.cancelled:
                # Its cancel() already removed it from the live count.
                continue
            self._live -= 1
            self._now = event.time
            self._processed += 1
            if self._trace is not None:
                self._trace.append((event.time, event.priority, event.seq))
            event.action()
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        """Number of queued, non-cancelled events.

        Tracked incrementally (schedule/cancel/pop), so this is O(1) even
        with millions of queued events — it used to scan the whole heap.
        """
        return self._live
