"""Event heap and simulated clock.

The kernel is deliberately minimal: callers schedule callbacks at absolute
simulated times and :meth:`Kernel.run` drains the heap in time order.
Ties are broken by priority, then insertion order, which makes every
simulation run fully deterministic for a fixed seed and workload.

Two small control surfaces exist for the scenario engine
(:mod:`repro.scenario`):

* **interventions** — :meth:`Kernel.schedule_intervention` schedules a
  callback on a dedicated priority lane that fires *before* any ordinary
  event at the same instant, so a fault injected "at t=5" is in effect
  for every workload event at t=5 regardless of insertion order;
* **tracing** — :meth:`Kernel.enable_trace` records ``(time, priority,
  seq)`` for every fired event, giving determinism tests an exact event
  trace to compare across runs.

Performance note: the heap stores ``(time, priority, seq, Event)``
tuples, not :class:`Event` objects.  ``seq`` is unique per kernel, so
tuple comparison always resolves within the first three (C-compared)
elements and ``heapq`` never calls back into Python — the profiled
``Event.__lt__`` hot spot of the dataclass-based heap.  The :class:`Event`
object in the last slot is the cancellation handle returned to callers.

This class is the **reference tier**.  :mod:`repro.sim.batch` provides a
drop-in ``batch`` tier (:class:`~repro.sim.batch.BatchKernel`) that
stages idle-time schedules in arrays and orders them with one
``numpy.lexsort`` instead of per-event heap maintenance; it must stay
bit-identical to this implementation (see :data:`KERNEL_TIERS` and the
differential harness in ``tests/test_batch_equivalence.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

#: Selectable kernel implementations: the reference event loop here and
#: the array-staged batch tier in :mod:`repro.sim.batch`.
KERNEL_TIERS = ("reference", "batch")

#: Priority lane for scenario interventions: strictly before the default
#: lane (0) at equal timestamps.  Lanes are integers because the batch
#: tier sorts priorities through an ``int64`` array — a fractional lane
#: would be silently truncated there and the tiers would diverge.
INTERVENTION_PRIORITY = -3

#: Priority lane for the SLO-guardian controller (:mod:`repro.control`):
#: after interventions, before arrivals.  A controller tick at ``t``
#: observes a fault injected at ``t`` (the intervention already fired)
#: and its actuations are already in effect for every workload event at
#: ``t`` — regardless of insertion order.
CONTROL_PRIORITY = -2

#: Priority lane for pump-chained workload arrivals in streamed runs.
#: Batch runs pre-schedule every arrival before the kernel starts, so at
#: equal timestamps an arrival always carries a smaller sequence number
#: than any dynamically scheduled pipeline event and wins the tie.  A
#: streamed run schedules each arrival lazily (mid-run, with a *large*
#: sequence number), so without this lane the same tie resolves the other
#: way and the two modes diverge — a seam the scenario fuzzer's
#: stream≡batch oracle caught.  Arrivals on this lane still yield to
#: interventions and controller ticks at the same instant.
ARRIVAL_PRIORITY = -1


class Event:
    """A scheduled callback: the handle :meth:`Kernel.schedule` returns.

    Events fire in ``(time, priority, seq)`` order; ``seq`` is a
    monotonically increasing insertion counter so that two events scheduled
    for the same instant on the same lane fire in the order they were
    scheduled.  The ordering itself lives in the kernel's heap tuples; the
    handle only carries the fields callers may inspect and the
    :meth:`cancel` control surface.
    """

    __slots__ = ("time", "priority", "seq", "action", "cancelled", "popped", "_kernel")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
        kernel: "Kernel | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        #: True once :meth:`cancel` ran; the kernel skips the event on pop.
        self.cancelled = False
        #: Set by the kernel when the event leaves the heap (fired or skipped).
        self.popped = False
        self._kernel = kernel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Idempotent, and a no-op once the event has already left the heap —
        cancelling a fired timeout must not corrupt the live-event count.
        """
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        if self._kernel is not None:
            self._kernel._live -= 1


class Kernel:
    """A discrete-event loop with a simulated clock.

    >>> k = Kernel()
    >>> fired = []
    >>> _ = k.schedule(2.0, lambda: fired.append(k.now))
    >>> _ = k.schedule(1.0, lambda: fired.append(k.now))
    >>> k.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        #: Heap of ``(time, priority, seq, Event)`` — see the module note.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_seq = 0
        self._now = 0.0
        self._processed = 0
        self._live = 0
        self._trace: list[tuple[float, int, int]] | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    def schedule(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` to run at absolute simulated time ``time``.

        Scheduling in the past raises ``ValueError`` — it would silently
        corrupt causality in the pipeline models built on top.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time:.6f} before now={self._now:.6f}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, action, self)
        heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def schedule_in(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, action)

    def schedule_intervention(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule a scenario intervention at absolute time ``time``.

        Interventions run on a priority lane ahead of every ordinary event
        at the same instant, so a fault injected at ``t`` is already in
        effect for workload events scheduled at ``t`` — regardless of
        which was scheduled first.
        """
        return self.schedule(time, action, priority=INTERVENTION_PRIORITY)

    def schedule_control(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule a controller tick at absolute time ``time``.

        Controller ticks run on their own lane between interventions and
        arrivals: a tick at ``t`` already sees any fault injected at ``t``,
        and its actuations are already in effect for every workload event
        at ``t`` (see :mod:`repro.control`).
        """
        return self.schedule(time, action, priority=CONTROL_PRIORITY)

    def enable_trace(self) -> list[tuple[float, int, int]]:
        """Record ``(time, priority, seq)`` of every subsequently fired event.

        Returns the live trace list (grows as the kernel runs).  Used by
        determinism tests: two runs with the same seed and scenario must
        produce identical traces.
        """
        if self._trace is None:
            self._trace = []
        return self._trace

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event heap.

        ``until`` stops the clock once the next event would fire strictly
        after that time (the event stays queued).  ``max_events`` is a
        safety valve for property tests over adversarial schedules.

        The loop body is the hottest code in the simulator; locals are
        hoisted and the heap entries unpacked in place so a fired event
        costs one ``heappop`` plus the callback itself.
        """
        heap = self._heap
        pop = heappop
        while heap:
            if max_events is not None and self._processed >= max_events:
                return
            time, priority, seq, event = heap[0]
            if until is not None and time > until:
                self._now = until
                return
            pop(heap)
            event.popped = True
            if event.cancelled:
                # Its cancel() already removed it from the live count.
                continue
            self._live -= 1
            self._now = time
            self._processed += 1
            if self._trace is not None:
                self._trace.append((time, priority, seq))
            event.action()
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        """Number of queued, non-cancelled events.

        Tracked incrementally (schedule/cancel/pop), so this is O(1) even
        with millions of queued events — it used to scan the whole heap.
        """
        return self._live
