"""Seeded random-variate helpers.

All stochastic choices in the simulator and workload generators flow
through :class:`SimRng` so that a single integer seed reproduces an entire
experiment bit-for-bit.  Child generators are derived with
``numpy.random.SeedSequence.spawn`` so that adding a new consumer does not
perturb the draws of existing ones.
"""

from __future__ import annotations

import zlib
from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf weights over ranks ``1..n``.

    ``skew == 0`` degenerates to the uniform distribution; larger skews
    concentrate mass on low ranks.  This matches how the paper's synthetic
    generator models *key distribution skew* and *endorser distribution
    skew* (Table 2).
    """
    if n <= 0:
        raise ValueError(f"need at least one rank, got {n}")
    if skew < 0:
        raise ValueError(f"negative skew {skew!r}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-skew
    return weights / weights.sum()


class WeightedSampler:
    """Repeated weighted index draws from one generator, CDF precomputed.

    Draw-stream compatible with ``generator.choice(n, p=weights)``: numpy's
    weighted scalar ``choice`` consumes exactly one ``generator.random()``
    and resolves it with a right-biased ``searchsorted`` over the
    normalized cumulative weights — this class precomputes that CDF once
    instead of rebuilding it on every call, which profiling shows dominates
    per-transaction endorser selection.  Equivalence is pinned by
    ``tests/test_sim_rng.py`` and, end to end, by the golden-file tests.

    ``prefetch`` amortizes the per-call numpy dispatch further: draws are
    served from a buffer filled ``prefetch`` uniforms at a time via one
    vectorized ``generator.random(n)`` call.  The PCG64 bit stream fills
    arrays element by element with the same ``next_double`` path scalar
    ``random()`` uses, so the draw *values* are bit-identical — but the
    generator advances ahead of consumption, so prefetching is only safe
    when this sampler is the stream's **exclusive** consumer (true for the
    dedicated ``endorser-selection`` stream; the batch kernel tier enables
    it there and nowhere else).
    """

    __slots__ = ("_generator", "_cdf", "_prefetch", "_buffer", "_cursor")

    def __init__(
        self,
        generator: np.random.Generator,
        weights: np.ndarray,
        prefetch: int = 0,
    ) -> None:
        cdf = np.asarray(weights, dtype=np.float64).cumsum()
        if cdf.size == 0:
            raise ValueError("need at least one weight")
        if prefetch < 0:
            raise ValueError(f"negative prefetch {prefetch!r}")
        cdf /= cdf[-1]
        self._generator = generator
        self._cdf = cdf
        self._prefetch = prefetch
        self._buffer: list[int] = []
        self._cursor = 0

    def draw(self) -> int:
        """One weighted index in ``0..len(weights)-1``."""
        if self._prefetch:
            if self._cursor >= len(self._buffer):
                self._buffer = self.draw_array(self._prefetch).tolist()
                self._cursor = 0
            index = self._buffer[self._cursor]
            self._cursor += 1
            return index
        return int(self._cdf.searchsorted(self._generator.random(), side="right"))

    def draw_array(self, n: int) -> np.ndarray:
        """``n`` weighted indices, bit-identical to ``n`` scalar draws.

        One vectorized ``generator.random(n)`` consumes exactly the same
        doubles, in the same order, as ``n`` scalar ``random()`` calls,
        and the shared right-biased ``searchsorted`` resolves each the
        same way — pinned against ``Generator.choice`` by
        ``tests/test_sim_rng.py``.
        """
        if n < 0:
            raise ValueError(f"negative draw count {n!r}")
        return self._cdf.searchsorted(self._generator.random(n), side="right")


class SimRng:
    """A seeded random source with named, stable substreams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._samplers: dict[tuple[str, int, float], WeightedSampler] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        Streams are keyed by name, not creation order, so consumers stay
        decoupled: drawing more from one stream never shifts another.
        """
        if name not in self._streams:
            # zlib.crc32 is stable across processes, unlike str.__hash__.
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(zlib.crc32(name.encode()),)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def choice(self, name: str, items: Sequence[T], weights: np.ndarray | None = None) -> T:
        """Draw one item from ``items`` on stream ``name``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        gen = self.stream(name)
        index = int(gen.choice(len(items), p=weights))
        return items[index]

    def zipf_index(self, name: str, n: int, skew: float) -> int:
        """Draw an index in ``0..n-1`` with Zipf(skew) weights.

        The Zipf CDF for each ``(name, n, skew)`` triple is built once and
        reused (see :class:`WeightedSampler`); the draws are identical to
        the original per-call ``choice(n, p=zipf_weights(n, skew))``.
        """
        key = (name, n, skew)
        sampler = self._samplers.get(key)
        if sampler is None:
            sampler = WeightedSampler(self.stream(name), zipf_weights(n, skew))
            self._samplers[key] = sampler
        return sampler.draw()

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform float on ``[low, high)`` from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """Exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self.stream(name).exponential(mean))

    def shuffled(self, name: str, items: Sequence[T]) -> list[T]:
        """A shuffled copy of ``items``."""
        out = list(items)
        self.stream(name).shuffle(out)  # type: ignore[arg-type]
        return out
