"""Discrete-event simulation kernel.

The :mod:`repro.fabric` substrate is built on this small, dependency-free
kernel: an event heap with a simulated clock (:class:`~repro.sim.kernel.Kernel`),
FIFO service stations with utilization accounting
(:class:`~repro.sim.resources.Server`), and seeded random-variate helpers
(:mod:`repro.sim.rng`).
"""

from repro.sim.kernel import Event, Kernel
from repro.sim.resources import Server, ServerStats
from repro.sim.rng import SimRng, zipf_weights

__all__ = [
    "Event",
    "Kernel",
    "Server",
    "ServerStats",
    "SimRng",
    "zipf_weights",
]
