"""Actuation audit trail: every controller decision, JSON-round-trippable.

The :class:`ControlTimeline` is the controller's analogue of the scenario
engine's applied timeline — a complete, deterministic record of *what the
controller did and why*: each decision carries the rule that fired, the
triggering window's observables snapshot and the old→new value of every
actuation (with a clamped flag when the bounded envelope bit).  It is
rendered alongside the forensics report, never embedded in it, so
controller-off forensics digests are untouched by this package existing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ControlAction:
    """One applied actuation: ``actuator`` moved from ``old`` to ``new``."""

    actuator: str
    old: object
    new: object
    #: True when the bounded-actuation envelope clamped the rule's value.
    clamped: bool = False

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "actuator": self.actuator,
            "old": self.old,
            "new": self.new,
            "clamped": self.clamped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlAction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            actuator=str(data["actuator"]),
            old=data["old"],
            new=data["new"],
            clamped=bool(data["clamped"]),
        )


@dataclass(frozen=True)
class ControlDecision:
    """One controller tick that actuated: rule, trigger window, actions."""

    time: float
    rule: str
    #: The :meth:`~repro.control.monitor.WindowObservables.to_dict`
    #: snapshot of the window that triggered the rule.
    observables: dict
    actions: tuple[ControlAction, ...] = ()

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "time": round(self.time, 6),
            "rule": self.rule,
            "observables": self.observables,
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlDecision":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=float(data["time"]),
            rule=str(data["rule"]),
            observables=dict(data["observables"]),
            actions=tuple(
                ControlAction.from_dict(action) for action in data["actions"]
            ),
        )


@dataclass
class ControlTimeline:
    """Ordered decisions of one controller run, with a content digest."""

    policy: str
    decisions: list[ControlDecision] = field(default_factory=list)
    #: Controller ticks that fired (decisions are the subset that acted).
    ticks: int = 0

    def record(self, decision: ControlDecision) -> None:
        """Append one decision (kernel order = time order)."""
        self.decisions.append(decision)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "policy": self.policy,
            "ticks": self.ticks,
            "decisions": [decision.to_dict() for decision in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlTimeline":
        """Inverse of :meth:`to_dict`."""
        timeline = cls(policy=str(data["policy"]), ticks=int(data["ticks"]))
        for decision in data["decisions"]:
            timeline.record(ControlDecision.from_dict(decision))
        return timeline

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, stable separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ControlTimeline":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """sha256 over the canonical JSON — the timeline's fingerprint."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def render_control_timeline(timeline: ControlTimeline) -> str:
    """Human-readable timeline block, printed alongside the forensics report."""
    lines = [
        f"control timeline — policy {timeline.policy}, "
        f"{timeline.ticks} ticks, {len(timeline.decisions)} decisions "
        f"[digest {timeline.digest()[:12]}]"
    ]
    if not timeline.decisions:
        lines.append("  (no actuations)")
        return "\n".join(lines)
    for decision in timeline.decisions:
        observed = decision.observables
        lines.append(
            f"  {decision.time:8.3f}s  {decision.rule:<22} "
            f"abort {observed.get('abort_rate', 0.0):.1%} "
            f"p95 {observed.get('p95_latency', 0.0):.2f}s"
        )
        for action in decision.actions:
            flag = " (clamped)" if action.clamped else ""
            lines.append(
                f"             {action.actuator}: {action.old} -> {action.new}{flag}"
            )
    return "\n".join(lines)
