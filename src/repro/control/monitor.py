"""Windowed in-run observables for the SLO-guardian controller.

:class:`WindowedMonitor` implements the transaction-consumer protocol of
:class:`repro.logs.stream.RunStream` (``consume(tx)`` sees every finished
transaction — committed or aborted — as it happens).  In a batch run the
network feeds it directly from the commit/abort seams; in a streamed run
it is registered on the stream hub.  Either way the controller calls
:meth:`WindowedMonitor.snapshot` once per tick, closing a *tumbling*
window: every transaction that finished since the previous tick,
summarized into abort rate by taxonomy cause, retry rate, per-org
endorsement gaps, hot-key conflict share and latency quantiles.

Tumbling (rather than overlapping) windows keep the controller
deterministic and O(window) in memory: each transaction is folded into
exactly one snapshot, and a snapshot depends only on kernel-ordered
events before its tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.forensics import classify_transaction
from repro.fabric.transaction import Transaction, TxStatus

#: Causes attributable to a specific conflicting key.
_KEYED_CAUSES = frozenset(
    {"mvcc_conflict", "phantom_conflict", "early_abort_stale_read"}
)


def quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0 for an empty one)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    rank = min(len(sorted_values) - 1, max(0, int(round(q * len(sorted_values))) - 1))
    return sorted_values[rank]


@dataclass(frozen=True)
class WindowObservables:
    """One closed observation window, as the policy sees it."""

    index: int
    start: float
    end: float
    #: Finished transactions, endorsement-stage early aborts excluded
    #: (they were never submitted — same denominator as forensics).
    submitted: int
    successes: int
    aborted: int
    abort_rate: float
    #: Taxonomy cause -> count; only causes present in this window.
    causes: dict[str, int] = field(default_factory=dict)
    dominant_cause: str | None = None
    #: Fraction of this window's submissions that were client retries.
    retry_rate: float = 0.0
    #: Share of submissions lost to the single hottest conflicting key.
    hot_key_share: float = 0.0
    #: Org -> missing-endorsement count (the per-org endorsement gap).
    org_gaps: dict[str, int] = field(default_factory=dict)
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    #: Committed transactions per second over the window.
    throughput: float = 0.0

    def to_dict(self) -> dict:
        """Plain-dict snapshot (JSON-ready, embedded in the timeline)."""
        return {
            "index": self.index,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "submitted": self.submitted,
            "successes": self.successes,
            "aborted": self.aborted,
            "abort_rate": round(self.abort_rate, 6),
            "causes": dict(sorted(self.causes.items())),
            "dominant_cause": self.dominant_cause,
            "retry_rate": round(self.retry_rate, 6),
            "hot_key_share": round(self.hot_key_share, 6),
            "org_gaps": dict(sorted(self.org_gaps.items())),
            "p50_latency": round(self.p50_latency, 6),
            "p95_latency": round(self.p95_latency, 6),
            "throughput": round(self.throughput, 6),
        }


class WindowedMonitor:
    """Accumulate finished transactions; emit one window per controller tick."""

    def __init__(self) -> None:
        self._window_index = 0
        self._window_start = 0.0
        self._submitted = 0
        self._successes = 0
        self._retries = 0
        self._causes: dict[str, int] = {}
        self._key_hits: dict[str, int] = {}
        self._org_gaps: dict[str, int] = {}
        self._latencies: list[float] = []
        #: Finished transactions seen over the whole run (all windows).
        self.total_seen = 0

    def consume(self, tx: Transaction) -> None:
        """Fold one finished transaction into the open window."""
        self.total_seen += 1
        if tx.is_config or tx.abort_stage == "endorsement":
            return
        self._submitted += 1
        if tx.attempt > 1:
            self._retries += 1
        cause = classify_transaction(tx)
        if cause is None:
            self._successes += 1
            if tx.latency is not None:
                self._latencies.append(tx.latency)
            return
        self._causes[cause] = self._causes.get(cause, 0) + 1
        if cause in _KEYED_CAUSES and tx.conflict_key is not None:
            self._key_hits[tx.conflict_key] = self._key_hits.get(tx.conflict_key, 0) + 1
        if tx.status is TxStatus.ENDORSEMENT_FAILURE:
            for org in tx.missing_endorsements:
                self._org_gaps[org] = self._org_gaps.get(org, 0) + 1

    def snapshot(self, now: float) -> WindowObservables:
        """Close the open window at simulated time ``now`` and start the next."""
        submitted = self._submitted
        aborted = submitted - self._successes
        duration = now - self._window_start
        latencies = sorted(self._latencies)
        dominant = None
        if self._causes:
            # Deterministic: highest count, cause name breaking ties.
            dominant = min(self._causes, key=lambda c: (-self._causes[c], c))
        hot_share = 0.0
        if self._key_hits and submitted:
            hot_share = max(self._key_hits.values()) / submitted
        window = WindowObservables(
            index=self._window_index,
            start=self._window_start,
            end=now,
            submitted=submitted,
            successes=self._successes,
            aborted=aborted,
            abort_rate=aborted / submitted if submitted else 0.0,
            causes=dict(self._causes),
            dominant_cause=dominant,
            retry_rate=self._retries / submitted if submitted else 0.0,
            hot_key_share=hot_share,
            org_gaps=dict(self._org_gaps),
            p50_latency=quantile(latencies, 0.50),
            p95_latency=quantile(latencies, 0.95),
            throughput=self._successes / duration if duration > 0 else 0.0,
        )
        self._window_index += 1
        self._window_start = now
        self._submitted = 0
        self._successes = 0
        self._retries = 0
        self._causes = {}
        self._key_hits = {}
        self._org_gaps = {}
        self._latencies = []
        return window
