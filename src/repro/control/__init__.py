"""Live SLO-guardian control: closed-loop in-run adaptation (docs/CONTROL.md).

The paper leaves "a self-adaptive system with a feedback loop" to future
work; :mod:`repro.core.feedback` closes that loop *between* runs.  This
package closes it *inside* a run: a deterministic, kernel-scheduled
controller watches windowed observables (abort causes, retry traffic,
endorsement gaps, latency quantiles) and applies bounded actuations —
block re-sizing, rate throttling, mitigation toggles, retry tightening —
while the faults of a scenario are being injected.  Every actuation is
recorded in a JSON-round-trippable, digestable
:class:`~repro.control.timeline.ControlTimeline`.

Attach a :class:`~repro.control.spec.ControlSpec` to
:attr:`repro.fabric.config.NetworkConfig.control` to turn it on; leave it
``None`` (the default) and the package is completely inert — controller-off
runs are byte-identical to builds without it.
"""

from repro.control.bounds import (
    BOUNDS,
    ActuationError,
    actuation_names,
    clamp_actuation,
    validate_actuation,
)
from repro.control.controller import SLOGuardian
from repro.control.monitor import WindowedMonitor, WindowObservables
from repro.control.policy import (
    ControllerState,
    ControlPolicy,
    GuardianPolicy,
    NoopPolicy,
    Proposal,
    make_policy,
)
from repro.control.spec import POLICIES, ControlSpec, SLOTargets
from repro.control.timeline import (
    ControlAction,
    ControlDecision,
    ControlTimeline,
    render_control_timeline,
)

__all__ = [
    "ActuationError",
    "BOUNDS",
    "ControlAction",
    "ControlDecision",
    "ControlPolicy",
    "ControlSpec",
    "ControlTimeline",
    "ControllerState",
    "GuardianPolicy",
    "NoopPolicy",
    "POLICIES",
    "Proposal",
    "SLOGuardian",
    "SLOTargets",
    "WindowObservables",
    "WindowedMonitor",
    "actuation_names",
    "clamp_actuation",
    "make_policy",
    "render_control_timeline",
    "validate_actuation",
]
