"""Control policies: windowed observables + SLO targets → bounded actuations.

A policy is a pure decision function — it never touches the network.  It
receives the closed :class:`~repro.control.monitor.WindowObservables` and
the :class:`ControllerState` mirror of the current actuator values, and
returns :class:`Proposal`s; the :class:`~repro.control.controller
.SLOGuardian` clamps each proposal through :mod:`repro.control.bounds`,
applies it and records the decision.  The interface is deliberately the
same shape as the offline rules in :mod:`repro.core.rules` (observables
in, recommended parameter moves out) so recommender rules can be lifted
into live policies later.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.monitor import WindowObservables
from repro.control.spec import SLOTargets

#: Abort causes the conflict-pressure rule reacts to (key contention).
CONFLICT_CAUSES = frozenset(
    {"mvcc_conflict", "phantom_conflict", "early_abort_stale_read"}
)


@dataclass(frozen=True)
class Proposal:
    """One proposed actuation: set ``actuator`` to ``value`` (rule-attributed)."""

    rule: str
    actuator: str
    #: Target value; ``None`` clears a clearable actuator (the send cap).
    value: object


@dataclass
class ControllerState:
    """Live mirror of the actuator values the controller manages.

    The controller reads initial values off the network at install time
    and updates the mirror after every applied actuation, so policies
    decide against what is *currently in effect* — never against the
    immutable :class:`~repro.fabric.config.NetworkConfig`.
    """

    block_count: int
    block_timeout: float
    mitigation: str
    send_rate_cap: float | None = None
    #: ``None`` when the run has no client retry policy to tighten.
    retry_max_attempts: int | None = None


class ControlPolicy:
    """Decision interface: one :meth:`decide` call per closed window."""

    #: Registry name (subclasses override).
    name = "abstract"

    def decide(
        self, window: WindowObservables, state: ControllerState
    ) -> list[Proposal]:
        """Proposed actuations for this window (empty = hold steady)."""
        raise NotImplementedError


class NoopPolicy(ControlPolicy):
    """Observe and record, never actuate.

    The determinism baseline: a controller-on run with the noop policy
    must produce the exact run digest of a controller-off run — ticks
    ride the control lane but touch nothing the simulation observes.
    """

    name = "noop"

    def decide(
        self, window: WindowObservables, state: ControllerState
    ) -> list[Proposal]:
        """Never proposes anything."""
        del window, state
        return []


class GuardianPolicy(ControlPolicy):
    """Rule-based SLO guardian: the first pressured rule wins each tick.

    Rules, in priority order:

    1. **endorsement pressure** — a ``policy_*`` cause dominates the
       window's aborts (crashed peers, endorsement timeouts): throttle
       the client send rate so traffic drains into the recovery window
       instead of piling onto the fault, tightening an existing cap by
       ``CAP_STEP`` each window the pressure persists.
    2. **conflict pressure** — a keyed conflict cause dominates (MVCC /
       phantom / stale read): switch the mitigation to conflict-aware
       ``reorder`` first; if contention persists, throttle.
    3. **latency pressure** — the window's p95 commit latency exceeds the
       SLO: re-size the block to the paper's block-size adaptation rule
       (``arrival rate × block timeout``), when that moves the block
       count by more than ``RESIZE_DEADBAND``.
    4. **recovery** — the abort rate is comfortably under the SLO and a
       cap is active: relax it by ``1 / CAP_STEP``, clearing it entirely
       once it no longer binds (hysteresis against flapping).
    """

    name = "guardian"

    #: Minimum submissions in a window before a *pressure* rule may fire.
    #: The recovery rule runs on thinner windows — a hard throttle must
    #: not starve itself of the samples needed to relax it — but never on
    #: *empty* ones: zero completions is no evidence of health, and
    #: clearing a cap on it would flush the paced backlog into a fault
    #: that is still in progress.
    MIN_SAMPLES = 8
    #: Multiplicative relax step for the recovery ramp.
    CAP_STEP = 0.75
    #: The throttle never caps below this admission rate (tx/s).
    CAP_FLOOR = 10.0
    #: Relative block-count move below which rule 3 holds steady.
    RESIZE_DEADBAND = 0.2

    def __init__(self, slo: SLOTargets) -> None:
        self.slo = slo

    def decide(
        self, window: WindowObservables, state: ControllerState
    ) -> list[Proposal]:
        """Apply the rule cascade to one closed window."""
        over_abort = window.abort_rate > self.slo.max_abort_rate
        dominant = window.dominant_cause

        if window.submitted >= self.MIN_SAMPLES:
            if over_abort and dominant is not None and dominant.startswith("policy_"):
                return [self._throttle(window, state, rule="endorsement_pressure")]

            if over_abort and dominant in CONFLICT_CAUSES:
                if state.mitigation != "reorder":
                    return [
                        Proposal(
                            rule="conflict_pressure",
                            actuator="mitigation",
                            value="reorder",
                        )
                    ]
                return [self._throttle(window, state, rule="conflict_pressure")]

            if window.p95_latency > self.slo.max_p95_latency and window.throughput > 0:
                target = window.throughput * state.block_timeout
                if (
                    abs(target - state.block_count)
                    > self.RESIZE_DEADBAND * state.block_count
                ):
                    return [
                        Proposal(
                            rule="latency_pressure",
                            actuator="block_count",
                            value=target,
                        )
                    ]
                return []

        if (
            state.send_rate_cap is not None
            and window.submitted > 0
            and window.abort_rate <= self.slo.max_abort_rate / 2.0
        ):
            relaxed = state.send_rate_cap / self.CAP_STEP
            duration = window.end - window.start
            arrival_rate = window.submitted / duration if duration > 0 else 0.0
            # Once the relaxed cap clears twice the observed completion
            # rate it no longer binds — drop it instead of ratcheting.
            if relaxed >= 2.0 * max(arrival_rate, self.CAP_FLOOR):
                return [Proposal(rule="recovery", actuator="send_rate_cap", value=None)]
            return [Proposal(rule="recovery", actuator="send_rate_cap", value=relaxed)]

        return []

    def _throttle(
        self, window: WindowObservables, state: ControllerState, rule: str
    ) -> Proposal:
        """Tighten the send cap (or retries first, when a retry storm feeds it).

        The cap targets the *success-weighted* completion rate — the rate
        at which work currently survives the fault.  A window where
        everything aborts therefore throttles admissions to the floor,
        draining arrivals into the recovery window instead of feeding
        them to certain failure; the recovery rule ramps the cap back out
        once windows come back healthy.
        """
        if (
            state.retry_max_attempts is not None
            and state.retry_max_attempts > 1
            and window.retry_rate > 0.25
        ):
            return Proposal(
                rule=rule,
                actuator="retry_max_attempts",
                value=state.retry_max_attempts - 1,
            )
        duration = window.end - window.start
        completion_rate = window.submitted / duration if duration > 0 else 0.0
        target = max(completion_rate * (1.0 - window.abort_rate), self.CAP_FLOOR)
        if state.send_rate_cap is not None:
            target = min(target, state.send_rate_cap * self.CAP_STEP)
        return Proposal(rule=rule, actuator="send_rate_cap", value=target)


def make_policy(name: str, slo: SLOTargets) -> ControlPolicy:
    """Instantiate a registered policy by name."""
    if name == "guardian":
        return GuardianPolicy(slo)
    if name == "noop":
        return NoopPolicy()
    from repro.control.spec import POLICIES

    raise ValueError(f"unknown control policy {name!r}; known: {', '.join(POLICIES)}")
