"""Declarative controller configuration: SLO targets + policy selection.

A :class:`ControlSpec` rides on :attr:`repro.fabric.config.NetworkConfig
.control`; the network installs an :class:`~repro.control.controller
.SLOGuardian` when one is present.  Both dataclasses are frozen and
JSON-round-trippable so controller experiments flow unchanged through
the bench registry, the process-pool executor and the result cache —
the spec *is* the cache-keyable description of the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Selectable control policies (see :mod:`repro.control.policy`).
POLICIES = ("guardian", "noop")


@dataclass(frozen=True)
class SLOTargets:
    """Service-level objectives the guardian steers toward.

    ``max_abort_rate`` is the tolerated fraction of submitted
    transactions aborting per observation window; ``max_p95_latency`` is
    the tolerated 95th-percentile end-to-end commit latency in seconds.
    """

    max_abort_rate: float = 0.10
    max_p95_latency: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_abort_rate <= 1.0:
            raise ValueError(
                f"max_abort_rate must be in [0, 1], got {self.max_abort_rate!r}"
            )
        if self.max_p95_latency <= 0:
            raise ValueError(
                f"max_p95_latency must be positive, got {self.max_p95_latency!r}"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "max_abort_rate": self.max_abort_rate,
            "max_p95_latency": self.max_p95_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SLOTargets":
        """Inverse of :meth:`to_dict`."""
        return cls(
            max_abort_rate=float(data["max_abort_rate"]),
            max_p95_latency=float(data["max_p95_latency"]),
        )


@dataclass(frozen=True)
class ControlSpec:
    """One controller configuration: which policy, how often, which SLOs."""

    policy: str = "guardian"
    #: Observation-window / tick width in simulated seconds.
    interval: float = 0.25
    slo: SLOTargets = field(default_factory=SLOTargets)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown control policy {self.policy!r}; known: {', '.join(POLICIES)}"
            )
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval!r}")

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready, cache-keyable)."""
        return {
            "policy": self.policy,
            "interval": self.interval,
            "slo": self.slo.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            policy=str(data["policy"]),
            interval=float(data["interval"]),
            slo=SLOTargets.from_dict(data["slo"]),
        )
