"""Bounded-actuation validation shared by every configuration writer.

Any component that changes a live or planned network parameter — the
SLO-guardian controller (:mod:`repro.control.controller`), the offline
recommendation applier (:mod:`repro.core.apply`) — routes the new value
through :func:`clamp_actuation` / :func:`validate_actuation` so a single
table defines what "in range" means.  The bounds are deliberately wide:
they exist to stop a runaway rule (or an out-of-range recommendation)
from writing a value that violates :class:`~repro.fabric.config
.NetworkConfig` invariants, not to second-guess ordinary tuning.
"""

from __future__ import annotations

from repro.fabric.config import MITIGATIONS


class ActuationError(ValueError):
    """An actuation target or value outside the bounded envelope."""


#: Numeric actuator envelope: ``name -> (low, high, integer?)``.
BOUNDS: dict[str, tuple[float, float, bool]] = {
    "block_count": (1, 10_000, True),
    "block_timeout": (0.05, 30.0, False),
    "send_rate_cap": (10.0, 100_000.0, False),
    "retry_max_attempts": (1, 10, True),
}

#: Non-numeric actuators and their allowed values.
CHOICES: dict[str, tuple[str, ...]] = {
    "mitigation": MITIGATIONS,
}


def actuation_names() -> list[str]:
    """Every known actuator name (numeric and choice), sorted."""
    return sorted([*BOUNDS, *CHOICES])


def clamp_actuation(name: str, value: float | int) -> tuple[float | int, bool]:
    """Clamp a numeric actuation into its envelope.

    Returns ``(clamped_value, was_clamped)``.  Integer actuators are
    rounded before clamping, so callers can hand in computed floats
    (e.g. ``throughput * timeout``).  Unknown names raise
    :class:`ActuationError` — a typo must never become a silent no-op.
    """
    try:
        low, high, integral = BOUNDS[name]
    except KeyError:
        raise ActuationError(
            f"unknown numeric actuator {name!r}; known: {', '.join(sorted(BOUNDS))}"
        ) from None
    if integral:
        value = int(round(value))
    clamped = min(max(value, low), high)
    if integral:
        clamped = int(clamped)
    return clamped, clamped != value


def validate_actuation(name: str, value: object) -> None:
    """Raise :class:`ActuationError` unless ``value`` is inside the envelope.

    Numeric actuators must already be in range (use
    :func:`clamp_actuation` first when a rule computes values); choice
    actuators must be a known member.
    """
    if name in BOUNDS:
        low, high, _ = BOUNDS[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ActuationError(f"{name} must be numeric, got {value!r}")
        if not low <= value <= high:
            raise ActuationError(
                f"{name}={value!r} outside bounded envelope [{low}, {high}]"
            )
        return
    if name in CHOICES:
        if value not in CHOICES[name]:
            raise ActuationError(
                f"{name}={value!r} not one of {', '.join(CHOICES[name])}"
            )
        return
    raise ActuationError(
        f"unknown actuator {name!r}; known: {', '.join(actuation_names())}"
    )
