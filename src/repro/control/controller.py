"""The SLO guardian: a kernel-scheduled closed-loop controller.

:class:`SLOGuardian` runs *inside* a simulation.  Installed by
:class:`~repro.fabric.network.FabricNetwork` when the config carries a
:class:`~repro.control.spec.ControlSpec`, it ticks on the kernel's
control lane (after interventions, before arrivals at the same instant):
each tick closes the :class:`~repro.control.monitor.WindowedMonitor`
window, asks the policy for proposals, clamps them through
:mod:`repro.control.bounds`, applies them to the network's *live*
actuation seams and records the decision in the
:class:`~repro.control.timeline.ControlTimeline`.

Determinism: ticks are ordinary kernel events, observables are pure
functions of kernel-ordered transaction completions, and policies are
pure functions of observables — so a controller-on run is bit-reproducible
per (seed, policy, scenario) across replays and kernel tiers.  The
controller never mutates the shared :class:`~repro.fabric.config
.NetworkConfig`: block cutting is re-sized on the live orderer, the
mitigation/retry toggles go through network setters, and the rate
throttle through :class:`~repro.fabric.conditions.NetworkConditions` —
the same attributed seam the scenario engine writes (last writer wins,
both journaled).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.control.bounds import ActuationError, clamp_actuation, validate_actuation
from repro.control.monitor import WindowedMonitor
from repro.control.policy import ControllerState, Proposal, make_policy
from repro.control.spec import ControlSpec
from repro.control.timeline import ControlAction, ControlDecision, ControlTimeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.network import FabricNetwork


class SLOGuardian:
    """Windowed monitor + policy + bounded actuators, wired to one network."""

    def __init__(self, network: "FabricNetwork", spec: ControlSpec) -> None:
        self.network = network
        self.spec = spec
        self.monitor = WindowedMonitor()
        self.policy = make_policy(spec.policy, spec.slo)
        self.timeline = ControlTimeline(policy=spec.policy)
        retry = network.retry_policy
        self.state = ControllerState(
            block_count=network.orderer.block_count,
            block_timeout=network.orderer.block_timeout,
            mitigation=network.mitigation,
            send_rate_cap=network.conditions.send_rate_cap,
            retry_max_attempts=None if retry is None else retry.max_attempts,
        )

    def install(self) -> None:
        """Register the monitor tap and schedule the first tick.

        In a streamed run the monitor rides the :class:`~repro.logs.stream
        .RunStream` fan-out; in a batch run the network feeds it directly
        from the commit/abort seams — both deliver every finished
        transaction at its completion event, before any later tick.
        """
        if self.network.stream is not None:
            self.network.stream.add_transaction_consumer(self.monitor)
        self.network.kernel.schedule_control(self.spec.interval, self._tick)

    def _tick(self) -> None:
        kernel = self.network.kernel
        now = kernel.now
        self.timeline.ticks += 1
        window = self.monitor.snapshot(now)
        proposals = self.policy.decide(window, self.state)
        actions = []
        for proposal in proposals:
            action = self._apply(proposal)
            if action is not None:
                actions.append(action)
        if actions:
            self.timeline.record(
                ControlDecision(
                    time=now,
                    rule=proposals[0].rule,
                    observables=window.to_dict(),
                    actions=tuple(actions),
                )
            )
        # Reschedule only while other events remain: a tick must never be
        # the event keeping the simulation alive, or the run never ends.
        if kernel.pending() > 0:
            kernel.schedule_control(now + self.spec.interval, self._tick)

    def _apply(self, proposal: Proposal) -> ControlAction | None:
        """Clamp and apply one proposal; ``None`` when it is a no-op."""
        network = self.network
        state = self.state
        name, value = proposal.actuator, proposal.value

        if name == "send_rate_cap":
            old = state.send_rate_cap
            if value is None:
                if old is None:
                    return None
                network.conditions.set_send_rate_cap(None, source="control")
                state.send_rate_cap = None
                return ControlAction("send_rate_cap", old, None)
            new, clamped = clamp_actuation("send_rate_cap", float(value))
            if new == old:
                return None
            network.conditions.set_send_rate_cap(new, source="control")
            state.send_rate_cap = new
            return ControlAction("send_rate_cap", old, new, clamped=clamped)

        if name == "block_count":
            new, clamped = clamp_actuation("block_count", float(value))
            old = network.orderer.block_count
            if new == old:
                return None
            network.orderer.block_count = new
            state.block_count = new
            return ControlAction("block_count", old, new, clamped=clamped)

        if name == "block_timeout":
            new, clamped = clamp_actuation("block_timeout", float(value))
            old = network.orderer.block_timeout
            if new == old:
                return None
            network.orderer.block_timeout = new
            state.block_timeout = new
            return ControlAction("block_timeout", old, new, clamped=clamped)

        if name == "mitigation":
            validate_actuation("mitigation", value)
            old = state.mitigation
            if value == old:
                return None
            network.set_mitigation(str(value))
            state.mitigation = str(value)
            return ControlAction("mitigation", old, value)

        if name == "retry_max_attempts":
            retry = network.retry_policy
            if retry is None:
                return None
            new, clamped = clamp_actuation("retry_max_attempts", float(value))
            if new == retry.max_attempts:
                return None
            old = retry.max_attempts
            network.set_retry_policy(replace(retry, max_attempts=new))
            state.retry_max_attempts = new
            return ControlAction("retry_max_attempts", old, new, clamped=clamped)

        raise ActuationError(f"policy proposed unknown actuator {name!r}")
