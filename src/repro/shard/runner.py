"""Execute a :class:`~repro.shard.plan.ShardPlan`: one network per channel.

Each channel is a full, independent
:class:`~repro.fabric.network.FabricNetwork` — its own ordering service,
validation pipeline and simulation kernel — built in *stream mode*: the
ledger is a :class:`~repro.logs.stream.StreamingLedger`, the workload is
pulled from :func:`~repro.workloads.synthetic.iter_synthetic_requests`
one request at a time, and the only things that survive the run are the
bounded accumulators of :mod:`repro.shard.summary`.  Peak memory is
therefore independent of the transaction budget — the property the
CI smoke step asserts via ``repro shard --max-rss-mb`` and the 1M-tx
digest golden demonstrates (docs/SCALING.md).

Channels run sequentially in this process but are logically concurrent:
every channel's kernel timeline starts at t = 0, so the stitched
makespan is the max across channels, not the sum.
"""

from __future__ import annotations

from typing import Callable

from repro.shard.plan import ChannelPlan, ShardPlan
from repro.shard.summary import (
    ChannelSummary,
    RateSeriesAccumulator,
    RunStatsAccumulator,
    StitchedSummary,
    stitch,
    summarize_channel,
)

#: Optional progress sink: one human-readable line per channel.
Progress = Callable[[str], None]


def run_channel(plan: ShardPlan, channel: ChannelPlan) -> ChannelSummary:
    """Run one channel of the plan to completion, streaming everything."""
    from repro.bench.experiments import _rescale_transactions, synthetic_spec
    from repro.contracts.registry import genchain_family
    from repro.fabric.network import FabricNetwork
    from repro.logs.stream import RunStream
    from repro.workloads.synthetic import iter_synthetic_requests

    spec = synthetic_spec(plan.base, seed=channel.seed)
    _rescale_transactions(spec, channel.transactions)
    _split_send_rate(spec, len(plan.channels))
    config = spec.to_network_config()
    for org_name, count in channel.clients:
        config.org(org_name).num_clients = count

    deployment = genchain_family(num_keys=spec.num_keys).deploy()
    contract_name = deployment.contracts[0].name

    stream = RunStream()
    run_stats = RunStatsAccumulator()
    rates = RateSeriesAccumulator(plan.interval_seconds)
    stream.add_transaction_consumer(run_stats).add_record_consumer(rates)

    network = FabricNetwork(config, deployment.contracts, stream=stream)
    stats = network.run_streamed(iter_synthetic_requests(spec, contract_name))
    return summarize_channel(channel, stats, run_stats, rates, network.ledger)


def _split_send_rate(spec, channels: int) -> None:
    """Divide the base spec's arrival rate across ``channels``.

    Sharding splits *one* workload over N channels, so the aggregate
    arrival rate is the base spec's rate and each channel sees 1/N of
    it.  Without the split every channel would submit at the full base
    rate — N times the intended load — and, because the base specs are
    tuned near the network's service capacity, each channel would run in
    open-loop overload with an in-flight backlog (and therefore peak
    memory) growing linearly in its transaction budget, defeating the
    flat-memory property the sharded mode exists to provide.
    """
    spec.send_rate = spec.send_rate / channels
    if spec.send_rate_phases is not None:
        spec.send_rate_phases = [
            (count, rate / channels) for count, rate in spec.send_rate_phases
        ]
    if spec.send_rate_profile is not None:
        spec.send_rate_profile = [
            (start, rate / channels) for start, rate in spec.send_rate_profile
        ]


def run_sharded(plan: ShardPlan, progress: Progress | None = None) -> StitchedSummary:
    """Run every channel of ``plan`` and stitch the summaries."""
    note = progress or (lambda message: None)
    summaries = []
    for channel in plan.channels:
        summary = run_channel(plan, channel)
        note(
            f"{channel.name}: {summary.committed} committed / "
            f"{summary.aborted} aborted in {summary.blocks} blocks, "
            f"{summary.throughput:.1f} tps, "
            f"{summary.success_rate * 100.0:.1f}% success"
        )
        summaries.append(summary)
    return stitch(plan, summaries)


def run_registry_spec(spec) -> "ExperimentOutcome":  # noqa: F821 - doc name
    """Adapter for ``maker="sharded"`` registry specs (the suite path).

    A sharded experiment has no optimization plans and no batch network
    to analyze; its outcome is a single row built from the stitched
    totals, so ``repro suite --only large_scale`` renders it with the
    same table machinery as every other experiment.
    """
    from repro.bench.harness import ExperimentOutcome, RunRow

    base, channels = spec.maker_args
    total = spec.total_transactions
    if total is None:
        from repro.bench.experiments import SCALE_TXS

        total = SCALE_TXS
    from repro.shard.plan import plan_shards

    stitched = run_sharded(
        plan_shards(
            base=base,
            channels=int(channels),
            total_transactions=total,
            seed=spec.seed,
        )
    )
    row = RunRow(
        label="sharded",
        throughput=round(stitched.throughput, 1),
        latency=round(stitched.avg_latency, 2),
        success_pct=round(stitched.success_rate * 100.0, 1),
    )
    return ExperimentOutcome(
        name=spec.title,
        rows=[row],
        recommendations=[],
    )
