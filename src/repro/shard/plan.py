"""Multi-channel shard planning: split one big run into N channels.

A Fabric deployment scales writes by running several *channels*, each an
independent ordering service with its own ledger; clients are spread
across channels and a transaction lives entirely inside one of them.
:func:`plan_shards` reproduces that shape deterministically:

* the transaction budget is split across channels (remainder to the
  front, so channel order — not floating point — decides who gets one
  more);
* every channel derives its own seed from the plan seed and the channel
  name via SHA-256, the same scheme :func:`repro.bench.executor.derive_seed`
  uses for suite runs, so channels are statistically independent but
  bit-reproducible;
* the *global* client population — ``clients_per_org × channels``
  clients per organization — is partitioned over channels by hashing
  each client's name, mirroring how a real operator pins client pools to
  channels.  A channel that the hash leaves without a client for some
  org is bumped to one (a channel cannot run without clients).

The plan is pure data: :func:`repro.shard.runner.run_sharded` executes
it, one kernel-driven :class:`~repro.fabric.network.FabricNetwork` per
channel, and stitches the streamed summaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class ChannelPlan:
    """One channel of a sharded run: its seed, budget and client slice."""

    index: int
    name: str
    seed: int
    transactions: int
    #: ``(org name, client count)`` per organization, in org order.
    clients: tuple[tuple[str, int], ...]

    def to_dict(self) -> dict:
        """JSON-able form (embedded in summaries and digest goldens)."""
        return {
            "index": self.index,
            "name": self.name,
            "seed": self.seed,
            "transactions": self.transactions,
            "clients": [[org, count] for org, count in self.clients],
        }


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic multi-channel split of one large workload."""

    #: Synthetic base experiment (a :func:`repro.bench.experiments.synthetic_spec` name).
    base: str
    seed: int
    total_transactions: int
    #: Width of the stitched rate-series intervals (seconds).
    interval_seconds: float
    channels: tuple[ChannelPlan, ...]

    def to_dict(self) -> dict:
        """JSON-able form."""
        return {
            "base": self.base,
            "seed": self.seed,
            "total_transactions": self.total_transactions,
            "interval_seconds": self.interval_seconds,
            "channels": [channel.to_dict() for channel in self.channels],
        }


def derive_channel_seed(base_seed: int, channel_name: str) -> int:
    """Deterministic per-channel seed (stable across processes/versions)."""
    digest = hashlib.sha256(f"{base_seed}:{channel_name}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


def assign_clients(
    org_names: list[str], clients_per_org: int, channels: int
) -> list[list[tuple[str, int]]]:
    """Partition the global client population over ``channels`` by name hash.

    The population is ``clients_per_org * channels`` clients per org —
    the same per-channel density the base experiment would have if every
    channel simply copied it — assigned to channels by SHA-256 of the
    client name, so the split is deterministic and independent of channel
    count elsewhere in the plan.  Organizations the hash leaves empty on
    some channel get one client there (minimum viable channel membership).
    """
    if channels < 1:
        raise ValueError(f"need at least one channel, got {channels}")
    if clients_per_org < 1:
        raise ValueError(f"need at least one client per org, got {clients_per_org}")
    counts = [{org: 0 for org in org_names} for _ in range(channels)]
    for org in org_names:
        for index in range(clients_per_org * channels):
            name = f"{org}-client{index}"
            digest = hashlib.sha256(name.encode()).digest()
            channel = int.from_bytes(digest[:8], "big") % channels
            counts[channel][org] += 1
    return [
        [(org, max(1, by_org[org])) for org in org_names] for by_org in counts
    ]


def plan_shards(
    base: str = "default",
    channels: int = 4,
    total_transactions: int = 100_000,
    seed: int = 7,
    interval_seconds: float = 1.0,
) -> ShardPlan:
    """Build the deterministic :class:`ShardPlan` for one sharded run."""
    from repro.bench.experiments import synthetic_spec

    if total_transactions < channels:
        raise ValueError(
            f"{total_transactions} transactions cannot cover {channels} channels"
        )
    if interval_seconds <= 0:
        raise ValueError(f"interval_seconds must be positive, got {interval_seconds}")
    spec = synthetic_spec(base, seed=seed)  # validates the base name
    org_names = [f"Org{i}" for i in range(1, spec.num_orgs + 1)]
    client_split = assign_clients(org_names, spec.clients_per_org, channels)

    share, remainder = divmod(total_transactions, channels)
    plans = []
    for index in range(channels):
        name = f"channel{index}"
        plans.append(
            ChannelPlan(
                index=index,
                name=name,
                seed=derive_channel_seed(seed, name),
                transactions=share + (1 if index < remainder else 0),
                clients=tuple(client_split[index]),
            )
        )
    return ShardPlan(
        base=base,
        seed=seed,
        total_transactions=total_transactions,
        interval_seconds=interval_seconds,
        channels=tuple(plans),
    )
