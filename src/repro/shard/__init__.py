"""Multi-channel sharding: large-scale runs with bounded memory.

One large workload is split over N independent channels — each with its
own orderer, validation pipeline and kernel timeline — by a
deterministic :class:`ShardPlan`; each channel runs in streaming mode
(:mod:`repro.logs.stream`) with bounded accumulators, and the per-channel
summaries are stitched into one digestable report.  See docs/SCALING.md.
"""

from repro.shard.plan import (
    ChannelPlan,
    ShardPlan,
    assign_clients,
    derive_channel_seed,
    plan_shards,
)
from repro.shard.runner import run_channel, run_registry_spec, run_sharded
from repro.shard.summary import (
    ChannelSummary,
    RateSeriesAccumulator,
    RunStatsAccumulator,
    StitchedSummary,
    stitch,
    summarize_channel,
)

__all__ = [
    "ChannelPlan",
    "ChannelSummary",
    "RateSeriesAccumulator",
    "RunStatsAccumulator",
    "ShardPlan",
    "StitchedSummary",
    "assign_clients",
    "derive_channel_seed",
    "plan_shards",
    "run_channel",
    "run_registry_spec",
    "run_sharded",
    "stitch",
    "summarize_channel",
]
