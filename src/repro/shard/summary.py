"""Bounded per-channel summaries and the cross-channel stitcher.

The whole point of a sharded run is that nothing O(transactions) is ever
held: each channel registers two accumulators on its
:class:`~repro.logs.stream.RunStream` —

* :class:`RunStatsAccumulator` (transaction consumer: sees commits *and*
  aborts) folds the headline numbers, the abort-cause taxonomy of
  :mod:`repro.analysis.forensics`, conflict hot keys and per-org policy
  failures; state is bounded by the key space and org count, never by
  the transaction count;
* :class:`RateSeriesAccumulator` (record consumer) bins committed
  records into fixed-width wall-clock intervals with
  :func:`repro.logs.blockchain_log.interval_index` — the robust binning
  that :func:`~repro.logs.blockchain_log.slice_by_interval` uses — so
  state is bounded by the run's duration.

:func:`stitch` merges the per-channel :class:`ChannelSummary` objects
into one :class:`StitchedSummary`, whose :meth:`~StitchedSummary.digest`
is a SHA-256 over its canonical JSON — the fingerprint the large-scale
digest goldens pin (see docs/SCALING.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.analysis.forensics import CAUSES, TOP_N, classify_transaction
from repro.fabric.transaction import Transaction, TxStatus
from repro.logs.blockchain_log import LogRecord, interval_index
from repro.logs.eventlog import key_family
from repro.shard.plan import ChannelPlan, ShardPlan

#: Makespan floor when computing throughput, matching
#: :func:`repro.fabric.results.summarize_run`.
_MIN_MAKESPAN = 1e-9

#: Causes attributable to a specific key (mirrors the forensics pass).
_KEYED_CAUSES = frozenset(
    {"mvcc_conflict", "phantom_conflict", "early_abort_stale_read"}
)


class RunStatsAccumulator:
    """Streaming headline stats + abort taxonomy for one channel.

    Implements the transaction-consumer protocol: committed and aborted
    transactions are folded in as the run surfaces them.  Latency is
    accumulated as (sum, count, max) over successful transactions so the
    stitcher can merge channels exactly.
    """

    def __init__(self) -> None:
        self.total = 0
        self.submitted = 0
        self.successes = 0
        self.cause_counts = {cause: 0 for cause in CAUSES}
        self.key_hits: dict[str, int] = {}
        self.family_hits: dict[str, int] = {}
        self.org_failures: dict[str, int] = {}
        self.max_attempt = 1
        self.latency_sum = 0.0
        self.latency_count = 0
        self.latency_max = 0.0

    def consume(self, tx: Transaction) -> None:
        """Fold one finished (committed or aborted) transaction in."""
        self.total += 1
        if tx.attempt > self.max_attempt:
            self.max_attempt = tx.attempt
        if tx.abort_stage != "endorsement":
            self.submitted += 1
        cause = classify_transaction(tx)
        if cause is None:
            self.successes += 1
            latency = tx.latency
            if latency is not None:
                self.latency_sum += latency
                self.latency_count += 1
                if latency > self.latency_max:
                    self.latency_max = latency
            return
        self.cause_counts[cause] += 1
        if cause in _KEYED_CAUSES and tx.conflict_key is not None:
            self.key_hits[tx.conflict_key] = self.key_hits.get(tx.conflict_key, 0) + 1
            parsed = key_family(tx.conflict_key)
            if parsed is not None:
                self.family_hits[parsed[0]] = self.family_hits.get(parsed[0], 0) + 1
        if tx.status is TxStatus.ENDORSEMENT_FAILURE:
            for org in tx.missing_endorsements:
                self.org_failures[org] = self.org_failures.get(org, 0) + 1


class RateSeriesAccumulator:
    """Commit/failure counts per fixed wall-clock interval.

    Record consumer over the committed chain.  Intervals share a fixed
    origin (t = 0, the simulation epoch) so every channel's series lines
    up index-for-index when stitched; state is one pair of counters per
    *occupied* interval — bounded by run duration, not transactions.
    """

    def __init__(self, interval_seconds: float) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.interval_seconds = interval_seconds
        self.totals: dict[int, int] = {}
        self.failures: dict[int, int] = {}

    def consume(self, record: LogRecord) -> None:
        """Bin one committed record by its client submit time."""
        index = interval_index(record.client_timestamp, 0.0, self.interval_seconds)
        self.totals[index] = self.totals.get(index, 0) + 1
        if record.is_failure:
            self.failures[index] = self.failures.get(index, 0) + 1

    def consume_batch(self, records: list[LogRecord]) -> None:
        """Bin a whole block's records in one vectorized fold.

        Bit-identical to calling :meth:`consume` per record: the
        vectorized candidate index is the same IEEE division-and-truncate
        :func:`~repro.logs.blockchain_log.interval_index` starts from,
        the two half-open boundary predicates it nudges with are checked
        vectorized, and any record that would need nudging falls back to
        the scalar function.  Counting is integer-exact, so only dict
        insertion order can differ — unobservable through the sorted
        :meth:`series`.
        """
        if not records:
            return
        ins = self.interval_seconds
        stamps = np.array(
            [record.client_timestamp for record in records], dtype=np.float64
        )
        indices = (stamps / ins).astype(np.int64)
        misbinned = ((indices > 0) & (stamps < indices * ins)) | (
            stamps >= (indices + 1) * ins
        )
        if misbinned.any():
            for position in np.nonzero(misbinned)[0].tolist():
                indices[position] = interval_index(
                    float(stamps[position]), 0.0, ins
                )
        totals = self.totals
        for index, count in zip(*np.unique(indices, return_counts=True)):
            index = int(index)
            totals[index] = totals.get(index, 0) + int(count)
        failed = indices[
            np.fromiter(
                (record.is_failure for record in records),
                dtype=bool,
                count=len(records),
            )
        ]
        if failed.size:
            failures = self.failures
            for index, count in zip(*np.unique(failed, return_counts=True)):
                index = int(index)
                failures[index] = failures.get(index, 0) + int(count)

    def series(self) -> list[list[int]]:
        """``[interval index, committed, failed]`` rows, index-ascending."""
        return [
            [index, self.totals[index], self.failures.get(index, 0)]
            for index in sorted(self.totals)
        ]


@dataclass(frozen=True)
class ChannelSummary:
    """Everything one channel's run left behind — all of it bounded."""

    name: str
    seed: int
    planned_transactions: int
    issued: int
    committed: int
    aborted: int
    blocks: int
    data_blocks: int
    max_block_transactions: int
    cut_reasons: dict[str, int]
    submitted: int
    successes: int
    failures: int
    cause_counts: dict[str, int]
    #: Conflict-attributed keys, most-failed first: ``[key, failures]``.
    hot_keys: list[list]
    key_families: list[list]
    org_policy_failures: dict[str, int]
    max_attempt: int
    latency_sum: float
    latency_count: int
    latency_max: float
    first_submit: float
    last_commit: float
    #: ``[interval index, committed, failed]`` rows, index-ascending.
    rate_series: list[list[int]]

    @property
    def makespan(self) -> float:
        """First submission to last commit, floored like ``summarize_run``."""
        return max(self.last_commit - self.first_submit, _MIN_MAKESPAN)

    @property
    def success_rate(self) -> float:
        """Successes over submitted (endorsement-stage aborts excluded)."""
        return self.successes / self.submitted if self.submitted else 0.0

    @property
    def throughput(self) -> float:
        """Successful transactions per second of makespan."""
        return self.successes / self.makespan

    @property
    def avg_latency(self) -> float:
        """Mean end-to-end latency of successful transactions."""
        return self.latency_sum / self.latency_count if self.latency_count else 0.0

    def to_dict(self) -> dict:
        """Canonical JSON-able form (digest input — field set is pinned)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "planned_transactions": self.planned_transactions,
            "issued": self.issued,
            "committed": self.committed,
            "aborted": self.aborted,
            "blocks": self.blocks,
            "data_blocks": self.data_blocks,
            "max_block_transactions": self.max_block_transactions,
            "cut_reasons": dict(sorted(self.cut_reasons.items())),
            "submitted": self.submitted,
            "successes": self.successes,
            "failures": self.failures,
            "cause_counts": dict(self.cause_counts),
            "hot_keys": [list(item) for item in self.hot_keys],
            "key_families": [list(item) for item in self.key_families],
            "org_policy_failures": dict(sorted(self.org_policy_failures.items())),
            "max_attempt": self.max_attempt,
            "latency_sum": round(self.latency_sum, 9),
            "latency_count": self.latency_count,
            "latency_max": round(self.latency_max, 9),
            "first_submit": round(self.first_submit, 9),
            "last_commit": round(self.last_commit, 9),
            "rate_series": [list(row) for row in self.rate_series],
        }


def summarize_channel(
    channel: ChannelPlan,
    stats,
    run_stats: RunStatsAccumulator,
    rates: RateSeriesAccumulator,
    ledger,
) -> ChannelSummary:
    """Assemble one channel's :class:`ChannelSummary` after its run.

    ``stats`` is the :class:`~repro.fabric.network.StreamedRunStats` the
    run returned; ``ledger`` the channel's
    :class:`~repro.logs.stream.StreamingLedger` (counters only).
    """
    return ChannelSummary(
        name=channel.name,
        seed=channel.seed,
        planned_transactions=channel.transactions,
        issued=stats.issued,
        committed=stats.committed,
        aborted=stats.aborted,
        blocks=stats.blocks,
        data_blocks=stats.data_blocks,
        max_block_transactions=ledger.max_block_transactions,
        cut_reasons=dict(ledger.cut_reason_counts),
        submitted=run_stats.submitted,
        successes=run_stats.successes,
        failures=run_stats.total - run_stats.successes,
        cause_counts=dict(run_stats.cause_counts),
        hot_keys=[list(item) for item in _top(run_stats.key_hits)],
        key_families=[list(item) for item in _top(run_stats.family_hits)],
        org_policy_failures=dict(run_stats.org_failures),
        max_attempt=run_stats.max_attempt,
        latency_sum=run_stats.latency_sum,
        latency_count=run_stats.latency_count,
        latency_max=run_stats.latency_max,
        first_submit=stats.first_submit,
        last_commit=stats.last_commit,
        rate_series=rates.series(),
    )


@dataclass(frozen=True)
class StitchedSummary:
    """The merged report of one sharded run, digestable for goldens."""

    base: str
    seed: int
    total_transactions: int
    interval_seconds: float
    channels: list[ChannelSummary]

    # -- merged totals ----------------------------------------------------------

    @property
    def issued(self) -> int:
        return sum(channel.issued for channel in self.channels)

    @property
    def committed(self) -> int:
        return sum(channel.committed for channel in self.channels)

    @property
    def aborted(self) -> int:
        return sum(channel.aborted for channel in self.channels)

    @property
    def submitted(self) -> int:
        return sum(channel.submitted for channel in self.channels)

    @property
    def successes(self) -> int:
        return sum(channel.successes for channel in self.channels)

    @property
    def failures(self) -> int:
        return sum(channel.failures for channel in self.channels)

    @property
    def blocks(self) -> int:
        return sum(channel.blocks for channel in self.channels)

    @property
    def data_blocks(self) -> int:
        return sum(channel.data_blocks for channel in self.channels)

    @property
    def success_rate(self) -> float:
        """Successes over submitted, across all channels."""
        return self.successes / self.submitted if self.submitted else 0.0

    @property
    def makespan(self) -> float:
        """Earliest submission to latest commit across channels.

        Channels run concurrently in wall-clock terms (each has its own
        kernel timeline starting at t = 0), so the sharded run's span is
        the max, not the sum.
        """
        if not self.channels:
            return _MIN_MAKESPAN
        first = min(channel.first_submit for channel in self.channels)
        last = max(channel.last_commit for channel in self.channels)
        return max(last - first, _MIN_MAKESPAN)

    @property
    def throughput(self) -> float:
        """Aggregate successful transactions per second of makespan."""
        return self.successes / self.makespan

    @property
    def avg_latency(self) -> float:
        """Exact cross-channel mean latency (merged from channel sums).

        The merge divides by the summed *latency count*, never by the
        committed-transaction total, and degrades to 0.0 when no channel
        committed anything — an all-aborts run under a harsh fault
        scenario must stitch to defined values, not raise
        ``ZeroDivisionError`` (``tests/test_shard.py`` pins this).
        """
        count = sum(channel.latency_count for channel in self.channels)
        if not count:
            return 0.0
        return sum(channel.latency_sum for channel in self.channels) / count

    def cause_counts(self) -> dict[str, int]:
        """Merged abort-cause taxonomy (every cause, zeros included)."""
        merged = {cause: 0 for cause in CAUSES}
        for channel in self.channels:
            for cause, count in channel.cause_counts.items():
                merged[cause] += count
        return merged

    def hot_keys(self) -> list[list]:
        """Top conflict keys merged from the per-channel tops.

        Each channel reports its own top ``TOP_N``, so a key that is
        lukewarm everywhere can be under-counted — the bounded-memory
        trade documented in docs/SCALING.md.
        """
        merged: dict[str, int] = {}
        for channel in self.channels:
            for key, count in channel.hot_keys:
                merged[key] = merged.get(key, 0) + count
        return [list(item) for item in _top(merged)]

    def rate_series(self) -> list[list[int]]:
        """Per-interval ``[index, committed, failed]`` summed over channels."""
        totals: dict[int, int] = {}
        failures: dict[int, int] = {}
        for channel in self.channels:
            for index, committed, failed in channel.rate_series:
                totals[index] = totals.get(index, 0) + committed
                failures[index] = failures.get(index, 0) + failed
        return [
            [index, totals[index], failures.get(index, 0)]
            for index in sorted(totals)
        ]

    def to_dict(self) -> dict:
        """Canonical JSON-able form — the digest is computed over this."""
        org_failures: dict[str, int] = {}
        for channel in self.channels:
            for org, count in channel.org_policy_failures.items():
                org_failures[org] = org_failures.get(org, 0) + count
        return {
            "base": self.base,
            "seed": self.seed,
            "total_transactions": self.total_transactions,
            "interval_seconds": self.interval_seconds,
            "totals": {
                "issued": self.issued,
                "committed": self.committed,
                "aborted": self.aborted,
                "submitted": self.submitted,
                "successes": self.successes,
                "failures": self.failures,
                "blocks": self.blocks,
                "data_blocks": self.data_blocks,
                "success_rate": round(self.success_rate, 9),
                "makespan": round(self.makespan, 9),
                "throughput": round(self.throughput, 9),
                "avg_latency": round(self.avg_latency, 9),
                "cause_counts": self.cause_counts(),
                "hot_keys": self.hot_keys(),
                "org_policy_failures": dict(sorted(org_failures.items())),
                "rate_series": self.rate_series(),
            },
            "channels": [channel.to_dict() for channel in self.channels],
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (the golden fingerprint)."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def stitch(plan: ShardPlan, summaries: list[ChannelSummary]) -> StitchedSummary:
    """Merge per-channel summaries into the run's :class:`StitchedSummary`."""
    if len(summaries) != len(plan.channels):
        raise ValueError(
            f"plan has {len(plan.channels)} channels, got {len(summaries)} summaries"
        )
    return StitchedSummary(
        base=plan.base,
        seed=plan.seed,
        total_transactions=plan.total_transactions,
        interval_seconds=plan.interval_seconds,
        channels=list(summaries),
    )


def _top(hits: dict[str, int], n: int = TOP_N) -> list[tuple[str, int]]:
    """Most-hit entries first; count desc, then key asc (deterministic)."""
    return sorted(hits.items(), key=lambda item: (-item[1], item[0]))[:n]
