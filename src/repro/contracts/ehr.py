"""Electronic health records (EHR) contract.

Patients grant and revoke access rights for medical and research
institutes to query their records (Section 5.1.2); the paper drives it
with a 70% update-heavy workload.  ``patient:<id>`` holds the access-control
list — the contended record — while ``record:<id>`` holds the medical data.

The illogical path the paper prunes: *revoke access to records without
granting access* first.  The baseline commits such transactions read-only
(provenance of the attempt); :class:`PrunedEhrContract` aborts them at
endorsement.
"""

from __future__ import annotations

from repro.fabric.chaincode import (
    ChaincodeAbort,
    ChaincodeContext,
    Contract,
    contract_function,
)
from repro.fabric.state import WorldState
from repro.fabric.transaction import Version


def patient_key(patient_id: str) -> str:
    return f"patient:{patient_id}"


def record_key(patient_id: str) -> str:
    return f"record:{patient_id}"


class EhrContract(Contract):
    """Baseline EHR access-control contract."""

    name = "ehr"

    def __init__(self, num_patients: int = 200) -> None:
        self.num_patients = num_patients

    def patient_id(self, index: int) -> str:
        return f"PT{index:05d}"

    def setup(self, state: WorldState) -> None:
        for index in range(self.num_patients):
            pid = self.patient_id(index)
            state.put(patient_key(pid), {"access": []}, Version(0, 2 * index))
            state.put(
                record_key(pid), {"entries": [f"baseline-{pid}"]}, Version(0, 2 * index + 1)
            )

    @contract_function
    def grantAccess(self, ctx: ChaincodeContext, patient_id: str, institute: str) -> None:
        """Add ``institute`` to the patient's access list (update)."""
        acl = ctx.get_state(patient_key(patient_id)) or {"access": []}
        access = list(acl["access"])
        if institute not in access:
            access.append(institute)
        ctx.put_state(patient_key(patient_id), {"access": access})

    @contract_function
    def revokeAccess(self, ctx: ChaincodeContext, patient_id: str, institute: str) -> None:
        """Remove ``institute``; revoking a non-granted right is illogical."""
        acl = ctx.get_state(patient_key(patient_id)) or {"access": []}
        access = list(acl["access"])
        if institute not in access:
            self._handle_illogical(ctx, patient_id, institute)
            return
        access.remove(institute)
        ctx.put_state(patient_key(patient_id), {"access": access})

    @contract_function
    def queryRecord(self, ctx: ChaincodeContext, patient_id: str, institute: str) -> object:
        """Read a medical record, checking the access list first."""
        acl = ctx.get_state(patient_key(patient_id)) or {"access": []}
        if institute not in acl["access"]:
            return None
        return ctx.get_state(record_key(patient_id))

    @contract_function
    def addRecord(self, ctx: ChaincodeContext, patient_id: str, entry: str) -> None:
        """Append a medical entry to the patient's record."""
        record = ctx.get_state(record_key(patient_id)) or {"entries": []}
        entries = list(record["entries"])
        entries.append(entry)
        ctx.put_state(record_key(patient_id), {"entries": entries})

    def _handle_illogical(
        self, ctx: ChaincodeContext, patient_id: str, institute: str
    ) -> None:
        """Baseline behaviour: commit the attempt read-only."""
        del ctx, patient_id, institute


class PrunedEhrContract(EhrContract):
    """Pruned variant: aborts revoke-without-grant during endorsement."""

    name = "ehr"

    def _handle_illogical(
        self, ctx: ChaincodeContext, patient_id: str, institute: str
    ) -> None:
        del ctx
        raise ChaincodeAbort(
            f"pruned path: revokeAccess({patient_id}, {institute}) without grant"
        )
