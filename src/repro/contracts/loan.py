"""Loan application process (LAP) contract.

Reproduces Section 5.1.3: a smart contract derived from the BPI-2017 loan
event log of a Dutch financial institute.  The paper's first-cut data
model keys everything by ``employeeID`` — the value is the array of all
applications that employee handled — so every activity for any application
processed by a busy employee updates the same key.  Employee 1 handles the
most applications, making ``employee:EMP001`` a single hot key; BlockOptR
recommends *data model alteration*, and :class:`AlteredLoanContract` keys
by ``applicationID`` with the employee as an attribute instead.
"""

from __future__ import annotations

from typing import Any

from repro.fabric.chaincode import ChaincodeContext, Contract, contract_function
from repro.fabric.state import WorldState


def employee_key(employee_id: str) -> str:
    return f"employee:{employee_id}"


def application_key(application_id: str) -> str:
    return f"application:{application_id}"


#: Activities of the loan process flow, mirroring the BPI-2017 model.
LOAN_ACTIVITIES = (
    "createApplication",
    "submitApplication",
    "acceptApplication",
    "createOffer",
    "sendOffer",
    "validateApplication",
    "approveApplication",
    "rejectApplication",
    "cancelApplication",
)


class LoanContract(Contract):
    """Baseline LAP contract keyed by employee (the paper's first design)."""

    name = "loan"

    def setup(self, state: WorldState) -> None:
        del state  # employees appear on first write

    # -- internal helpers --------------------------------------------------------

    def _record_event(
        self,
        ctx: ChaincodeContext,
        activity: str,
        application_id: str,
        employee_id: str,
        loan_type: str = "personal",
        amount: float = 0.0,
    ) -> None:
        """Append/refresh this application's struct under the employee key."""
        portfolio: list[dict[str, Any]] = list(
            ctx.get_state(employee_key(employee_id)) or []
        )
        entry = None
        for candidate in portfolio:
            if candidate["application"] == application_id:
                entry = candidate
                break
        if entry is None:
            entry = {
                "application": application_id,
                "loan_type": loan_type,
                "amount": amount,
                "status": activity,
            }
            portfolio.append(entry)
        else:
            entry = dict(entry)
            entry["status"] = activity
            portfolio = [
                entry if item["application"] == application_id else item
                for item in portfolio
            ]
        ctx.put_state(employee_key(employee_id), portfolio)

    # One explicit contract function per loan-process activity: the paper's
    # contract has "a corresponding smart contract function" for every
    # activity in the process flow.

    @contract_function
    def createApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "createApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def submitApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "submitApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def acceptApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "acceptApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def createOffer(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "createOffer", application_id, employee_id, loan_type, amount)

    @contract_function
    def sendOffer(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "sendOffer", application_id, employee_id, loan_type, amount)

    @contract_function
    def validateApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "validateApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def approveApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "approveApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def rejectApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "rejectApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def cancelApplication(self, ctx, application_id, employee_id, loan_type="personal", amount=0.0):
        self._record_event(ctx, "cancelApplication", application_id, employee_id, loan_type, amount)

    @contract_function
    def queryEmployee(self, ctx: ChaincodeContext, employee_id: str) -> object:
        """All applications processed by one employee (cheap in this model)."""
        return ctx.get_state(employee_key(employee_id))


class AlteredLoanContract(LoanContract):
    """Altered data model: one key per application (the paper's redesign).

    ``applicationID`` becomes the primary key; the value is a struct with
    the employee, amount, type and status.  The hot employee key vanishes;
    querying an employee's portfolio now requires a scan.
    """

    name = "loan"

    def cost_factor(self, activity: str) -> float:
        # Portfolio queries now scan all applications instead of one key.
        return 5.0 if activity == "queryEmployee" else 1.0

    def _record_event(
        self,
        ctx: ChaincodeContext,
        activity: str,
        application_id: str,
        employee_id: str,
        loan_type: str = "personal",
        amount: float = 0.0,
    ) -> None:
        current = ctx.get_state(application_key(application_id))
        record = dict(current) if current else {
            "employee": employee_id,
            "loan_type": loan_type,
            "amount": amount,
        }
        record["status"] = activity
        record["employee"] = employee_id
        ctx.put_state(application_key(application_id), record)

    @contract_function
    def queryEmployee(self, ctx: ChaincodeContext, employee_id: str) -> object:
        matches = []
        for key, record in ctx.get_state_range(application_key(""), application_key("￿")):
            if record.get("employee") == employee_id:
                matches.append((key, record))
        return matches
