"""Supply chain management (SCM) contract.

The paper's running example (Sections 3, 5.1.2, 6.2): products move
through ``pushASN -> ship -> queryASN -> unload`` while ``queryProducts``
and ``updateAuditInfo`` happen at any time.

Design trade-off from Section 3, implemented literally: when an activity
arrives out of order (``ship`` without a prior ``pushASN``, ``unload``
without a prior ``ship``), the *baseline* contract commits the transaction
read-only — an immutable provenance record of the deviation — whereas the
*pruned* variant aborts it during endorsement so it never consumes
ordering and validation resources.

Data model: ``product:<id>`` holds the product's lifecycle state;
``updateAuditInfo`` reads the product but writes ``audit:<id>`` — a
disjoint write set, which is exactly what makes {updateAuditInfo}
reorderable against {pushASN, ship, unload} (Figure 3).
"""

from __future__ import annotations

from repro.fabric.chaincode import (
    ChaincodeAbort,
    ChaincodeContext,
    Contract,
    contract_function,
)
from repro.fabric.state import WorldState
from repro.fabric.transaction import Version

#: Lifecycle states a product moves through, in order.
ASN_PUSHED = "asn_pushed"
SHIPPED = "shipped"
UNLOADED = "unloaded"


def product_key(product_id: str) -> str:
    return f"product:{product_id}"


def audit_key(product_id: str) -> str:
    return f"audit:{product_id}"


class ScmContract(Contract):
    """Baseline SCM contract: commits illogical transitions read-only."""

    name = "scm"

    def __init__(self, num_products: int = 0) -> None:
        #: Products pre-registered at genesis (0 = created via pushASN).
        self.num_products = num_products

    def setup(self, state: WorldState) -> None:
        for index in range(self.num_products):
            state.put(product_key(f"P{index:05d}"), "registered", Version(0, index))

    # -- main product flow -----------------------------------------------------

    @contract_function
    def pushASN(self, ctx: ChaincodeContext, product_id: str) -> None:
        """Push the advanced shipping notice (creates/advances the product)."""
        ctx.get_state(product_key(product_id))
        ctx.put_state(product_key(product_id), ASN_PUSHED)

    @contract_function
    def ship(self, ctx: ChaincodeContext, product_id: str) -> None:
        state = ctx.get_state(product_key(product_id))
        if state != ASN_PUSHED:
            self._handle_illogical(ctx, "ship", product_id, state)
            return
        ctx.put_state(product_key(product_id), SHIPPED)

    @contract_function
    def queryASN(self, ctx: ChaincodeContext, product_id: str) -> object:
        return ctx.get_state(product_key(product_id))

    @contract_function
    def unload(self, ctx: ChaincodeContext, product_id: str) -> None:
        state = ctx.get_state(product_key(product_id))
        if state != SHIPPED:
            self._handle_illogical(ctx, "unload", product_id, state)
            return
        ctx.put_state(product_key(product_id), UNLOADED)

    # -- side activities ---------------------------------------------------------

    @contract_function
    def queryProducts(self, ctx: ChaincodeContext, start: str, end: str) -> list:
        """Range query over product records."""
        return ctx.get_state_range(product_key(start), product_key(end))

    @contract_function
    def updateAuditInfo(self, ctx: ChaincodeContext, product_id: str) -> None:
        """Audit entry: reads the product, writes only the audit record."""
        details = ctx.get_state(product_key(product_id))
        ctx.put_state(audit_key(product_id), {"product": product_id, "state": details})

    # -- deviation handling -------------------------------------------------------

    def _handle_illogical(
        self, ctx: ChaincodeContext, activity: str, product_id: str, state: object
    ) -> None:
        """Out-of-order transition: keep the read-only provenance record."""
        del ctx, activity, product_id, state


class PrunedScmContract(ScmContract):
    """Pruned variant: early-aborts illogical transitions at endorsement.

    Implements the paper's *process model pruning* recommendation inside
    the smart contract — anomalous transactions never reach ordering or
    validation.
    """

    name = "scm"

    def _handle_illogical(
        self, ctx: ChaincodeContext, activity: str, product_id: str, state: object
    ) -> None:
        del ctx
        raise ChaincodeAbort(
            f"pruned path: {activity}({product_id}) in state {state!r}"
        )
