"""Digital voting (DV) contract.

An election where every ``vote`` increments a per-party tally —
``party:<id>`` becomes a single hot key hammered during the voting phase.
BlockOptR detects the hotkey, sees it is accessed by only one activity,
and recommends *data model alteration*: :class:`AlteredVotingContract`
keys votes by ``voterID`` instead, and since each voter votes once there
are no more transaction dependencies (the paper observes 100% success).
"""

from __future__ import annotations

from repro.fabric.chaincode import ChaincodeContext, Contract, contract_function
from repro.fabric.state import WorldState
from repro.fabric.transaction import Version


def party_key(party_id: str) -> str:
    return f"party:{party_id}"


def voter_key(voter_id: str) -> str:
    return f"voter:{voter_id}"


ELECTION_KEY = "election:state"


class VotingContract(Contract):
    """Baseline DV contract: votes update the party tally (hot key)."""

    name = "voting"

    def __init__(self, num_parties: int = 5) -> None:
        self.num_parties = num_parties

    def party_id(self, index: int) -> str:
        return f"PARTY{index:02d}"

    def setup(self, state: WorldState) -> None:
        for index in range(self.num_parties):
            state.put(party_key(self.party_id(index)), {"votes": 0}, Version(0, index))
        state.put(ELECTION_KEY, "open", Version(0, self.num_parties))

    @contract_function
    def vote(self, ctx: ChaincodeContext, party_id: str, voter_id: str) -> None:
        """One vote: increments the party tally (read-modify-write)."""
        tally = ctx.get_state(party_key(party_id))
        if tally is None:
            return
        ctx.put_state(party_key(party_id), {"votes": tally["votes"] + 1})
        ctx.put_state(voter_key(voter_id), party_id)

    @contract_function
    def queryParties(self, ctx: ChaincodeContext) -> list:
        return ctx.get_state_range(party_key(""), party_key("￿"))

    @contract_function
    def seeResults(self, ctx: ChaincodeContext) -> dict:
        results = {}
        for key, value in ctx.get_state_range(party_key(""), party_key("￿")):
            results[key] = value["votes"]
        return results

    @contract_function
    def endElection(self, ctx: ChaincodeContext) -> None:
        ctx.get_state(ELECTION_KEY)
        ctx.put_state(ELECTION_KEY, "closed")


class AlteredVotingContract(VotingContract):
    """Altered data model: ``voterID`` is the primary key for votes.

    ``vote`` touches only the voter's own key — reads it to enforce the
    single-vote rule, then writes the choice — so concurrent votes never
    conflict.  Results are aggregated from the voter records.
    """

    name = "voting"

    @contract_function
    def vote(self, ctx: ChaincodeContext, party_id: str, voter_id: str) -> None:
        existing = ctx.get_state(voter_key(voter_id))
        if existing is not None:
            return  # single vote per voter; repeat attempts are read-only
        ctx.put_state(voter_key(voter_id), party_id)

    @contract_function
    def seeResults(self, ctx: ChaincodeContext) -> dict:
        results: dict[str, int] = {}
        for _, choice in ctx.get_state_range(voter_key(""), voter_key("￿")):
            results[choice] = results.get(choice, 0) + 1
        return results
