"""genChain: the generic synthetic smart contract.

The paper's synthetic workloads run against ``genChain`` (from the
authors' earlier HyperledgerLab study), a contract with one function per
basic transaction type — read, write, update, range read, delete — over a
prepopulated key space.  Keys are zero-padded so lexicographic order
matches numeric order, which keeps range reads meaningful.
"""

from __future__ import annotations

from repro.fabric.chaincode import ChaincodeContext, Contract, contract_function
from repro.fabric.state import WorldState
from repro.fabric.transaction import Version


class GenChainContract(Contract):
    """Generic read/write/update/range/delete contract."""

    name = "genchain"

    def __init__(self, num_keys: int = 1000, initial_value: int = 100) -> None:
        if num_keys < 1:
            raise ValueError(f"need at least one key, got {num_keys}")
        self.num_keys = num_keys
        self.initial_value = initial_value

    def key(self, index: int) -> str:
        """Stable zero-padded key name for rank ``index``."""
        return f"key{index:06d}"

    def setup(self, state: WorldState) -> None:
        for index in range(self.num_keys):
            state.put(self.key(index), self.initial_value, Version(block=0, tx=index))

    @contract_function
    def read(self, ctx: ChaincodeContext, key: str) -> object:
        """Point read; fails MVCC if the key is updated before commit."""
        return ctx.get_state(key)

    @contract_function
    def write(self, ctx: ChaincodeContext, key: str, value: object) -> None:
        """Blind write: no read, so it cannot cause an MVCC conflict itself."""
        ctx.put_state(key, value)

    @contract_function
    def update(self, ctx: ChaincodeContext, key: str, value: object = 0) -> None:
        """Read-modify-write — the conflict-prone transaction type.

        Writes a caller-supplied value (not an increment): the paper notes
        the synthetic contract has "no branches, increment/decrement
        operations or complex data model", which is why delta writes are
        never recommended for it.
        """
        current = ctx.get_state(key)
        del current
        ctx.put_state(key, value)

    @contract_function
    def range_read(self, ctx: ChaincodeContext, start: str, end: str) -> list:
        """Range scan; exposed to phantom read conflicts."""
        return ctx.get_state_range(start, end)

    @contract_function
    def delete(self, ctx: ChaincodeContext, key: str) -> None:
        """Delete after existence check (a read), like the original genChain."""
        ctx.get_state(key)
        ctx.delete_state(key)
