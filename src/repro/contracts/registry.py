"""Contract families: baseline + optimized variants, mechanically swappable.

The optimization applier (:mod:`repro.core.apply`) implements the paper's
Table 4 settings.  Data-level recommendations all amount to "update the
smart contract"; a :class:`ContractFamily` records which variant implements
which optimization so the applier can perform the swap without use-case
specific code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.contracts.drm import DeltaDrmContract, DrmContract, partitioned_drm
from repro.contracts.ehr import EhrContract, PrunedEhrContract
from repro.contracts.genchain import GenChainContract
from repro.contracts.loan import AlteredLoanContract, LoanContract
from repro.contracts.scm import PrunedScmContract, ScmContract
from repro.contracts.voting import AlteredVotingContract, VotingContract
from repro.fabric.chaincode import Contract

#: Variant keys — string forms of the optimization kinds that need a
#: contract change (values match OptimizationKind in repro.core).
PROCESS_MODEL_PRUNING = "process_model_pruning"
DELTA_WRITES = "delta_writes"
SMART_CONTRACT_PARTITIONING = "smart_contract_partitioning"
DATA_MODEL_ALTERATION = "data_model_alteration"


@dataclass
class ContractDeployment:
    """Contracts to install plus how activities route to them."""

    contracts: list[Contract]
    #: activity name -> contract name; activities absent from the map keep
    #: their original contract.
    routing: dict[str, str] = field(default_factory=dict)


@dataclass
class ContractFamily:
    """A use case's baseline deployment and its optimization variants."""

    family: str
    baseline: Callable[[], ContractDeployment]
    variants: dict[str, Callable[[], ContractDeployment]] = field(default_factory=dict)

    def deploy(self, variant: str | None = None) -> ContractDeployment:
        """Instantiate the baseline or a named variant deployment."""
        if variant is None:
            return self.baseline()
        if variant not in self.variants:
            raise KeyError(
                f"{self.family} has no variant for {variant!r}; "
                f"available: {sorted(self.variants)}"
            )
        return self.variants[variant]()

    def supports(self, variant: str) -> bool:
        return variant in self.variants


def _single(contract: Contract) -> ContractDeployment:
    return ContractDeployment(contracts=[contract])


def genchain_family(num_keys: int = 1000) -> ContractFamily:
    """genChain has generic functions only — no contract-level variants
    (the paper: "we cannot redesign the smart contract")."""
    return ContractFamily(
        family="genchain",
        baseline=lambda: _single(GenChainContract(num_keys=num_keys)),
    )


def scm_family(num_products: int = 0) -> ContractFamily:
    return ContractFamily(
        family="scm",
        baseline=lambda: _single(ScmContract(num_products=num_products)),
        variants={
            PROCESS_MODEL_PRUNING: lambda: _single(
                PrunedScmContract(num_products=num_products)
            ),
        },
    )


def drm_family(num_tracks: int = 100) -> ContractFamily:
    def _partitioned() -> ContractDeployment:
        contracts, routing = partitioned_drm(num_tracks=num_tracks)
        return ContractDeployment(contracts=contracts, routing=routing)

    return ContractFamily(
        family="drm",
        baseline=lambda: _single(DrmContract(num_tracks=num_tracks)),
        variants={
            DELTA_WRITES: lambda: _single(DeltaDrmContract(num_tracks=num_tracks)),
            SMART_CONTRACT_PARTITIONING: _partitioned,
        },
    )


def ehr_family(num_patients: int = 200) -> ContractFamily:
    return ContractFamily(
        family="ehr",
        baseline=lambda: _single(EhrContract(num_patients=num_patients)),
        variants={
            PROCESS_MODEL_PRUNING: lambda: _single(
                PrunedEhrContract(num_patients=num_patients)
            ),
        },
    )


def voting_family(num_parties: int = 5) -> ContractFamily:
    return ContractFamily(
        family="voting",
        baseline=lambda: _single(VotingContract(num_parties=num_parties)),
        variants={
            DATA_MODEL_ALTERATION: lambda: _single(
                AlteredVotingContract(num_parties=num_parties)
            ),
        },
    )


def loan_family() -> ContractFamily:
    return ContractFamily(
        family="loan",
        baseline=lambda: _single(LoanContract()),
        variants={
            DATA_MODEL_ALTERATION: lambda: _single(AlteredLoanContract()),
        },
    )
