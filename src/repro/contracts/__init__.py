"""Smart contracts used in the paper's evaluation.

One module per use case, each providing the baseline contract *and* the
optimized variants the paper implements after BlockOptR's recommendations:

* :mod:`~repro.contracts.genchain` — the synthetic generic contract behind
  the 24 synthetic workloads (Table 2/3).
* :mod:`~repro.contracts.scm` — supply chain management (+ pruned variant).
* :mod:`~repro.contracts.drm` — digital rights management (+ delta-write
  and partitioned variants).
* :mod:`~repro.contracts.ehr` — electronic health records (+ pruned).
* :mod:`~repro.contracts.voting` — digital voting (+ altered data model).
* :mod:`~repro.contracts.loan` — loan application process (+ altered
  data model).

:mod:`~repro.contracts.registry` groups each family's variants so the
optimization applier can swap contracts mechanically.
"""

from repro.contracts.drm import DeltaDrmContract, DrmContract, partitioned_drm
from repro.contracts.ehr import EhrContract, PrunedEhrContract
from repro.contracts.genchain import GenChainContract
from repro.contracts.loan import AlteredLoanContract, LoanContract
from repro.contracts.registry import (
    ContractDeployment,
    ContractFamily,
    drm_family,
    ehr_family,
    genchain_family,
    loan_family,
    scm_family,
    voting_family,
)
from repro.contracts.scm import PrunedScmContract, ScmContract
from repro.contracts.voting import AlteredVotingContract, VotingContract

__all__ = [
    "AlteredLoanContract",
    "AlteredVotingContract",
    "ContractDeployment",
    "ContractFamily",
    "DeltaDrmContract",
    "DrmContract",
    "EhrContract",
    "GenChainContract",
    "LoanContract",
    "PrunedEhrContract",
    "PrunedScmContract",
    "ScmContract",
    "VotingContract",
    "drm_family",
    "ehr_family",
    "genchain_family",
    "loan_family",
    "partitioned_drm",
    "scm_family",
    "voting_family",
]
