"""Digital rights management (DRM) contract.

Music catalog where ``play`` fires on every playback (70% of the paper's
workload) and increments the play count — making ``music:<id>`` a hot key
touched by four different activities.  BlockOptR recommends three fixes
here, each implemented as a variant:

* **Delta writes** (:class:`DeltaDrmContract`): ``play`` becomes a blind
  write to a unique delta key; ``calcRevenue`` aggregates the deltas with
  a range read (slower — the paper observes the same latency increase).
* **Smart contract partitioning** (:func:`partitioned_drm`): the play-count
  path (``play``, ``calcRevenue``) and the metadata path (``viewMetaData``,
  ``queryRightHolders``) split into two contracts with separate world
  states; ``create`` exists in both.
* **Activity reordering** is a workload-side change (no contract variant).
"""

from __future__ import annotations

from repro.fabric.chaincode import ChaincodeContext, Contract, contract_function
from repro.fabric.state import WorldState
from repro.fabric.transaction import Version


def music_key(music_id: str) -> str:
    return f"music:{music_id}"


def revenue_key(music_id: str) -> str:
    return f"revenue:{music_id}"


def delta_prefix(music_id: str) -> str:
    return f"delta:{music_id}:"


#: Royalty paid per play when computing right-holder revenue.
ROYALTY_PER_PLAY = 0.01


class DrmContract(Contract):
    """Baseline DRM: play count and metadata share one hot record."""

    name = "drm"

    def __init__(self, num_tracks: int = 100) -> None:
        self.num_tracks = num_tracks

    def track_id(self, index: int) -> str:
        return f"M{index:05d}"

    def setup(self, state: WorldState) -> None:
        for index in range(self.num_tracks):
            music_id = self.track_id(index)
            state.put(
                music_key(music_id),
                self._initial_record(music_id),
                Version(0, index),
            )

    def _initial_record(self, music_id: str) -> dict:
        return {
            "plays": 0,
            "metadata": {"title": f"Track {music_id}", "year": 2023},
            "rights": [f"artist-{music_id}", f"label-{music_id}"],
        }

    @contract_function
    def create(self, ctx: ChaincodeContext, music_id: str) -> None:
        """Register a new piece of music."""
        ctx.get_state(music_key(music_id))
        ctx.put_state(music_key(music_id), self._initial_record(music_id))

    @contract_function
    def play(self, ctx: ChaincodeContext, music_id: str) -> None:
        """Count one playback: read-modify-write on the hot record."""
        record = ctx.get_state(music_key(music_id))
        if record is None:
            return
        updated = dict(record)
        updated["plays"] = record["plays"] + 1
        ctx.put_state(music_key(music_id), updated)

    @contract_function
    def queryRightHolders(self, ctx: ChaincodeContext, music_id: str) -> object:
        record = ctx.get_state(music_key(music_id))
        return record["rights"] if record else None

    @contract_function
    def viewMetaData(self, ctx: ChaincodeContext, music_id: str) -> object:
        record = ctx.get_state(music_key(music_id))
        return record["metadata"] if record else None

    @contract_function
    def calcRevenue(self, ctx: ChaincodeContext, music_id: str) -> float:
        """Revenue of the right holders, proportional to the play count."""
        record = ctx.get_state(music_key(music_id))
        plays = record["plays"] if record else 0
        revenue = plays * ROYALTY_PER_PLAY
        ctx.put_state(revenue_key(music_id), revenue)
        return revenue


class DeltaDrmContract(DrmContract):
    """Delta-write variant: ``play`` is a blind write to a unique key.

    The update transaction becomes write-only (no read set, no MVCC
    exposure); aggregation moves into ``calcRevenue``, which range-scans
    the delta keys — trading its own latency for ``play`` success, as the
    paper reports.
    """

    name = "drm"

    #: Aggregating every delta key makes calcRevenue far more expensive
    #: than a point lookup; blind-write plays are slightly cheaper.
    COST_FACTORS = {"calcRevenue": 15.0, "play": 0.8}

    def cost_factor(self, activity: str) -> float:
        return self.COST_FACTORS.get(activity, 1.0)

    @contract_function
    def play(self, ctx: ChaincodeContext, music_id: str) -> None:
        ctx.put_state(f"{delta_prefix(music_id)}{ctx.nonce}", 1)

    @contract_function
    def calcRevenue(self, ctx: ChaincodeContext, music_id: str) -> float:
        record = ctx.get_state(music_key(music_id))
        base_plays = record["plays"] if record else 0
        prefix = delta_prefix(music_id)
        deltas = ctx.get_state_range(prefix, prefix + "￿")
        plays = base_plays + sum(value for _, value in deltas)
        revenue = plays * ROYALTY_PER_PLAY
        ctx.put_state(revenue_key(music_id), revenue)
        return revenue


class DrmPlayContract(DrmContract):
    """Partition 1: the play-count world state (play, calcRevenue, create).

    The metadata functions are overridden *without* the contract-function
    marker, so invoking them on this partition raises
    ``UnknownFunctionError`` — misrouting fails loudly.
    """

    name = "drm_play"

    def _initial_record(self, music_id: str) -> dict:
        return {"plays": 0, "rights": [f"artist-{music_id}", f"label-{music_id}"]}

    def viewMetaData(self, ctx: ChaincodeContext, music_id: str) -> object:
        raise NotImplementedError("viewMetaData lives in the drm_meta partition")

    def queryRightHolders(self, ctx: ChaincodeContext, music_id: str) -> object:
        raise NotImplementedError("queryRightHolders lives in the drm_meta partition")


class DrmMetaContract(DrmContract):
    """Partition 2: the metadata world state (viewMetaData, queryRightHolders).

    The primary key (``music:<id>``) is duplicated across both partitions
    — the paper's analogy to relational table layout — with different
    secondary data in each.
    """

    name = "drm_meta"

    def _initial_record(self, music_id: str) -> dict:
        return {
            "metadata": {"title": f"Track {music_id}", "year": 2023},
            "rights": [f"artist-{music_id}", f"label-{music_id}"],
        }

    def play(self, ctx: ChaincodeContext, music_id: str) -> None:
        raise NotImplementedError("play lives in the drm_play partition")

    def calcRevenue(self, ctx: ChaincodeContext, music_id: str) -> float:
        raise NotImplementedError("calcRevenue lives in the drm_play partition")


#: Activity routing for the partitioned deployment.
PARTITION_ROUTING: dict[str, str] = {
    "play": "drm_play",
    "calcRevenue": "drm_play",
    "create": "drm_play",
    "viewMetaData": "drm_meta",
    "queryRightHolders": "drm_meta",
}


def partitioned_drm(num_tracks: int = 100) -> tuple[list[Contract], dict[str, str]]:
    """The two partition contracts plus the activity->contract routing."""
    return (
        [DrmPlayContract(num_tracks=num_tracks), DrmMetaContract(num_tracks=num_tracks)],
        dict(PARTITION_ROUTING),
    )
