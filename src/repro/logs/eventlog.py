"""Event-log generation with automated CaseID derivation (Section 4.2).

Blockchain logs have no CaseID column, and usually no single attribute is
shared by all activities.  The paper derives a *common element* per use
case by analyzing function arguments and read-write sets; this module
automates that derivation:

1. Candidate *attribute families* are proposed from two sources —
   argument positions (``arg0``, ``arg1``, ...) and key families (the
   alphabetic prefix of accessed keys, e.g. ``product`` for
   ``product:P00042``).
2. Each family is scored by **activity coverage** (fraction of distinct
   activities whose transactions exhibit a value of the family), tie-broken
   by **granularity** (number of distinct values — the SCM productKey has
   thousands of products, while an employee attribute has a handful; finer
   granularity is the better case notion).
3. Every transaction is assigned the family's value as its CaseID; a trace
   is the sequence of activities sharing a CaseID, ordered by **commit
   order** (client timestamps do not survive ordering, Section 4.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

from repro.logs.blockchain_log import BlockchainLog, LogRecord

#: Keys look like ``family:value`` or ``family000123``; both yield a family.
_KEY_SPLIT_RE = re.compile(r"^([A-Za-z_]+)[:]?(.*)$")


@dataclass(frozen=True)
class Event:
    """One row of the derived event log."""

    case_id: str
    activity: str
    commit_order: int
    timestamp: float
    invoker: str
    status: str


@dataclass(frozen=True)
class CaseIdDerivation:
    """Result of the common-element analysis."""

    #: ``"arg:<i>"`` or ``"key:<family>"``.
    attribute: str
    coverage: float
    distinct_values: int
    scores: dict[str, tuple[float, int]] = field(default_factory=dict, hash=False)


@lru_cache(maxsize=65536)
def _key_family(key: str) -> tuple[str, str] | None:
    """Split ``key`` into ``(family, value)``; memoized — the same keys
    recur across thousands of records within one analysis.  Bounded so
    workloads with per-transaction-unique keys (DRM delta keys) cannot
    grow a long-lived suite worker's memory without limit."""
    match = _KEY_SPLIT_RE.match(key)
    if match is None:
        return None
    family, value = match.groups()
    if not family:
        return None
    return family, value or key


def key_family(key: str) -> tuple[str, str] | None:
    """Public form of the key-family split used across the analysis layers.

    ``key_family("asset:42")`` and ``key_family("asset000042")`` both
    return ``("asset", ...)``; keys with no recognizable family prefix
    return ``None``.  The forensics hot-key attribution
    (:mod:`repro.analysis.forensics`) groups conflicting keys with the
    same splitter the CaseID derivation uses, so both views agree on what
    a "key family" is.
    """
    return _key_family(key)


def _values_for(record: LogRecord, attribute: str) -> list[str]:
    """All values of ``attribute`` exhibited by one transaction."""
    kind, _, name = attribute.partition(":")
    if kind == "arg":
        index = int(name)
        if index < len(record.args):
            return [str(record.args[index])]
        return []
    values = []
    for key in sorted(record.rw_keys):
        parsed = _key_family(key)
        if parsed is not None and parsed[0] == name:
            values.append(parsed[1])
    return values


class CaseDerivationAccumulator:
    """Streaming common-element analysis (record-consumer protocol).

    Folds one record at a time into per-candidate coverage/value sets and
    returns from :meth:`finish` the same :class:`CaseIdDerivation` the
    batch :func:`derive_case_attribute` computes.  State is bounded by the
    *distinct* activities, argument positions, key families and attribute
    values — never by the transaction count.
    """

    def __init__(self) -> None:
        self._total = 0
        self._max_args = 0
        self._activities: set[str] = set()
        self._arg_coverage: dict[int, set[str]] = {}
        self._arg_values: dict[int, set[str]] = {}
        self._family_coverage: dict[str, set[str]] = {}
        self._family_values: dict[str, set[str]] = {}
        #: Candidate -> number of records exhibiting a value (the bounded
        #: event count the channel summaries report without materializing
        #: the event list).
        self._covered_records: dict[str, int] = {}

    def consume(self, record: LogRecord) -> None:
        """Fold one record's arguments and key families in."""
        self._total += 1
        activity = record.activity
        self._activities.add(activity)
        args = record.args
        if len(args) > self._max_args:
            self._max_args = len(args)
        covered_records = self._covered_records
        for index, arg in enumerate(args):
            coverage = self._arg_coverage.get(index)
            if coverage is None:
                coverage = self._arg_coverage[index] = set()
                self._arg_values[index] = set()
            coverage.add(activity)
            self._arg_values[index].add(str(arg))
            candidate = f"arg:{index}"
            covered_records[candidate] = covered_records.get(candidate, 0) + 1
        seen_families: set[str] = set()
        for key in record.rw_keys:
            parsed = _key_family(key)
            if parsed is None:
                continue
            family, value = parsed
            coverage = self._family_coverage.get(family)
            if coverage is None:
                coverage = self._family_coverage[family] = set()
                self._family_values[family] = set()
            coverage.add(activity)
            self._family_values[family].add(value)
            seen_families.add(family)
        for family in seen_families:
            candidate = f"key:{family}"
            covered_records[candidate] = covered_records.get(candidate, 0) + 1

    def covered_records(self, attribute: str) -> int:
        """Records that exhibit at least one value of ``attribute``."""
        return self._covered_records.get(attribute, 0)

    def finish(self) -> CaseIdDerivation:
        """Score every candidate and pick the common element."""
        if not self._total:
            raise ValueError("cannot derive a case attribute from an empty log")
        candidates = [f"arg:{i}" for i in range(self._max_args)]
        candidates.extend(f"key:{family}" for family in sorted(self._family_coverage))
        n_activities = len(self._activities)
        scores: dict[str, tuple[float, int]] = {}
        for attribute in candidates:
            kind, _, name = attribute.partition(":")
            if kind == "arg":
                index = int(name)
                covered = self._arg_coverage.get(index, set())
                values = self._arg_values.get(index, set())
            else:
                covered = self._family_coverage[name]
                values = self._family_values[name]
            scores[attribute] = (len(covered) / n_activities, len(values))
        best = max(scores.items(), key=lambda item: (item[1][0], item[1][1], item[0]))
        attribute, (coverage, distinct) = best
        return CaseIdDerivation(
            attribute=attribute,
            coverage=coverage,
            distinct_values=distinct,
            scores=scores,
        )


def derive_case_attribute(log: BlockchainLog) -> CaseIdDerivation:
    """Find the common element best suited as the CaseID.

    Thin batch wrapper over :class:`CaseDerivationAccumulator`.  Raises
    ``ValueError`` on an empty log — there is nothing to derive.
    """
    accumulator = CaseDerivationAccumulator()
    for record in log.records:
        accumulator.consume(record)
    return accumulator.finish()


@dataclass
class EventLog:
    """Derived event log: events with CaseIDs, grouped into traces."""

    events: list[Event]
    derivation: CaseIdDerivation

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def cases(self) -> dict[str, list[Event]]:
        """Events grouped by case, each ordered by commit order."""
        grouped: dict[str, list[Event]] = {}
        for event in sorted(self.events, key=lambda e: e.commit_order):
            grouped.setdefault(event.case_id, []).append(event)
        return grouped

    def traces(self) -> list[tuple[str, ...]]:
        """Activity sequences of all cases (one tuple per case)."""
        return [
            tuple(event.activity for event in events)
            for events in self.cases().values()
        ]

    def trace_variants(self) -> dict[tuple[str, ...], int]:
        """Distinct traces with their frequencies, most frequent first."""
        variants: dict[tuple[str, ...], int] = {}
        for trace in self.traces():
            variants[trace] = variants.get(trace, 0) + 1
        return dict(sorted(variants.items(), key=lambda item: (-item[1], item[0])))

    def activities(self) -> list[str]:
        return sorted({event.activity for event in self.events})

    @staticmethod
    def from_blockchain_log(
        log: BlockchainLog,
        case_attribute: str | None = None,
        include_failures: bool = True,
    ) -> "EventLog":
        """Build the event log, deriving the CaseID attribute if not given.

        Thin batch wrapper: derivation and event materialization each
        stream the records through their accumulator.  Transactions with
        no value for the case attribute (e.g. a range read in an
        argument-based derivation) are assigned to their first matching
        value or skipped when none exists; ``include_failures`` keeps
        failed transactions (they are real process steps and the evidence
        behind pruning recommendations).
        """
        derivation = (
            derive_case_attribute(log)
            if case_attribute is None
            else CaseIdDerivation(attribute=case_attribute, coverage=0.0, distinct_values=0)
        )
        accumulator = EventLogAccumulator(
            derivation.attribute, include_failures=include_failures
        )
        for record in log.records:
            accumulator.consume(record)
        return EventLog(events=accumulator.finish(), derivation=derivation)


class EventLogAccumulator:
    """Streaming event materialization for a known case attribute.

    Record-consumer protocol; :meth:`finish` returns the event list.
    Note the event list itself is O(transactions) — large-scale runs use
    :class:`CaseDerivationAccumulator` (bounded) and skip materialization.
    """

    def __init__(self, attribute: str, include_failures: bool = True) -> None:
        self.attribute = attribute
        self.include_failures = include_failures
        self._events: list[Event] = []

    def consume(self, record: LogRecord) -> None:
        """Append the record's event, if it has a case value."""
        if not self.include_failures and record.is_failure:
            return
        values = _values_for(record, self.attribute)
        if not values:
            return
        self._events.append(
            Event(
                case_id=values[0],
                activity=record.activity,
                commit_order=record.commit_order,
                timestamp=record.client_timestamp,
                invoker=record.invoker,
                status=record.status.value,
            )
        )

    def finish(self) -> list[Event]:
        """The materialized events, in consumption order."""
        return self._events
