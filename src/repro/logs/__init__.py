"""Blockchain log pipeline (paper Sections 4.1-4.2).

``extract`` reads the ledger of a simulated network, drops configuration
transactions, and produces the nine-attribute :class:`BlockchainLog`;
``export`` round-trips it through CSV/JSON (the preprocessed log the
paper releases for process-mining research); ``eventlog`` derives CaseIDs
from a common element and yields the traces process mining consumes.
"""

from repro.logs.blockchain_log import (
    BlockchainLog,
    ChannelConfig,
    LogRecord,
    interval_index,
    record_from_transaction,
    validate_record,
)
from repro.logs.eventlog import (
    CaseDerivationAccumulator,
    CaseIdDerivation,
    Event,
    EventLog,
    EventLogAccumulator,
    derive_case_attribute,
)
from repro.logs.export import (
    log_from_csv,
    log_from_json,
    log_to_csv,
    log_to_json,
)
from repro.logs.extract import extract_blockchain_log

__all__ = [
    "BlockchainLog",
    "CaseDerivationAccumulator",
    "CaseIdDerivation",
    "ChannelConfig",
    "Event",
    "EventLog",
    "EventLogAccumulator",
    "LogRecord",
    "derive_case_attribute",
    "extract_blockchain_log",
    "interval_index",
    "record_from_transaction",
    "validate_record",
    "log_from_csv",
    "log_from_json",
    "log_to_csv",
    "log_to_json",
]
