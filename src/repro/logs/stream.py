"""Streaming record pipeline: consume a run block by block, O(blocks) memory.

The batch pipeline materializes the whole ledger, extracts a
:class:`~repro.logs.blockchain_log.BlockchainLog` and post-processes it —
O(transactions) memory, which caps realistic scale.  This module is the
streaming alternative:

* :class:`RunStream` is the hub.  Consumers register up front; every
  committed block is converted to :class:`LogRecord`s (config
  transactions update the captured :class:`ChannelConfig` instead) and
  fanned out record by record, exactly as the batch extraction would
  have ordered them.  Aborted transactions that never reach the chain
  are fanned out to transaction consumers as they happen.
* :class:`StreamingLedger` is the ledger stand-in: it enforces the same
  number/hash chain-continuity rules as
  :class:`~repro.fabric.ledger.Ledger`, forwards each appended block to
  the stream, and then lets the block go — no block list, no record
  list, no event list.

A *record consumer* implements ``consume(record)``; a *transaction
consumer* implements ``consume(tx)`` and additionally sees aborted
transactions (the forensics taxonomy needs abort stages and missing
endorsements that :class:`LogRecord` does not carry).  ``finish()``
semantics are left to each accumulator — the stream never calls it, the
harvesting caller does.  The accumulators in :mod:`repro.core.metrics`,
:mod:`repro.analysis.forensics` and :mod:`repro.logs.eventlog` implement
these protocols; see docs/SCALING.md for the full contract.
"""

from __future__ import annotations

from typing import Protocol

from repro.fabric.ledger import Block, Ledger
from repro.fabric.transaction import Transaction
from repro.logs.blockchain_log import (
    ChannelConfig,
    LogRecord,
    record_from_transaction,
    validate_record,
)


class RecordConsumer(Protocol):
    """Anything that folds committed log records in one at a time."""

    def consume(self, record: LogRecord) -> None: ...  # pragma: no cover


class BatchRecordConsumer(Protocol):
    """A record consumer that can fold a whole block's records in one call.

    ``consume_batch(records)`` must be exactly equivalent to calling
    ``consume`` on each record in order — the batch kernel tier uses it
    to replace per-record Python dispatch with one vectorized fold (see
    :meth:`repro.shard.summary.RateSeriesAccumulator.consume_batch`),
    and every digest golden holds under either fan-out mode.
    """

    def consume_batch(self, records: list[LogRecord]) -> None: ...  # pragma: no cover


class TransactionConsumer(Protocol):
    """Anything that folds finished transactions in, aborts included."""

    def consume(self, tx: Transaction) -> None: ...  # pragma: no cover


#: Channel-configuration defaults when the genesis config omits a key —
#: identical to the batch extraction's defaults.
_CONFIG_DEFAULTS: dict[str, object] = {
    "block_count": 100,
    "block_timeout": 1.0,
    "block_bytes": 2 * 1024 * 1024,
    "endorsement_policy": "",
}


class RunStream:
    """Fan-out hub between the committing ledger and streaming consumers.

    Records are emitted in commit order with the same ``commit_order`` /
    ``block_position`` numbering the batch extraction assigns, so a
    consumer fed live produces byte-identical results to one fed from
    :func:`~repro.logs.extract.extract_blockchain_log`.
    """

    def __init__(self) -> None:
        self.record_consumers: list[RecordConsumer] = []
        self.tx_consumers: list[TransactionConsumer] = []
        #: Channel configuration captured from config transactions; the
        #: last config update wins, mirroring Fabric's semantics.
        self.config: ChannelConfig | None = None
        self._settings = dict(_CONFIG_DEFAULTS)
        self._order = 0
        self.records_streamed = 0
        self.aborts_streamed = 0
        self._batch_fanout = False

    def add_record_consumer(self, consumer: RecordConsumer) -> "RunStream":
        self.record_consumers.append(consumer)
        return self

    def add_transaction_consumer(self, consumer: TransactionConsumer) -> "RunStream":
        self.tx_consumers.append(consumer)
        return self

    def enable_batch_fanout(self) -> "RunStream":
        """Fan records out block-at-a-time instead of one by one.

        Enabled by the batch kernel tier: each committed block's records
        are collected first, then handed to record consumers — via
        ``consume_batch`` where implemented (the
        :class:`BatchRecordConsumer` protocol), via per-record ``consume``
        otherwise.  Each consumer still sees every record exactly once in
        commit order, so accumulator state is identical to the per-record
        fan-out; only the interleaving *between* consumers changes, which
        is unobservable for independent accumulators.
        """
        self._batch_fanout = True
        return self

    def accept_block(self, block: Block) -> int:
        """Convert and fan out one committed block; returns data-tx count.

        The block is not retained: once every consumer has folded its
        records in, the only references left are the caller's.
        """
        if self._batch_fanout:
            return self._accept_block_batched(block)
        streamed = 0
        for position, tx in enumerate(block.transactions):
            if tx.is_config:
                self._fold_config(tx)
                continue
            record = record_from_transaction(tx, self._order, position)
            validate_record(record, self._order - 1)
            self._order += 1
            streamed += 1
            for consumer in self.record_consumers:
                consumer.consume(record)
            for consumer in self.tx_consumers:
                consumer.consume(tx)
        self.records_streamed += streamed
        return streamed

    def _fold_config(self, tx: Transaction) -> None:
        """Apply one config transaction to the captured channel settings."""
        for key, value in tx.args:
            if key in self._settings:
                self._settings[key] = value
        self.config = ChannelConfig(
            block_count=int(self._settings["block_count"]),
            block_timeout=float(self._settings["block_timeout"]),
            block_bytes=int(self._settings["block_bytes"]),
            endorsement_policy=str(self._settings["endorsement_policy"]),
        )

    def _accept_block_batched(self, block: Block) -> int:
        """Batch-tier fan-out: build the block's records, then fold cohorts."""
        records: list[LogRecord] = []
        data_txs: list[Transaction] = []
        for position, tx in enumerate(block.transactions):
            if tx.is_config:
                self._fold_config(tx)
                continue
            record = record_from_transaction(tx, self._order, position)
            validate_record(record, self._order - 1)
            self._order += 1
            records.append(record)
            data_txs.append(tx)
        if records:
            for consumer in self.record_consumers:
                batch = getattr(consumer, "consume_batch", None)
                if batch is not None:
                    batch(records)
                else:
                    for record in records:
                        consumer.consume(record)
            for consumer in self.tx_consumers:
                for tx in data_txs:
                    consumer.consume(tx)
        self.records_streamed += len(records)
        return len(records)

    def accept_abort(self, tx: Transaction) -> None:
        """Fan out a transaction that aborted before reaching the chain.

        Only transaction consumers see aborts: the blockchain log (and
        therefore every record consumer) holds committed transactions,
        matching the batch extraction's default.
        """
        self.aborts_streamed += 1
        for consumer in self.tx_consumers:
            consumer.consume(tx)


class StreamingLedger:
    """Hash-chained ledger stand-in that streams blocks instead of keeping them.

    Duck-typed for the validator/network append path (``height``,
    ``tip_hash``, ``append``); the read-back API of
    :class:`~repro.fabric.ledger.Ledger` is deliberately absent — batch
    post-processing of a streamed run is a contradiction, and attempting
    it fails loudly.
    """

    GENESIS_HASH = Ledger.GENESIS_HASH

    def __init__(self, stream: RunStream) -> None:
        self.stream = stream
        self._height = 0
        self._tip_hash = self.GENESIS_HASH
        self.blocks_committed = 0
        #: Blocks containing at least one non-config transaction.
        self.data_blocks = 0
        #: Non-config transactions streamed off the chain.
        self.committed_txs = 0
        #: Commit time of the newest data block (None until one commits).
        self.last_commit_time: float | None = None
        #: Largest single block seen — the run's true record high-water.
        self.max_block_transactions = 0
        self.cut_reason_counts: dict[str, int] = {}

    @property
    def height(self) -> int:
        """Number of blocks committed so far (the next block number)."""
        return self._height

    @property
    def tip_hash(self) -> str:
        """Hash of the newest block (chained into the next one)."""
        return self._tip_hash

    def append(self, block: Block) -> None:
        """Verify chain continuity, stream the block out, keep only counters."""
        if block.number != self._height:
            raise ValueError(
                f"block number {block.number} does not extend ledger height {self._height}"
            )
        if block.previous_hash != self._tip_hash:
            raise ValueError("block does not chain from current tip")
        self._height += 1
        self._tip_hash = block.block_hash
        self.blocks_committed += 1
        size = len(block.transactions)
        if size > self.max_block_transactions:
            self.max_block_transactions = size
        self.cut_reason_counts[block.cut_reason] = (
            self.cut_reason_counts.get(block.cut_reason, 0) + 1
        )
        streamed = self.stream.accept_block(block)
        if streamed:
            self.data_blocks += 1
            self.committed_txs += streamed
            if block.committed_at is not None:
                self.last_commit_time = block.committed_at

    def transactions(self, include_config: bool = True):
        """Unavailable by design — the whole point is not keeping them."""
        raise RuntimeError(
            "a streaming ledger retains no transactions; register consumers "
            "on the RunStream before the run instead"
        )

    def __len__(self) -> int:
        return self._height

    def __iter__(self):
        raise RuntimeError(
            "a streaming ledger retains no blocks; register consumers "
            "on the RunStream before the run instead"
        )
