"""Ledger extraction and cleaning (the paper's data-preprocessing step).

``BlockOptR registers as a client on the Fabric network, reads the entire
blockchain [...] the log is cleaned by removing the configuration and
setup-related transactions``.  Here the ledger object plays the role of
the fetched chain: configuration transactions yield the
:class:`~repro.logs.blockchain_log.ChannelConfig` (the paper extracts
block count/timeout from the log) and are then dropped from the records.
"""

from __future__ import annotations

from repro.fabric.ledger import Ledger
from repro.fabric.network import FabricNetwork
from repro.logs.blockchain_log import BlockchainLog, ChannelConfig, LogRecord


def _config_from_ledger(ledger: Ledger) -> ChannelConfig:
    """Recover the channel configuration from config transactions.

    The *last* config transaction wins, mirroring Fabric's config-update
    semantics.
    """
    settings: dict[str, object] = {
        "block_count": 100,
        "block_timeout": 1.0,
        "block_bytes": 2 * 1024 * 1024,
        "endorsement_policy": "",
    }
    found = False
    for tx in ledger.transactions(include_config=True):
        if not tx.is_config:
            continue
        found = True
        for key, value in tx.args:
            if key in settings:
                settings[key] = value
    if not found:
        raise ValueError("ledger contains no configuration transaction")
    return ChannelConfig(
        block_count=int(settings["block_count"]),
        block_timeout=float(settings["block_timeout"]),
        block_bytes=int(settings["block_bytes"]),
        endorsement_policy=str(settings["endorsement_policy"]),
    )


def extract_blockchain_log(
    source: FabricNetwork | Ledger,
    interval_seconds: float = 1.0,
    include_early_aborts: bool = False,
) -> BlockchainLog:
    """Extract the nine-attribute blockchain log from a ledger or network.

    ``include_early_aborts`` additionally appends transactions that never
    reached the chain (endorsement-phase aborts); real Fabric ledgers do
    not contain them, so the default matches the paper.
    """
    if isinstance(source, FabricNetwork):
        ledger = source.ledger
        early_aborts = source.aborted if include_early_aborts else []
    else:
        ledger = source
        early_aborts = []

    config = _config_from_ledger(ledger)
    records: list[LogRecord] = []
    order = 0
    for block in ledger:
        for position, tx in enumerate(block.transactions):
            if tx.is_config:
                continue
            records.append(_to_record(tx, order, position))
            order += 1
    for tx in early_aborts:
        records.append(_to_record(tx, order, -1))
        order += 1
    log = BlockchainLog(records=records, config=config, interval_seconds=interval_seconds)
    log.validate()
    return log


def _to_record(tx, order: int, block_position: int) -> LogRecord:
    read_versions = {key: (v.block, v.tx) for key, v in tx.rwset.reads.items()}
    read_keys = set(tx.rwset.reads)
    for query in tx.rwset.range_queries:
        for key, version in query.results:
            read_keys.add(key)
            read_versions.setdefault(key, (version.block, version.tx))
    return LogRecord(
        commit_order=order,
        tx_id=tx.tx_id,
        client_timestamp=tx.client_timestamp,
        activity=tx.activity,
        args=tuple(tx.args),
        endorsers=tuple(tx.endorsers),
        invoker=tx.invoker_client,
        invoker_org=tx.invoker_org,
        read_keys=tuple(sorted(read_keys)),
        write_keys=tuple(sorted(tx.rwset.write_keys)),
        writes=dict(tx.rwset.writes),
        read_versions=read_versions,
        range_reads=tuple(
            (query.start, query.end) for query in tx.rwset.range_queries
        ),
        status=tx.status,
        tx_type=tx.tx_type,
        block_number=tx.block_number if tx.block_number is not None else -1,
        block_position=block_position,
        commit_time=tx.commit_time if tx.commit_time is not None else -1.0,
        contract=tx.contract,
        attempt=tx.attempt,
    )
