"""Ledger extraction and cleaning (the paper's data-preprocessing step).

``BlockOptR registers as a client on the Fabric network, reads the entire
blockchain [...] the log is cleaned by removing the configuration and
setup-related transactions``.  Here the ledger object plays the role of
the fetched chain: configuration transactions yield the
:class:`~repro.logs.blockchain_log.ChannelConfig` (the paper extracts
block count/timeout from the log) and are then dropped from the records.
"""

from __future__ import annotations

from repro.fabric.ledger import Ledger
from repro.fabric.network import FabricNetwork
from repro.logs.blockchain_log import (
    BlockchainLog,
    ChannelConfig,
    LogRecord,
    record_from_transaction,
)


def _config_from_ledger(ledger: Ledger) -> ChannelConfig:
    """Recover the channel configuration from config transactions.

    The *last* config transaction wins, mirroring Fabric's config-update
    semantics.
    """
    settings: dict[str, object] = {
        "block_count": 100,
        "block_timeout": 1.0,
        "block_bytes": 2 * 1024 * 1024,
        "endorsement_policy": "",
    }
    found = False
    for tx in ledger.transactions(include_config=True):
        if not tx.is_config:
            continue
        found = True
        for key, value in tx.args:
            if key in settings:
                settings[key] = value
    if not found:
        raise ValueError("ledger contains no configuration transaction")
    return ChannelConfig(
        block_count=int(settings["block_count"]),
        block_timeout=float(settings["block_timeout"]),
        block_bytes=int(settings["block_bytes"]),
        endorsement_policy=str(settings["endorsement_policy"]),
    )


def extract_blockchain_log(
    source: FabricNetwork | Ledger,
    interval_seconds: float = 1.0,
    include_early_aborts: bool = False,
) -> BlockchainLog:
    """Extract the nine-attribute blockchain log from a ledger or network.

    ``include_early_aborts`` additionally appends transactions that never
    reached the chain (endorsement-phase aborts); real Fabric ledgers do
    not contain them, so the default matches the paper.
    """
    if isinstance(source, FabricNetwork):
        ledger = source.ledger
        early_aborts = source.aborted if include_early_aborts else []
    else:
        ledger = source
        early_aborts = []

    config = _config_from_ledger(ledger)
    records: list[LogRecord] = []
    order = 0
    for block in ledger:
        for position, tx in enumerate(block.transactions):
            if tx.is_config:
                continue
            records.append(record_from_transaction(tx, order, position))
            order += 1
    for tx in early_aborts:
        records.append(record_from_transaction(tx, order, -1))
        order += 1
    log = BlockchainLog(records=records, config=config, interval_seconds=interval_seconds)
    log.validate()
    return log
