"""CSV/JSON round-trip for blockchain logs.

The paper's preprocessing step saves the chain as JSON and converts the
cleaned log to CSV; these functions reproduce both formats so that
exported logs can be re-analyzed (or shared) without the simulator.
Structured cells (args, read-write sets) are JSON-encoded inside the CSV.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.fabric.transaction import TxStatus, TxType
from repro.logs.blockchain_log import BlockchainLog, ChannelConfig, LogRecord

#: CSV column order; stable so downstream tooling can rely on it.
CSV_COLUMNS = (
    "commit_order",
    "tx_id",
    "client_timestamp",
    "activity",
    "args",
    "endorsers",
    "invoker",
    "invoker_org",
    "read_keys",
    "write_keys",
    "writes",
    "read_versions",
    "range_reads",
    "status",
    "tx_type",
    "block_number",
    "block_position",
    "commit_time",
    "contract",
)


def _record_to_dict(record: LogRecord) -> dict[str, Any]:
    return {
        "commit_order": record.commit_order,
        "tx_id": record.tx_id,
        "client_timestamp": record.client_timestamp,
        "activity": record.activity,
        "args": list(record.args),
        "endorsers": list(record.endorsers),
        "invoker": record.invoker,
        "invoker_org": record.invoker_org,
        "read_keys": list(record.read_keys),
        "write_keys": list(record.write_keys),
        "writes": record.writes,
        "read_versions": {key: list(value) for key, value in record.read_versions.items()},
        "range_reads": [list(bounds) for bounds in record.range_reads],
        "status": record.status.value,
        "tx_type": record.tx_type.value,
        "block_number": record.block_number,
        "block_position": record.block_position,
        "commit_time": record.commit_time,
        "contract": record.contract,
        "attempt": record.attempt,
    }


def _record_from_dict(data: dict[str, Any]) -> LogRecord:
    return LogRecord(
        commit_order=int(data["commit_order"]),
        tx_id=str(data["tx_id"]),
        client_timestamp=float(data["client_timestamp"]),
        activity=str(data["activity"]),
        args=tuple(data["args"]),
        endorsers=tuple(data["endorsers"]),
        invoker=str(data["invoker"]),
        invoker_org=str(data["invoker_org"]),
        read_keys=tuple(data["read_keys"]),
        write_keys=tuple(data["write_keys"]),
        writes=dict(data["writes"]),
        read_versions={key: (int(v[0]), int(v[1])) for key, v in data["read_versions"].items()},
        range_reads=tuple((str(b[0]), str(b[1])) for b in data.get("range_reads", [])),
        status=TxStatus(data["status"]),
        tx_type=TxType(data["tx_type"]),
        block_number=int(data["block_number"]),
        block_position=int(data.get("block_position", -1)),
        commit_time=float(data["commit_time"]),
        contract=str(data.get("contract", "contract")),
        attempt=int(data.get("attempt", 1)),
    )


def log_to_json(log: BlockchainLog, path: str | Path) -> None:
    """Write the full log (config + records) as one JSON document."""
    document = {
        "config": {
            "block_count": log.config.block_count,
            "block_timeout": log.config.block_timeout,
            "block_bytes": log.config.block_bytes,
            "endorsement_policy": log.config.endorsement_policy,
        },
        "interval_seconds": log.interval_seconds,
        "records": [_record_to_dict(record) for record in log.records],
    }
    Path(path).write_text(json.dumps(document, indent=1))


def log_from_json(path: str | Path) -> BlockchainLog:
    document = json.loads(Path(path).read_text())
    config = ChannelConfig(
        block_count=int(document["config"]["block_count"]),
        block_timeout=float(document["config"]["block_timeout"]),
        block_bytes=int(document["config"]["block_bytes"]),
        endorsement_policy=str(document["config"]["endorsement_policy"]),
    )
    records = [_record_from_dict(item) for item in document["records"]]
    return BlockchainLog(
        records=records,
        config=config,
        interval_seconds=float(document.get("interval_seconds", 1.0)),
    )


def log_to_csv(log: BlockchainLog, path: str | Path) -> None:
    """Write records as CSV; the config travels in a ``#config`` comment row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "#config",
                log.config.block_count,
                log.config.block_timeout,
                log.config.block_bytes,
                log.config.endorsement_policy,
                log.interval_seconds,
            ]
        )
        writer.writerow(CSV_COLUMNS)
        for record in log.records:
            data = _record_to_dict(record)
            writer.writerow(
                [
                    json.dumps(data[column]) if isinstance(data[column], (list, dict)) else data[column]
                    for column in CSV_COLUMNS
                ]
            )


def log_from_csv(path: str | Path) -> BlockchainLog:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if not header or header[0] != "#config":
            raise ValueError(f"{path}: missing #config header row")
        config = ChannelConfig(
            block_count=int(header[1]),
            block_timeout=float(header[2]),
            block_bytes=int(header[3]),
            endorsement_policy=header[4],
        )
        interval = float(header[5]) if len(header) > 5 else 1.0
        columns = next(reader)
        if tuple(columns) != CSV_COLUMNS:
            raise ValueError(f"{path}: unexpected columns {columns}")
        records = []
        for row in reader:
            data: dict[str, Any] = {}
            for column, cell in zip(CSV_COLUMNS, row):
                if column in ("args", "endorsers", "read_keys", "write_keys", "writes", "read_versions", "range_reads"):
                    data[column] = json.loads(cell)
                else:
                    data[column] = cell
            records.append(_record_from_dict(data))
    return BlockchainLog(records=records, config=config, interval_seconds=interval)
