"""The blockchain log: nine attributes per transaction (Section 4.1).

The preprocessed output of BlockOptR's data-preprocessing step.  Each
:class:`LogRecord` carries exactly the attributes the paper enumerates —
client timestamp, activity name, function arguments, endorsers, invoker,
read-write set, transaction status, derived transaction type, and commit
order — plus the block number needed for the block-size metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.fabric.transaction import TxStatus, TxType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.transaction import Transaction


@dataclass(frozen=True)
class ChannelConfig:
    """Channel configuration recovered from config transactions."""

    block_count: int
    block_timeout: float
    block_bytes: int
    endorsement_policy: str


@dataclass(slots=True)
class LogRecord:
    """One transaction's entry in the blockchain log."""

    commit_order: int
    tx_id: str
    client_timestamp: float
    activity: str
    args: tuple[Any, ...]
    endorsers: tuple[str, ...]
    invoker: str
    invoker_org: str
    read_keys: tuple[str, ...]
    write_keys: tuple[str, ...]
    #: Written values, keyed like ``write_keys`` (needed by the delta-write
    #: detector: WS(x) +/- 1 == WS(y)).
    writes: dict[str, Any]
    #: Read versions as (block, tx) pairs, keyed like ``read_keys``.
    read_versions: dict[str, tuple[int, int]]
    #: Range-read bounds [start, end) (empty for non-range transactions);
    #: needed to attribute phantom conflicts to inserting/deleting writers.
    range_reads: tuple[tuple[str, str], ...]
    status: TxStatus
    tx_type: TxType
    block_number: int
    #: Position within the block; (block_number, block_position) is the
    #: state version a successful write created.
    block_position: int
    commit_time: float
    contract: str = "contract"
    #: Client attempt number: 1 = original submission, >1 = a retry issued
    #: under a :class:`~repro.fabric.retry.RetryPolicy`.  Carried in the
    #: JSON export; the pinned CSV schema omits it (attempt 1 assumed).
    attempt: int = 1
    #: Lazily computed cache behind :attr:`rw_keys` — the metrics pass reads
    #: it several times per record and the union is not free.
    _rw_keys: frozenset[str] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def rw_keys(self) -> frozenset[str]:
        """RWS(x): all keys accessed by the transaction (computed once)."""
        cached = self._rw_keys
        if cached is None:
            cached = frozenset(self.read_keys) | frozenset(self.write_keys)
            self._rw_keys = cached
        return cached

    @property
    def is_failure(self) -> bool:
        return self.status.is_failure


@dataclass
class BlockchainLog:
    """The cleaned, ordered blockchain log plus channel configuration."""

    records: list[LogRecord]
    config: ChannelConfig
    #: Interval size (seconds) used by the distribution metrics; the
    #: paper's user-configurable ``ins``.
    interval_seconds: float = 1.0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    def activities(self) -> list[str]:
        """Distinct activity names, sorted."""
        return sorted({record.activity for record in self.records})

    def failed(self) -> list[LogRecord]:
        return [record for record in self.records if record.is_failure]

    def by_status(self, status: TxStatus) -> list[LogRecord]:
        return [record for record in self.records if record.status is status]

    def duration(self) -> float:
        """Span of client timestamps covered by the log."""
        if not self.records:
            return 0.0
        stamps = [record.client_timestamp for record in self.records]
        return max(stamps) - min(stamps)

    def validate(self) -> None:
        """Sanity-check invariants; raises ``ValueError`` on violation."""
        last_order = -1
        for record in self.records:
            validate_record(record, last_order)
            last_order = record.commit_order


def validate_record(record: LogRecord, last_order: int = -1) -> None:
    """Check one record's invariants (shared by batch and streaming paths).

    ``last_order`` is the previous record's commit order; pass the default
    to skip the monotonicity check for an isolated record.
    """
    if record.commit_order <= last_order:
        raise ValueError(f"commit order not strictly increasing at tx {record.tx_id}")
    missing = set(record.writes) - set(record.write_keys)
    if missing:
        raise ValueError(f"write values without keys in tx {record.tx_id}: {missing}")
    unread = set(record.read_versions) - set(record.read_keys)
    if unread:
        raise ValueError(f"read versions without keys in tx {record.tx_id}: {unread}")


@dataclass
class LogSlice:
    """Records of one time interval (used by the distribution metrics)."""

    index: int
    start: float
    end: float
    records: list[LogRecord] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.records)


def record_from_transaction(tx: "Transaction", order: int, block_position: int) -> LogRecord:
    """Build one blockchain-log record from a committed (or aborted) transaction.

    Lives here rather than in :mod:`repro.logs.extract` so the streaming
    ledger path can convert blocks as they commit without importing the
    network layer.
    """
    read_versions = {key: (v.block, v.tx) for key, v in tx.rwset.reads.items()}
    read_keys = set(tx.rwset.reads)
    for query in tx.rwset.range_queries:
        for key, version in query.results:
            read_keys.add(key)
            read_versions.setdefault(key, (version.block, version.tx))
    return LogRecord(
        commit_order=order,
        tx_id=tx.tx_id,
        client_timestamp=tx.client_timestamp,
        activity=tx.activity,
        args=tuple(tx.args),
        endorsers=tuple(tx.endorsers),
        invoker=tx.invoker_client,
        invoker_org=tx.invoker_org,
        read_keys=tuple(sorted(read_keys)),
        write_keys=tuple(sorted(tx.rwset.write_keys)),
        writes=dict(tx.rwset.writes),
        read_versions=read_versions,
        range_reads=tuple(
            (query.start, query.end) for query in tx.rwset.range_queries
        ),
        status=tx.status,
        tx_type=tx.tx_type,
        block_number=tx.block_number if tx.block_number is not None else -1,
        block_position=block_position,
        commit_time=tx.commit_time if tx.commit_time is not None else -1.0,
        contract=tx.contract,
        attempt=tx.attempt,
    )


def interval_index(timestamp: float, start: float, ins: float) -> int:
    """Index of the ``[start + k*ins, start + (k+1)*ins)`` window holding ``timestamp``.

    The naive ``int((timestamp - start) / ins)`` mis-bins timestamps that
    sit exactly on a window boundary when the division rounds across it,
    so the estimate is nudged until the exact half-open comparisons hold.
    """
    index = int((timestamp - start) / ins)
    while index > 0 and timestamp < start + index * ins:
        index -= 1
    while timestamp >= start + (index + 1) * ins:
        index += 1
    return index


def slice_by_interval(log: BlockchainLog, interval_seconds: float | None = None) -> list[LogSlice]:
    """Partition the log into client-timestamp intervals of ``ins`` seconds."""
    ins = interval_seconds if interval_seconds is not None else log.interval_seconds
    if ins <= 0:
        raise ValueError(f"interval must be positive, got {ins}")
    if not log.records:
        return []
    start = min(record.client_timestamp for record in log.records)
    end = max(record.client_timestamp for record in log.records)
    count = interval_index(end, start, ins) + 1
    slices = [
        LogSlice(index=i, start=start + i * ins, end=start + (i + 1) * ins)
        for i in range(count)
    ]
    for record in log.records:
        index = min(interval_index(record.client_timestamp, start, ins), count - 1)
        slices[index].records.append(record)
    return slices
