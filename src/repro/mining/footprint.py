"""Footprint matrices: the alpha-algorithm relations.

For every ordered activity pair the footprint records one of the four
classical relations derived from directly-follows observations:

* ``a -> b`` (causality): ``a > b`` observed but never ``b > a``;
* ``a <- b`` (reverse causality);
* ``a || b`` (parallel): both directions observed;
* ``a # b`` (choice): neither direction observed.

Footprints drive the alpha miner and give a cheap conformance measure —
the fraction of matching cells between two logs' footprints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.mining.dfg import DirectlyFollowsGraph


class Relation(enum.Enum):
    """Alpha-algorithm footprint relations."""

    CAUSALITY = "->"
    REVERSE = "<-"
    PARALLEL = "||"
    CHOICE = "#"


@dataclass(frozen=True)
class FootprintMatrix:
    """Relations over all activity pairs of a log."""

    activities: tuple[str, ...]
    relations: dict[tuple[str, str], Relation]

    @staticmethod
    def from_dfg(dfg: DirectlyFollowsGraph) -> "FootprintMatrix":
        activities = tuple(dfg.activities())
        relations: dict[tuple[str, str], Relation] = {}
        for a in activities:
            for b in activities:
                forward = dfg.follows(a, b) > 0
                backward = dfg.follows(b, a) > 0
                if forward and backward:
                    relation = Relation.PARALLEL
                elif forward:
                    relation = Relation.CAUSALITY
                elif backward:
                    relation = Relation.REVERSE
                else:
                    relation = Relation.CHOICE
                relations[(a, b)] = relation
        return FootprintMatrix(activities=activities, relations=relations)

    @staticmethod
    def from_traces(traces: Iterable[tuple[str, ...]]) -> "FootprintMatrix":
        return FootprintMatrix.from_dfg(DirectlyFollowsGraph.from_traces(traces))

    def relation(self, a: str, b: str) -> Relation:
        return self.relations[(a, b)]

    def causal_pairs(self) -> list[tuple[str, str]]:
        """All (a, b) with ``a -> b``, sorted."""
        return sorted(
            pair
            for pair, relation in self.relations.items()
            if relation is Relation.CAUSALITY
        )

    def independent(self, a: str, b: str) -> bool:
        """True when ``a # b`` (never adjacent in either order)."""
        return self.relations[(a, b)] is Relation.CHOICE

    def render(self) -> str:
        """Text table of the footprint (for reports and debugging)."""
        width = max((len(a) for a in self.activities), default=1)
        header = " " * (width + 1) + " ".join(f"{b:>{width}}" for b in self.activities)
        lines = [header]
        for a in self.activities:
            cells = " ".join(
                f"{self.relations[(a, b)].value:>{width}}" for b in self.activities
            )
            lines.append(f"{a:>{width}} {cells}")
        return "\n".join(lines)
