"""Graphviz DOT export for mined models.

The paper renders its process models as diagrams (Figures 2 and 4); these
helpers emit Graphviz DOT text for every model type in this package so
users can do the same (``dot -Tpng model.dot -o model.png``).  Pure string
generation — no graphviz dependency.
"""

from __future__ import annotations

from repro.mining.dfg import DirectlyFollowsGraph
from repro.mining.fuzzy import FuzzyModel
from repro.mining.heuristics import DependencyGraph
from repro.mining.petrinet import PetriNet


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def dfg_to_dot(dfg: DirectlyFollowsGraph, min_count: int = 1) -> str:
    """Directly-follows graph with edge frequencies as labels."""
    lines = ["digraph dfg {", "  rankdir=LR;", "  node [shape=box];"]
    for activity in dfg.activities():
        count = dfg.activity_counts[activity]
        lines.append(f"  {_quote(activity)} [label={_quote(f'{activity} ({count})')}];")
    for a, b, count in dfg.edges(min_count=min_count):
        lines.append(f"  {_quote(a)} -> {_quote(b)} [label={count}];")
    lines.append("}")
    return "\n".join(lines)


def petri_to_dot(net: PetriNet) -> str:
    """Workflow net: transitions as boxes, places as circles."""
    lines = ["digraph petrinet {", "  rankdir=LR;"]
    for transition in net.transitions:
        lines.append(f"  {_quote(transition)} [shape=box];")
    for place in net.places:
        shape = "doublecircle" if place.name in (net.SOURCE, net.SINK) else "circle"
        label = "" if place.name.startswith("p(") else place.name.strip("_")
        lines.append(
            f"  {_quote(place.name)} [shape={shape}, label={_quote(label)}];"
        )
    for place_name, transition in sorted(net.place_to_transition):
        lines.append(f"  {_quote(place_name)} -> {_quote(transition)};")
    for transition, place_name in sorted(net.transition_to_place):
        lines.append(f"  {_quote(transition)} -> {_quote(place_name)};")
    lines.append("}")
    return "\n".join(lines)


def dependency_to_dot(graph: DependencyGraph) -> str:
    """Heuristics-miner dependency graph with measures as labels."""
    lines = ["digraph dependencies {", "  rankdir=LR;", "  node [shape=box];"]
    for activity in graph.activities:
        lines.append(f"  {_quote(activity)};")
    for a, b in sorted(graph.edges):
        measure = graph.dependency[(a, b)]
        lines.append(f"  {_quote(a)} -> {_quote(b)} [label={_quote(f'{measure:.2f}')}];")
    lines.append("}")
    return "\n".join(lines)


def fuzzy_to_dot(model: FuzzyModel) -> str:
    """Fuzzy map: node size label = significance; cluster node dashed."""
    lines = ["digraph fuzzy {", "  rankdir=LR;", "  node [shape=box];"]
    for activity, significance in sorted(model.nodes.items()):
        lines.append(
            f"  {_quote(activity)} [label={_quote(f'{activity} {significance:.2f}')}];"
        )
    if model.clustered:
        label = f"cluster ({len(model.clustered)})"
        lines.append(
            f"  {_quote(model.CLUSTER_NODE)} [style=dashed, label={_quote(label)}];"
        )
    for (a, b), weight in sorted(model.edges.items()):
        lines.append(f"  {_quote(a)} -> {_quote(b)} [label={_quote(f'{weight:.2f}')}];")
    lines.append("}")
    return "\n".join(lines)
