"""The Heuristics miner (Weijters & van der Aalst, 2006).

More robust than the alpha algorithm on noisy logs (which blockchain logs
are — failed and out-of-order transactions appear as noise): the
dependency measure

    a => b  =  (|a > b| - |b > a|) / (|a > b| + |b > a| + 1)

is thresholded to keep only confident causal edges, with frequency
filtering for rare behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.mining.dfg import DirectlyFollowsGraph


@dataclass
class DependencyGraph:
    """Thresholded dependency relation over activities."""

    activities: tuple[str, ...]
    dependency: dict[tuple[str, str], float]
    edges: set[tuple[str, str]] = field(default_factory=set)
    start_activities: tuple[str, ...] = ()
    end_activities: tuple[str, ...] = ()

    def measure(self, a: str, b: str) -> float:
        return self.dependency.get((a, b), 0.0)

    def successors(self, a: str) -> list[str]:
        return sorted(b for (x, b) in self.edges if x == a)

    def predecessors(self, b: str) -> list[str]:
        return sorted(a for (a, x) in self.edges if x == b)

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self.activities)
        for a, b in self.edges:
            graph.add_edge(a, b, dependency=self.dependency[(a, b)])
        return graph

    def has_loop(self) -> bool:
        """True when the dependency graph contains a cycle."""
        return not nx.is_directed_acyclic_graph(self.to_networkx())


def heuristics_miner(
    traces: Iterable[tuple[str, ...]],
    dependency_threshold: float = 0.9,
    min_edge_frequency: int = 1,
) -> DependencyGraph:
    """Mine a dependency graph with the heuristics-miner measures.

    ``dependency_threshold`` is the classical confidence cut-off; lowering
    it admits weaker (noisier) edges.  ``min_edge_frequency`` additionally
    drops edges observed fewer times, which is how rare anomalous paths
    (the ones process-model pruning removes) can be filtered in or out.
    """
    if not 0.0 <= dependency_threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {dependency_threshold}")
    dfg = DirectlyFollowsGraph.from_traces(traces)
    activities = tuple(dfg.activities())

    dependency: dict[tuple[str, str], float] = {}
    edges: set[tuple[str, str]] = set()
    for a in activities:
        for b in activities:
            forward = dfg.follows(a, b)
            backward = dfg.follows(b, a)
            if a == b:
                # Length-one loop measure: |a>a| / (|a>a| + 1).
                value = forward / (forward + 1.0)
            else:
                value = (forward - backward) / (forward + backward + 1.0)
            dependency[(a, b)] = value
            if value >= dependency_threshold and forward >= min_edge_frequency:
                edges.add((a, b))

    return DependencyGraph(
        activities=activities,
        dependency=dependency,
        edges=edges,
        start_activities=tuple(sorted(dfg.start_activities)),
        end_activities=tuple(sorted(dfg.end_activities)),
    )
