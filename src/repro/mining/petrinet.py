"""A minimal Petri net structure with replay semantics.

Just enough net machinery for the alpha miner's output and token-replay
conformance: places with token marking, transitions labelled by
activities, and firing rules.  ``source``/``sink`` bracket the net as in
the classical workflow-net form the alpha algorithm produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Place:
    """A place, identified by the (input set, output set) that created it."""

    name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()


@dataclass
class PetriNet:
    """Places, activity-labelled transitions, and arcs."""

    places: list[Place] = field(default_factory=list)
    transitions: list[str] = field(default_factory=list)
    #: arcs place -> transition
    place_to_transition: set[tuple[str, str]] = field(default_factory=set)
    #: arcs transition -> place
    transition_to_place: set[tuple[str, str]] = field(default_factory=set)

    SOURCE = "__source__"
    SINK = "__sink__"

    def place_names(self) -> list[str]:
        return [place.name for place in self.places]

    def inputs_of(self, transition: str) -> list[str]:
        """Places feeding ``transition``."""
        return sorted(
            place for place, t in self.place_to_transition if t == transition
        )

    def outputs_of(self, transition: str) -> list[str]:
        """Places fed by ``transition``."""
        return sorted(place for t, place in self.transition_to_place if t == transition)

    def initial_marking(self) -> dict[str, int]:
        marking = {name: 0 for name in self.place_names()}
        if self.SOURCE in marking:
            marking[self.SOURCE] = 1
        return marking

    def replay_trace(self, trace: tuple[str, ...]) -> tuple[int, int, int, int]:
        """Token replay of one trace.

        Returns the classical ``(produced, consumed, missing, remaining)``
        counters.  An unknown activity is one failed consumption: it
        counts one consumed and one missing token (the model holds no
        token that could explain it).  Pairing the two keeps ``missing <=
        consumed`` — the invariant that bounds token-replay fitness to
        ``[0, 1]`` (an unpaired ``missing`` drove the fitness negative on
        traces dominated by unknown activities).
        """
        marking = self.initial_marking()
        produced = 1  # initial token in source
        consumed = 0
        missing = 0
        for activity in trace:
            if activity not in self.transitions:
                missing += 1
                consumed += 1
                continue
            for place in self.inputs_of(activity):
                if marking[place] > 0:
                    marking[place] -= 1
                else:
                    missing += 1
                consumed += 1
            for place in self.outputs_of(activity):
                marking[place] += 1
                produced += 1
        # Consume the final token from the sink if present.
        if self.SINK in marking and marking[self.SINK] > 0:
            marking[self.SINK] -= 1
            consumed += 1
        remaining = sum(marking.values())
        return produced, consumed, missing, remaining

    def allows(self, trace: tuple[str, ...]) -> bool:
        """True when the trace replays without missing or remaining tokens."""
        _, _, missing, remaining = self.replay_trace(trace)
        return missing == 0 and remaining == 0
