"""Conformance checking: does behaviour match a model?

Used by the paper in two places: confirming that a redesigned workload
*adheres to the new process model* (Figure 4), and detecting deviations
(illogical paths) as evidence for process-model pruning.

Two complementary measures:

* :func:`token_replay_fitness` — replay traces on a Petri net; fitness is
  the classical combination of missing/consumed and remaining/produced
  token ratios (1.0 = every trace fits the model exactly).
* :func:`footprint_conformance` — fraction of footprint-matrix cells on
  which two behaviours agree; cheap, works model-free between two logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.mining.footprint import FootprintMatrix
from repro.mining.petrinet import PetriNet


def token_replay_fitness(net: PetriNet, traces: Iterable[tuple[str, ...]]) -> float:
    """Aggregate token-replay fitness of ``traces`` on ``net``.

    fitness = 1/2 (1 - missing/consumed) + 1/2 (1 - remaining/produced)
    """
    produced = consumed = missing = remaining = 0
    count = 0
    for trace in traces:
        p, c, m, r = net.replay_trace(trace)
        produced += p
        consumed += c
        missing += m
        remaining += r
        count += 1
    if count == 0:
        raise ValueError("fitness needs at least one trace")
    missing_part = 1.0 - (missing / consumed if consumed else 0.0)
    remaining_part = 1.0 - (remaining / produced if produced else 0.0)
    return 0.5 * missing_part + 0.5 * remaining_part


def footprint_conformance(
    reference: FootprintMatrix, observed: FootprintMatrix
) -> float:
    """Fraction of matching footprint cells over the shared activities.

    Activities present in only one footprint count as full mismatches for
    their row/column — new or vanished activities are deviations too.
    """
    ref_acts = set(reference.activities)
    obs_acts = set(observed.activities)
    union = sorted(ref_acts | obs_acts)
    if not union:
        raise ValueError("both footprints are empty")
    matches = 0
    cells = 0
    for a in union:
        for b in union:
            cells += 1
            if a in ref_acts and b in ref_acts and a in obs_acts and b in obs_acts:
                if reference.relation(a, b) is observed.relation(a, b):
                    matches += 1
    return matches / cells


@dataclass(frozen=True)
class ModelDiff:
    """Differences between two behaviours' footprints."""

    added_activities: tuple[str, ...]
    removed_activities: tuple[str, ...]
    changed_relations: tuple[tuple[str, str, str, str], ...]
    conformance: float

    def is_identical(self) -> bool:
        return (
            not self.added_activities
            and not self.removed_activities
            and not self.changed_relations
        )


def model_diff(reference: FootprintMatrix, observed: FootprintMatrix) -> ModelDiff:
    """Structured diff between two footprints.

    ``changed_relations`` lists ``(a, b, before, after)`` for every shared
    pair whose relation changed — e.g. after activity reordering,
    ``(UpdateAuditInfo, Ship)`` flips from ``||`` to ``<-``.
    """
    ref_acts = set(reference.activities)
    obs_acts = set(observed.activities)
    changed: list[tuple[str, str, str, str]] = []
    for a in sorted(ref_acts & obs_acts):
        for b in sorted(ref_acts & obs_acts):
            before = reference.relation(a, b)
            after = observed.relation(a, b)
            if before is not after:
                changed.append((a, b, before.value, after.value))
    return ModelDiff(
        added_activities=tuple(sorted(obs_acts - ref_acts)),
        removed_activities=tuple(sorted(ref_acts - obs_acts)),
        changed_relations=tuple(changed),
        conformance=footprint_conformance(reference, observed),
    )
