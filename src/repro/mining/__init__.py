"""Process mining over derived event logs (paper Section 2.2, 4.2).

Implements the classical algorithms the paper relies on: directly-follows
graphs, footprint relations, the **Alpha miner** (used for Figures 2 and
4), a **Heuristics miner** (dependency graph with frequency thresholds),
and conformance checking — token-replay fitness plus footprint
conformance — used to "verify compliance with the new process model".
"""

from repro.mining.alpha import alpha_miner
from repro.mining.conformance import (
    footprint_conformance,
    model_diff,
    token_replay_fitness,
)
from repro.mining.dfg import DirectlyFollowsGraph
from repro.mining.footprint import FootprintMatrix, Relation
from repro.mining.export import (
    dependency_to_dot,
    dfg_to_dot,
    fuzzy_to_dot,
    petri_to_dot,
)
from repro.mining.fuzzy import FuzzyModel, fuzzy_miner
from repro.mining.heuristics import DependencyGraph, heuristics_miner
from repro.mining.petrinet import PetriNet, Place

__all__ = [
    "DependencyGraph",
    "DirectlyFollowsGraph",
    "FootprintMatrix",
    "FuzzyModel",
    "PetriNet",
    "Place",
    "Relation",
    "alpha_miner",
    "dependency_to_dot",
    "dfg_to_dot",
    "footprint_conformance",
    "fuzzy_miner",
    "fuzzy_to_dot",
    "heuristics_miner",
    "model_diff",
    "petri_to_dot",
    "token_replay_fitness",
]
