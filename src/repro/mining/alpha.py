"""The Alpha miner (van der Aalst et al., 2004).

The algorithm the paper uses to derive the process models of Figures 2
and 4.  Classical formulation:

1. compute the footprint relations from the traces;
2. find all pairs ``(A, B)`` of activity sets where every ``a in A``
   causally precedes every ``b in B``, members of ``A`` are mutually
   independent, and members of ``B`` are mutually independent;
3. keep only the maximal pairs; each becomes a place with ``A`` as input
   transitions and ``B`` as output transitions;
4. add a source place before the start activities and a sink place after
   the end activities.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.mining.dfg import DirectlyFollowsGraph
from repro.mining.footprint import FootprintMatrix, Relation
from repro.mining.petrinet import PetriNet, Place

#: Pair-enumeration guard: subsets larger than this are not considered.
#: Real process models have small synchronization fan-in/out; the bound
#: keeps the power-set step polynomial in practice.
MAX_SET_SIZE = 4


def _independent_subsets(
    candidates: list[str], footprint: FootprintMatrix, max_size: int
) -> list[tuple[str, ...]]:
    """All subsets (size <= max_size) whose members are pairwise in ``#``."""
    subsets: list[tuple[str, ...]] = []
    for size in range(1, min(max_size, len(candidates)) + 1):
        for combo in itertools.combinations(sorted(candidates), size):
            if all(
                footprint.independent(x, y)
                for x, y in itertools.combinations(combo, 2)
            ):
                subsets.append(combo)
    return subsets


def alpha_miner(
    traces: Iterable[tuple[str, ...]], max_set_size: int = MAX_SET_SIZE
) -> PetriNet:
    """Mine a workflow net from traces with the alpha algorithm."""
    trace_list = [trace for trace in traces if trace]
    if not trace_list:
        raise ValueError("alpha miner needs at least one non-empty trace")
    dfg = DirectlyFollowsGraph.from_traces(trace_list)
    footprint = FootprintMatrix.from_dfg(dfg)
    activities = list(footprint.activities)

    # Step 2: candidate (A, B) pairs from causal relations.
    causal_sources: dict[str, set[str]] = {}
    for a, b in footprint.causal_pairs():
        causal_sources.setdefault(a, set()).add(b)

    pairs: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
    a_candidates = sorted(causal_sources)
    b_candidates = sorted({b for targets in causal_sources.values() for b in targets})
    for a_set in _independent_subsets(a_candidates, footprint, max_set_size):
        # Targets causally reachable from every member of a_set.
        shared_targets = set(b_candidates)
        for a in a_set:
            shared_targets &= causal_sources.get(a, set())
        if not shared_targets:
            continue
        for b_set in _independent_subsets(sorted(shared_targets), footprint, max_set_size):
            if all(
                footprint.relation(a, b) is Relation.CAUSALITY
                for a in a_set
                for b in b_set
            ):
                pairs.append((a_set, b_set))

    # Step 3: keep maximal pairs only.
    maximal: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
    for a_set, b_set in pairs:
        dominated = any(
            (set(a_set) <= set(other_a) and set(b_set) <= set(other_b))
            and (a_set, b_set) != (other_a, other_b)
            for other_a, other_b in pairs
        )
        if not dominated:
            maximal.append((a_set, b_set))

    net = PetriNet(transitions=list(activities))
    for a_set, b_set in sorted(maximal):
        name = f"p({'+'.join(a_set)}->{'+'.join(b_set)})"
        net.places.append(Place(name=name, inputs=a_set, outputs=b_set))
        for a in a_set:
            net.transition_to_place.add((a, name))
        for b in b_set:
            net.place_to_transition.add((name, b))

    # Step 4: source and sink.
    source = Place(name=PetriNet.SOURCE, outputs=tuple(sorted(dfg.start_activities)))
    sink = Place(name=PetriNet.SINK, inputs=tuple(sorted(dfg.end_activities)))
    net.places.append(source)
    net.places.append(sink)
    for start in source.outputs:
        net.place_to_transition.add((PetriNet.SOURCE, start))
    for end in sink.inputs:
        net.transition_to_place.add((end, PetriNet.SINK))
    return net
