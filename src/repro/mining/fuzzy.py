"""Fuzzy miner (Günther & van der Aalst, 2007) — simplified.

The third mining algorithm the paper's background section names.  Where
alpha assumes noise-free logs and heuristics thresholds dependencies, the
fuzzy miner *abstracts*: activities with low significance are clustered or
dropped, edges with low correlation are removed, yielding a simplified map
of an otherwise spaghetti process.

Significance here is frequency-based (unary significance = activity share,
binary significance = edge share); low-significance activities that sit on
a significant path are kept but marked as cluster members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.mining.dfg import DirectlyFollowsGraph


@dataclass
class FuzzyModel:
    """The abstracted process map."""

    #: Activities kept as primary nodes, with their significance.
    nodes: dict[str, float]
    #: Low-significance activities aggregated into a cluster node.
    clustered: tuple[str, ...]
    #: Kept edges with correlation weights.
    edges: dict[tuple[str, str], float]
    graph: nx.DiGraph = field(repr=False, default_factory=nx.DiGraph)

    CLUSTER_NODE = "__cluster__"

    def simplification_ratio(self, dfg: DirectlyFollowsGraph) -> float:
        """Fraction of raw DFG edges removed by abstraction."""
        raw = len(dfg.counts)
        if raw == 0:
            return 0.0
        return 1.0 - len(self.edges) / raw


def fuzzy_miner(
    traces: Iterable[tuple[str, ...]],
    node_significance: float = 0.05,
    edge_significance: float = 0.05,
) -> FuzzyModel:
    """Mine an abstracted process map.

    ``node_significance``/``edge_significance`` are fractions of the total
    event/transition mass below which activities are clustered and edges
    dropped.
    """
    if not 0.0 <= node_significance <= 1.0:
        raise ValueError(f"node_significance must be in [0, 1], got {node_significance}")
    if not 0.0 <= edge_significance <= 1.0:
        raise ValueError(f"edge_significance must be in [0, 1], got {edge_significance}")
    dfg = DirectlyFollowsGraph.from_traces(traces)
    total_events = sum(dfg.activity_counts.values())
    total_edges = sum(dfg.counts.values())
    if total_events == 0:
        raise ValueError("fuzzy miner needs at least one event")

    significance = {
        activity: count / total_events
        for activity, count in dfg.activity_counts.items()
    }
    kept = {a: s for a, s in significance.items() if s >= node_significance}
    clustered = tuple(sorted(a for a, s in significance.items() if s < node_significance))

    def node_of(activity: str) -> str:
        return activity if activity in kept else FuzzyModel.CLUSTER_NODE

    edges: dict[tuple[str, str], float] = {}
    for (a, b), count in dfg.counts.items():
        weight = count / total_edges if total_edges else 0.0
        if weight < edge_significance:
            continue
        edge = (node_of(a), node_of(b))
        if edge[0] == edge[1] == FuzzyModel.CLUSTER_NODE:
            continue
        edges[edge] = edges.get(edge, 0.0) + weight

    graph = nx.DiGraph()
    for activity, sig in kept.items():
        graph.add_node(activity, significance=sig)
    if clustered:
        graph.add_node(FuzzyModel.CLUSTER_NODE, members=clustered)
    for (a, b), weight in edges.items():
        graph.add_edge(a, b, weight=weight)

    return FuzzyModel(nodes=kept, clustered=clustered, edges=edges, graph=graph)
