"""Directly-follows graphs.

The basic artifact every miner builds on: how often activity ``b``
directly follows activity ``a`` within a trace, plus the start/end
activity sets.  Backed by :mod:`networkx` for graph algorithms and export.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx


@dataclass
class DirectlyFollowsGraph:
    """Directly-follows counts over a set of traces."""

    counts: Counter = field(default_factory=Counter)
    activity_counts: Counter = field(default_factory=Counter)
    start_activities: Counter = field(default_factory=Counter)
    end_activities: Counter = field(default_factory=Counter)

    @staticmethod
    def from_traces(traces: Iterable[tuple[str, ...]]) -> "DirectlyFollowsGraph":
        dfg = DirectlyFollowsGraph()
        for trace in traces:
            if not trace:
                continue
            dfg.start_activities[trace[0]] += 1
            dfg.end_activities[trace[-1]] += 1
            for activity in trace:
                dfg.activity_counts[activity] += 1
            for left, right in zip(trace, trace[1:]):
                dfg.counts[(left, right)] += 1
        return dfg

    def activities(self) -> list[str]:
        return sorted(self.activity_counts)

    def follows(self, a: str, b: str) -> int:
        """How often ``b`` directly follows ``a``."""
        return self.counts.get((a, b), 0)

    def edges(self, min_count: int = 1) -> list[tuple[str, str, int]]:
        """All directly-follows edges at or above ``min_count``, sorted."""
        return sorted(
            (a, b, count)
            for (a, b), count in self.counts.items()
            if count >= min_count
        )

    def to_networkx(self, min_count: int = 1) -> nx.DiGraph:
        """The DFG as a weighted networkx digraph."""
        graph = nx.DiGraph()
        for activity, count in self.activity_counts.items():
            graph.add_node(activity, count=count)
        for a, b, count in self.edges(min_count=min_count):
            graph.add_edge(a, b, weight=count)
        return graph

    def most_frequent_path(self) -> list[str]:
        """Greedy walk along heaviest edges from the top start activity.

        A readable "main flow" summary (not a formal model): starts at the
        most frequent start activity, repeatedly follows the heaviest
        outgoing edge to an unvisited activity.
        """
        if not self.start_activities:
            return []
        current = self.start_activities.most_common(1)[0][0]
        path = [current]
        visited = {current}
        while True:
            candidates = [
                (count, b)
                for (a, b), count in self.counts.items()
                if a == current and b not in visited
            ]
            if not candidates:
                return path
            _, nxt = max(candidates)
            path.append(nxt)
            visited.add(nxt)
            current = nxt
