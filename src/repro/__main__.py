"""``python -m repro`` entry point.

The ``__name__`` guard is load-bearing: on spawn/forkserver platforms
multiprocessing re-imports ``__main__`` in every worker the suite
executor starts, and an unguarded ``sys.exit(main())`` would kill the
worker with an argparse usage error during bootstrap.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
