"""BlockOptR reproduction: multi-level blockchain optimization recommendations.

Reproduces Chacko, Mayer & Jacobsen, *"How To Optimize My Blockchain? A
Multi-Level Recommendation Approach"* (SIGMOD 2023) as a pure-Python
library: a simulated Hyperledger Fabric substrate, the paper's workloads
and smart contracts, the blockchain-log / event-log pipeline, process
mining, and the nine-recommendation BlockOptR advisor with its
optimization appliers.

Quickstart::

    from repro import BlockOptR, run_workload
    from repro.workloads import ControlVariables, synthetic_workload

    spec = ControlVariables(total_transactions=2000)
    config, contracts, requests = synthetic_workload(spec)
    network, result = run_workload(config, contracts, requests)
    report = BlockOptR().analyze_network(network)
    for rec in report.recommendations:
        print(rec.kind.value, rec.evidence)

Subpackages are importable lazily so that ``import repro`` stays light.
"""

from repro.fabric.network import FabricNetwork, run_workload

__version__ = "1.0.0"

__all__ = ["AnalysisReport", "BlockOptR", "FabricNetwork", "run_workload", "__version__"]


def __getattr__(name: str):
    # BlockOptR lives in repro.core which imports much of the library;
    # resolve it lazily to keep `import repro.fabric`-style uses cheap.
    if name in ("BlockOptR", "AnalysisReport"):
        from repro.core import recommender

        return getattr(recommender, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
