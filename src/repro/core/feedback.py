"""Self-adaptive optimization loop (paper Section 7, "Limitations").

The paper notes that "a self-adaptive system with a feedback loop that
automatically implements the recommendations is possible" but leaves it to
future work because enterprise changes need management approval.  This
module implements that loop for the simulated substrate: analyze → apply →
re-run, iterating until no new recommendation fires, a round stops
improving, or the iteration budget runs out.

An ``approval`` callback stands in for the management decision: it
receives each recommendation and may veto it (e.g. vetoing endorsement-
policy changes reproduces the enterprise constraint the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.contracts.registry import ContractFamily
from repro.core.apply import apply_recommendations
from repro.core.recommendations import OptimizationKind, Recommendation
from repro.core.recommender import BlockOptR
from repro.core.thresholds import Thresholds
from repro.fabric.config import NetworkConfig
from repro.fabric.network import run_workload
from repro.fabric.results import RunResult
from repro.fabric.transaction import TxRequest

#: Approval callback: return False to veto a recommendation.
ApprovalPolicy = Callable[[Recommendation], bool]


def approve_all(recommendation: Recommendation) -> bool:
    """The permissive default: every recommendation is implemented."""
    del recommendation
    return True


def technical_only(recommendation: Recommendation) -> bool:
    """Veto changes that need management sign-off in an enterprise.

    Endorsement policies and business-process redesigns are governance
    decisions (Section 7); contract and configuration changes are not.
    """
    return recommendation.kind not in (
        OptimizationKind.ENDORSER_RESTRUCTURING,
        OptimizationKind.ACTIVITY_REORDERING,
        OptimizationKind.PROCESS_MODEL_PRUNING,
    )


@dataclass
class FeedbackRound:
    """One iteration of the loop."""

    iteration: int
    result: RunResult
    recommended: list[OptimizationKind]
    applied: list[OptimizationKind]
    vetoed: list[OptimizationKind]

    @property
    def success_rate(self) -> float:
        return self.result.success_rate


@dataclass
class FeedbackOutcome:
    """Full history of a feedback-loop run."""

    rounds: list[FeedbackRound]
    converged: bool
    final_config: NetworkConfig
    final_requests: list[TxRequest] = field(default_factory=list)

    @property
    def baseline(self) -> RunResult:
        return self.rounds[0].result

    @property
    def final(self) -> RunResult:
        return self.rounds[-1].result

    def improvement(self) -> float:
        """Success-rate gain from first to last round (percentage points)."""
        return (self.final.success_rate - self.baseline.success_rate) * 100.0


class FeedbackLoop:
    """Iterated analyze → approve → apply → re-run."""

    def __init__(
        self,
        family: ContractFamily,
        thresholds: Thresholds | None = None,
        approval: ApprovalPolicy = approve_all,
        max_iterations: int = 4,
        min_gain: float = 0.002,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"need at least one iteration, got {max_iterations}")
        self.family = family
        self.advisor = BlockOptR(thresholds)
        self.approval = approval
        self.max_iterations = max_iterations
        #: Minimum success-rate gain per round to keep iterating.
        self.min_gain = min_gain

    def run(self, config: NetworkConfig, requests: list[TxRequest]) -> FeedbackOutcome:
        """Run the loop to convergence or the iteration budget."""
        applied_so_far: set[OptimizationKind] = set()
        deployment = self.family.deploy()
        rounds: list[FeedbackRound] = []
        current_config, current_requests = config, list(requests)
        current_deployment = deployment
        converged = False

        for iteration in range(self.max_iterations):
            network, result = run_workload(
                current_config, current_deployment.contracts, current_requests
            )
            report = self.advisor.analyze_network(network)
            fresh = [
                rec
                for rec in report.recommendations
                if rec.kind not in applied_so_far
            ]
            approved = [rec for rec in fresh if self.approval(rec)]
            vetoed = [rec.kind for rec in fresh if not self.approval(rec)]
            rounds.append(
                FeedbackRound(
                    iteration=iteration,
                    result=result,
                    recommended=sorted((r.kind for r in report.recommendations), key=lambda k: k.value),
                    applied=[],
                    vetoed=vetoed,
                )
            )
            if not approved:
                converged = True
                break
            if len(rounds) >= 2:
                gain = rounds[-1].success_rate - rounds[-2].success_rate
                if gain < self.min_gain:
                    converged = True
                    break
            outcome = apply_recommendations(
                approved, current_config, self.family, current_requests
            )
            rounds[-1].applied = list(outcome.applied)
            applied_so_far.update(outcome.applied)
            applied_so_far.update(outcome.skipped)  # don't retry unsupported swaps
            current_config = outcome.config
            current_requests = outcome.requests
            current_deployment = outcome.deployment

        return FeedbackOutcome(
            rounds=rounds,
            converged=converged,
            final_config=current_config,
            final_requests=current_requests,
        )
