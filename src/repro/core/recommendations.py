"""Recommendation types: the nine optimizations at three levels (Figure 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Level(enum.Enum):
    """Abstraction level of a recommendation (paper Figure 1)."""

    USER = "user"
    DATA = "data"
    SYSTEM = "system"


class OptimizationKind(enum.Enum):
    """The nine optimizations of Table 1."""

    ACTIVITY_REORDERING = "activity_reordering"
    PROCESS_MODEL_PRUNING = "process_model_pruning"
    TRANSACTION_RATE_CONTROL = "transaction_rate_control"
    DELTA_WRITES = "delta_writes"
    SMART_CONTRACT_PARTITIONING = "smart_contract_partitioning"
    DATA_MODEL_ALTERATION = "data_model_alteration"
    BLOCK_SIZE_ADAPTATION = "block_size_adaptation"
    ENDORSER_RESTRUCTURING = "endorser_restructuring"
    CLIENT_RESOURCE_BOOST = "client_resource_boost"

    @property
    def level(self) -> Level:
        return _LEVELS[self]


_LEVELS = {
    OptimizationKind.ACTIVITY_REORDERING: Level.USER,
    OptimizationKind.PROCESS_MODEL_PRUNING: Level.USER,
    OptimizationKind.TRANSACTION_RATE_CONTROL: Level.USER,
    OptimizationKind.DELTA_WRITES: Level.DATA,
    OptimizationKind.SMART_CONTRACT_PARTITIONING: Level.DATA,
    OptimizationKind.DATA_MODEL_ALTERATION: Level.DATA,
    OptimizationKind.BLOCK_SIZE_ADAPTATION: Level.SYSTEM,
    OptimizationKind.ENDORSER_RESTRUCTURING: Level.SYSTEM,
    OptimizationKind.CLIENT_RESOURCE_BOOST: Level.SYSTEM,
}


@dataclass(frozen=True)
class Recommendation:
    """One detected optimization opportunity.

    ``evidence`` holds the metric values that satisfied the necessary
    condition (for the user-facing report); ``actions`` holds machine-
    applicable parameters the optimization applier consumes, e.g.
    ``{"block_count": 297}`` or ``{"front": ("read",), "back": ()}``.
    """

    kind: OptimizationKind
    rationale: str
    evidence: dict[str, Any] = field(default_factory=dict)
    actions: dict[str, Any] = field(default_factory=dict)

    @property
    def level(self) -> Level:
        return self.kind.level

    def describe(self) -> str:
        return f"[{self.level.value}] {self.kind.value}: {self.rationale}"
