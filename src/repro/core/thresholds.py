"""Configurable detection thresholds (paper defaults).

Section 6 fixes the defaults used throughout the evaluation:
``Et = 0.5, Rt1 = 300, Rt2 = 0.3, Bt = 0.6, It = 0.5``, plus the 40%
reorderable-MVCC share of Section 6.1.5.  Everything is user-tunable, as
the paper emphasizes ("the user can adapt these default values to
fine-tune the detection strategies").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Thresholds:
    """All knobs of the nine detection rules."""

    #: ``ins`` — interval (seconds) for the rate/failure distributions.
    interval_seconds: float = 1.0
    #: ``Rt1`` — a per-interval send rate at/above this counts as high traffic.
    rate_high: float = 300.0
    #: ``Rt2`` — failure fraction of an interval's traffic that counts as high.
    failure_fraction: float = 0.3
    #: ``Bt`` — block size adaptation triggers when the average block size is
    #: ``Bt`` (60%) larger or smaller than the derived transaction rate.
    block_tolerance: float = 0.6
    #: ``Et`` — endorser bottleneck sensitivity (see ``endorser_mode``).
    endorser_share: float = 0.5
    #: ``It`` — invoker share of one organization that flags a client bottleneck.
    invoker_share: float = 0.5
    #: Section 6.1.5: reordering is recommended when at least this share of
    #: MVCC failures is caused by reorderable activity pairs.
    reorderable_mvcc_share: float = 0.4
    #: Minimum number of MVCC failures before reordering is considered at all.
    reorderable_min_failures: int = 20
    #: ``Kt`` — hotkey detection: a key is hot when it appears in at least
    #: this share of failed transactions ...
    hotkey_failure_share: float = 0.1
    #: ... and at least this many failed transactions (absolute floor).
    hotkey_min_failures: int = 20
    #: Delta writes need at least this many increment/decrement candidates.
    delta_min_candidates: int = 5
    #: Pruning needs at least this many anomalous transactions per activity...
    pruning_min_anomalies: int = 5
    #: ...which must stay a minority of the activity's transactions.
    pruning_max_fraction: float = 0.5
    #: Endorser detection mode: ``"fair_share"`` flags an org endorsing more
    #: than ``(1 + Et)`` times its fair share (the paper's default "expect an
    #: even distribution"); ``"absolute"`` is the literal Table 1 condition
    #: ``EDsig(e) > |TX| * Et``.
    endorser_mode: str = "fair_share"

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive, got {self.interval_seconds}")
        for name in (
            "failure_fraction",
            "block_tolerance",
            "endorser_share",
            "invoker_share",
            "reorderable_mvcc_share",
            "hotkey_failure_share",
            "pruning_max_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.endorser_mode not in ("fair_share", "absolute"):
            raise ValueError(f"unknown endorser_mode {self.endorser_mode!r}")


#: The defaults used in all of the paper's experiments.
PAPER_DEFAULTS = Thresholds()
