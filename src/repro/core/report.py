"""Human-readable rendering of an analysis report."""

from __future__ import annotations

from repro.core.recommendations import Level
from repro.core.recommender import AnalysisReport

_LEVEL_TITLES = {
    Level.USER: "User level",
    Level.DATA: "Data level",
    Level.SYSTEM: "System level",
}


def render_report(
    report: AnalysisReport, include_model: bool = True, include_insights: bool = False
) -> str:
    """Render the analysis as the text report the BlockOptR tool prints.

    ``include_insights`` appends the conflict-structure appendix
    (:mod:`repro.core.insights`): inter/intra-block shares, conflict
    distances, and the suggested system-level scheduler.
    """
    metrics = report.metrics
    lines = [
        "BlockOptR analysis",
        "==================",
        f"transactions: {metrics.total_transactions}  "
        f"duration: {metrics.duration:.1f}s  rate: {metrics.tr:.1f} TPS",
        f"failures: {metrics.total_failures} ({metrics.tfr:.1%})  "
        + "  ".join(
            f"{status.value}={count}"
            for status, count in sorted(
                metrics.failure_counts.items(), key=lambda item: item[0].value
            )
        ),
        f"block config: count={metrics.bcount} timeout={metrics.btimeout}s  "
        f"observed avg block size: {metrics.bsize_avg:.1f}",
        f"endorsement policy: {metrics.endorsement_policy}",
        f"hotkeys: {metrics.hotkeys if metrics.hotkeys else 'none'}",
        "",
    ]

    if not report.recommendations:
        lines.append("No optimizations recommended.")
    for level in (Level.USER, Level.DATA, Level.SYSTEM):
        recs = report.by_level(level)
        if not recs:
            continue
        lines.append(f"{_LEVEL_TITLES[level]} recommendations")
        lines.append("-" * len(lines[-1]))
        for rec in recs:
            lines.append(f"* {rec.kind.value}: {rec.rationale}")
            if rec.actions:
                lines.append(f"    suggested settings: {rec.actions}")
        lines.append("")

    if include_model:
        lines.append("Derived process model (dependency edges)")
        lines.append("----------------------------------------")
        derivation = report.event_log.derivation
        lines.append(
            f"case attribute: {derivation.attribute} "
            f"(coverage {derivation.coverage:.0%}, {derivation.distinct_values} cases)"
        )
        for a, b in sorted(report.dependency_graph.edges):
            lines.append(f"  {a} -> {b}")

    if include_insights:
        from repro.core.insights import derive_insights, render_insights

        lines.append("")
        lines.append(render_insights(derive_insights(report.metrics)))
    return "\n".join(lines)
