"""Optimization implementation (paper Table 4 / Figure 6).

Applies recommended optimizations to an experiment's three ingredients —
network configuration, contract deployment, workload — producing new ones
to re-run:

| Recommendation                | Setting (Table 4)                          |
|-------------------------------|--------------------------------------------|
| Activity reordering           | reorder workload generation                |
| Transaction rate control      | set send rate to 100 TPS                   |
| Process model pruning         | update smart contract (variant swap)       |
| Delta writes                  | update smart contract (variant swap)       |
| Smart contract partitioning   | update smart contract (variant swap + routing) |
| Data model alteration         | update smart contract (variant swap)       |
| Block size adaptation         | set block count to derived transaction rate |
| Endorser restructuring        | set endorsement policy to OutOf(m, all orgs) |
| Client resource boost         | double clients for the recommended org     |
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.registry import ContractDeployment, ContractFamily
from repro.core.recommendations import OptimizationKind, Recommendation
from repro.fabric.config import NetworkConfig
from repro.fabric.transaction import TxRequest
from repro.workloads.schedule import cap_rate, reorder_requests

#: Recommendations implemented by swapping in a contract variant.
_CONTRACT_SWAPS = (
    OptimizationKind.PROCESS_MODEL_PRUNING,
    OptimizationKind.DELTA_WRITES,
    OptimizationKind.SMART_CONTRACT_PARTITIONING,
    OptimizationKind.DATA_MODEL_ALTERATION,
)


@dataclass
class ApplyResult:
    """Outcome of applying a set of recommendations."""

    config: NetworkConfig
    deployment: ContractDeployment
    requests: list[TxRequest]
    applied: list[OptimizationKind] = field(default_factory=list)
    #: Recommendations that could not be applied (e.g. no contract variant:
    #: the paper could not redesign the synthetic contract either).
    skipped: list[OptimizationKind] = field(default_factory=list)


def apply_recommendations(
    recommendations: list[Recommendation],
    config: NetworkConfig,
    family: ContractFamily,
    requests: list[TxRequest],
    only: set[OptimizationKind] | None = None,
    rate_cap: float = 100.0,
) -> ApplyResult:
    """Apply ``recommendations`` (optionally restricted to ``only``).

    Contract-variant swaps conflict with one another (one deployment),
    so at most one swap is applied per call — the first in Table 1 order.
    Use ``only`` to study a single optimization, as the paper's per-figure
    experiments do.
    """
    new_config = config.copy()
    deployment = family.deploy()
    new_requests = list(requests)
    applied: list[OptimizationKind] = []
    skipped: list[OptimizationKind] = []

    selected = [
        rec
        for rec in recommendations
        if only is None or rec.kind in only
    ]
    swap_done = False
    for rec in selected:
        kind = rec.kind
        if kind is OptimizationKind.ACTIVITY_REORDERING:
            new_requests = reorder_requests(
                new_requests,
                front_activities=set(rec.actions.get("front", ())),
                back_activities=set(rec.actions.get("back", ())),
            )
            applied.append(kind)
        elif kind is OptimizationKind.TRANSACTION_RATE_CONTROL:
            target = float(rec.actions.get("target_rate", rate_cap))
            new_requests = cap_rate(new_requests, target)
            applied.append(kind)
        elif kind in _CONTRACT_SWAPS:
            if swap_done or not family.supports(kind.value):
                skipped.append(kind)
                continue
            deployment = family.deploy(kind.value)
            swap_done = True
            applied.append(kind)
        elif kind is OptimizationKind.BLOCK_SIZE_ADAPTATION:
            # Through the shared bounded-actuation envelope: a runaway
            # rule (or hand-written recommendation) clamps instead of
            # writing a value that violates NetworkConfig invariants.
            from repro.control.bounds import clamp_actuation

            new_config.block_count, _ = clamp_actuation(
                "block_count", float(rec.actions["block_count"])
            )
            applied.append(kind)
        elif kind is OptimizationKind.ENDORSER_RESTRUCTURING:
            new_config.endorsement_policy = str(rec.actions["policy"])
            if rec.actions.get("balance_selection", True):
                new_config.endorser_selection_skew = 0.0
            applied.append(kind)
        elif kind is OptimizationKind.CLIENT_RESOURCE_BOOST:
            factor = int(rec.actions.get("scale_factor", 2))
            for org_name in rec.actions.get("orgs", ()):
                new_config.org(org_name).num_clients *= factor
            applied.append(kind)
        else:  # pragma: no cover - future kinds
            skipped.append(kind)

    # Re-validate every invariant in one step: mutations above bypass the
    # dataclass constructor, so a bad combination must fail here, not
    # deep inside a simulation run.
    new_config.__post_init__()
    if deployment.routing:
        new_requests = _reroute(new_requests, deployment)
    return ApplyResult(
        config=new_config,
        deployment=deployment,
        requests=new_requests,
        applied=applied,
        skipped=skipped,
    )


def _reroute(
    requests: list[TxRequest], deployment: ContractDeployment
) -> list[TxRequest]:
    """Point requests at the contracts of a partitioned deployment."""
    known = {contract.name for contract in deployment.contracts}
    rerouted = []
    for request in requests:
        target = deployment.routing.get(request.activity, request.contract)
        if target not in known:
            raise ValueError(
                f"activity {request.activity!r} routes to unknown contract {target!r}"
            )
        rerouted.append(
            TxRequest(
                submit_time=request.submit_time,
                activity=request.activity,
                args=request.args,
                contract=target,
                invoker_org=request.invoker_org,
            )
        )
    return rerouted
