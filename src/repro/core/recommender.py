"""The BlockOptR workflow (paper Figure 5).

``Fabric network -> blockchain data preprocessing -> metrics derivation /
event log generation -> process model generation -> optimization
recommendation``.  :class:`BlockOptR` runs the whole pipeline over a
ledger, an exported log file, or a live :class:`~repro.fabric.FabricNetwork`
and returns a single :class:`AnalysisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.metrics import LogMetrics, compute_metrics
from repro.core.recommendations import Level, OptimizationKind, Recommendation
from repro.core.rules import evaluate_rules
from repro.core.thresholds import Thresholds
from repro.fabric.ledger import Ledger
from repro.fabric.network import FabricNetwork
from repro.logs.blockchain_log import BlockchainLog
from repro.logs.eventlog import EventLog
from repro.logs.export import log_from_csv, log_from_json
from repro.logs.extract import extract_blockchain_log
from repro.mining.dfg import DirectlyFollowsGraph
from repro.mining.footprint import FootprintMatrix
from repro.mining.heuristics import DependencyGraph, heuristics_miner


@dataclass
class AnalysisReport:
    """Everything one BlockOptR run produces."""

    log: BlockchainLog
    metrics: LogMetrics
    recommendations: list[Recommendation]
    event_log: EventLog
    dfg: DirectlyFollowsGraph
    dependency_graph: DependencyGraph
    footprint: FootprintMatrix

    def by_level(self, level: Level) -> list[Recommendation]:
        return [rec for rec in self.recommendations if rec.level is level]

    def recommended_kinds(self) -> set[OptimizationKind]:
        return {rec.kind for rec in self.recommendations}

    def recommends(self, kind: OptimizationKind) -> bool:
        return kind in self.recommended_kinds()

    def get(self, kind: OptimizationKind) -> Recommendation:
        for rec in self.recommendations:
            if rec.kind is kind:
                return rec
        raise KeyError(f"{kind.value} was not recommended")


class BlockOptR:
    """The automated optimization recommendation tool."""

    def __init__(
        self,
        thresholds: Thresholds | None = None,
        case_attribute: str | None = None,
        dependency_threshold: float = 0.7,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        #: Force a CaseID attribute instead of the automated derivation.
        self.case_attribute = case_attribute
        self.dependency_threshold = dependency_threshold

    # -- entry points ------------------------------------------------------------

    def analyze_network(self, network: FabricNetwork) -> AnalysisReport:
        """Analyze a just-run simulated network (reads its ledger)."""
        log = extract_blockchain_log(
            network, interval_seconds=self.thresholds.interval_seconds
        )
        return self.analyze_log(log)

    def analyze_ledger(self, ledger: Ledger) -> AnalysisReport:
        log = extract_blockchain_log(
            ledger, interval_seconds=self.thresholds.interval_seconds
        )
        return self.analyze_log(log)

    def analyze_file(self, path: str | Path) -> AnalysisReport:
        """Analyze an exported log (.csv or .json)."""
        path = Path(path)
        if path.suffix == ".csv":
            log = log_from_csv(path)
        elif path.suffix == ".json":
            log = log_from_json(path)
        else:
            raise ValueError(f"unsupported log format {path.suffix!r}")
        return self.analyze_log(log)

    def analyze_log(self, log: BlockchainLog) -> AnalysisReport:
        """The Figure 5 pipeline over a preprocessed blockchain log."""
        metrics = compute_metrics(
            log,
            interval_seconds=self.thresholds.interval_seconds,
            hotkey_failure_share=self.thresholds.hotkey_failure_share,
            hotkey_min_failures=self.thresholds.hotkey_min_failures,
        )
        recommendations = evaluate_rules(metrics, self.thresholds)
        event_log = EventLog.from_blockchain_log(log, case_attribute=self.case_attribute)
        traces = event_log.traces()
        dfg = DirectlyFollowsGraph.from_traces(traces)
        dependency_graph = heuristics_miner(
            traces, dependency_threshold=self.dependency_threshold
        )
        footprint = FootprintMatrix.from_dfg(dfg)
        return AnalysisReport(
            log=log,
            metrics=metrics,
            recommendations=recommendations,
            event_log=event_log,
            dfg=dfg,
            dependency_graph=dependency_graph,
            footprint=footprint,
        )
