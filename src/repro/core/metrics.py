"""Metrics derivation from the blockchain log (paper Section 4.3).

Computes every metric the paper defines — rate and failure distributions,
block size, endorser/invoker significance, key frequency/significance,
data-value correlation and (activity-based) proximity correlation — in a
single pass framework over the ordered log, so the rule layer
(:mod:`repro.core.rules`) only ever looks at precomputed values.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.fabric.transaction import TxStatus, TxType
from repro.logs.blockchain_log import BlockchainLog, LogRecord, slice_by_interval


@dataclass(frozen=True)
class ConflictPair:
    """A data-value correlation (corDV) pair: culprit ``y`` before failed ``x``.

    ``distance`` is the proximity correlation corP in commit-order
    positions; ``same_block`` classifies the failure as intra-block.
    ``reorderable`` is Table 1's activity-reordering condition —
    overlapping reads, disjoint write sets.
    """

    failed_order: int
    culprit_order: int
    failed_activity: str
    culprit_activity: str
    shared_keys: tuple[str, ...]
    distance: int
    same_block: bool
    reorderable: bool


def increment_delta(before: Any, after: Any) -> float | None:
    """The numeric increment between two written values, if one exists.

    Handles plain numbers and (recursively) dicts that are identical except
    for exactly one numeric leaf — how the DRM ``play`` counter looks in
    the write set.  Returns ``None`` when the values do not differ by a
    single numeric step.
    """
    if isinstance(before, bool) or isinstance(after, bool):
        return None
    if isinstance(before, (int, float)) and isinstance(after, (int, float)):
        return float(after) - float(before)
    if isinstance(before, dict) and isinstance(after, dict):
        if set(before) != set(after):
            return None
        delta: float | None = None
        for key in before:
            if before[key] == after[key]:
                continue
            step = increment_delta(before[key], after[key])
            if step is None or delta is not None:
                return None  # non-numeric change, or more than one changed leaf
            delta = step
        return delta
    return None


@dataclass(slots=True)
class ActivityStats:
    """Per-activity aggregates."""

    total: int = 0
    failures: int = 0
    type_counts: Counter = field(default_factory=Counter)

    def dominant_type(self) -> TxType | None:
        """Most frequent type, or ``None`` if no transaction ever executed."""
        if not self.type_counts:
            return None
        return self.type_counts.most_common(1)[0][0]

    def minority_types(self) -> dict[TxType, int]:
        """Counts of every type other than the dominant one."""
        dominant = self.dominant_type()
        if dominant is None:
            return {}
        return {t: c for t, c in self.type_counts.items() if t is not dominant}


@dataclass
class LogMetrics:
    """Everything Section 4.3 derives from one blockchain log."""

    total_transactions: int
    duration: float
    # (1) rate metrics
    tr: float
    trd: list[float]
    # (2) failure metrics
    total_failures: int
    tfr: float
    failure_counts: dict[TxStatus, int]
    frd: list[float]
    # (3) block size
    bcount: int
    btimeout: float
    bsize_avg: float
    # (4) endorser significance
    edsig: dict[str, int]
    edsig_org: dict[str, int]
    # (5) invoker significance
    ivsig: dict[str, int]
    ivsig_org: dict[str, int]
    # (6) key frequency / significance / hotkeys
    kfreq: dict[str, int]
    ksig: dict[str, int]
    ksig_failed: dict[str, int]
    key_failed_activities: dict[str, frozenset[str]]
    hotkeys: list[str]
    # (7)+(8) correlations
    conflict_pairs: list[ConflictPair]
    corpa: dict[str, list[int]]
    # derived evidence
    activity_stats: dict[str, ActivityStats]
    delta_candidates: dict[str, int]
    mvcc_failures: int
    reorderable_mvcc: int
    reorderable_activity_pairs: list[tuple[str, str]]
    self_dependent_activities: list[str]
    intra_block_pairs: int
    endorsement_policy: str

    def mean_interval_rate(self) -> float:
        return sum(self.trd) / len(self.trd) if self.trd else 0.0


def compute_metrics(
    log: BlockchainLog,
    interval_seconds: float | None = None,
    hotkey_failure_share: float = 0.1,
    hotkey_min_failures: int = 20,
) -> LogMetrics:
    """Derive all Section 4.3 metrics from ``log``.

    The hotkey thresholds are passed in (rather than read from
    :class:`~repro.core.thresholds.Thresholds`) so the metric layer stays
    independent of the rule layer.
    """
    records = list(log.records)
    total = len(records)
    ins = interval_seconds if interval_seconds is not None else log.interval_seconds

    duration = log.duration()
    tr = total / duration if duration > 0 else float(total)

    slices = slice_by_interval(log, ins)
    trd = [s.count / ins for s in slices]
    frd = [sum(1 for r in s.records if r.is_failure) / ins for s in slices]

    # Accumulators are preallocated plain dicts updated with local-variable
    # references; one pass over the log does all per-record bookkeeping.
    # Insertion order matches the old per-Counter updates exactly, so every
    # derived dict (and anything serialized from it) is unchanged.
    failure_counts: dict[TxStatus, int] = {}
    edsig: dict[str, int] = {}
    edsig_org: dict[str, int] = {}
    ivsig: dict[str, int] = {}
    ivsig_org: dict[str, int] = {}
    ksig_sets: dict[str, set[str]] = {}
    kfreq: dict[str, int] = {}
    key_failed_activity_counts: dict[str, dict[str, int]] = {}
    activity_stats: dict[str, ActivityStats] = {}
    block_sizes: dict[int, int] = {}
    #: Memo of endorser name -> org (rpartition is per-record otherwise).
    endorser_org: dict[str, str] = {}

    for record in records:
        activity = record.activity
        stats = activity_stats.get(activity)
        if stats is None:
            stats = activity_stats[activity] = ActivityStats()
        stats.total += 1
        rw_keys = record.rw_keys
        # Transactions that never executed (all endorsements timed out)
        # have an empty read-write set; their derived type is an artifact
        # and must not feed the pruning detector.
        if rw_keys or record.range_reads:
            stats.type_counts[record.tx_type] += 1
        if record.status is not TxStatus.SUCCESS:
            stats.failures += 1
            status = record.status
            failure_counts[status] = failure_counts.get(status, 0) + 1
            for key in rw_keys:
                kfreq[key] = kfreq.get(key, 0) + 1
                by_activity = key_failed_activity_counts.get(key)
                if by_activity is None:
                    by_activity = key_failed_activity_counts[key] = {}
                by_activity[activity] = by_activity.get(activity, 0) + 1
        for endorser in record.endorsers:
            edsig[endorser] = edsig.get(endorser, 0) + 1
            org = endorser_org.get(endorser)
            if org is None:
                org = endorser_org[endorser] = endorser.rpartition("-peer")[0]
            edsig_org[org] = edsig_org.get(org, 0) + 1
        invoker = record.invoker
        ivsig[invoker] = ivsig.get(invoker, 0) + 1
        invoker_org = record.invoker_org
        ivsig_org[invoker_org] = ivsig_org.get(invoker_org, 0) + 1
        for key in rw_keys:
            activities = ksig_sets.get(key)
            if activities is None:
                activities = ksig_sets[key] = set()
            activities.add(activity)
        block = record.block_number
        if block >= 0:
            block_sizes[block] = block_sizes.get(block, 0) + 1

    total_failures = sum(failure_counts.values())
    bsize_avg = (
        sum(block_sizes.values()) / len(block_sizes) if block_sizes else 0.0
    )

    hot_cut = max(hotkey_min_failures, hotkey_failure_share * total_failures)
    hotkeys = sorted(
        (key for key, count in kfreq.items() if count >= hot_cut),
        key=lambda key: (-kfreq[key], key),
    )

    conflict_pairs = _conflict_pairs(records, bsize_avg)
    corpa = _activity_proximity(records)
    delta_candidates = _delta_candidates(records)

    mvcc_like = {TxStatus.MVCC_CONFLICT, TxStatus.PHANTOM_CONFLICT}
    mvcc_failures = sum(failure_counts.get(status, 0) for status in mvcc_like)
    reorderable = [pair for pair in conflict_pairs if pair.reorderable]
    reorderable_pairs = sorted(
        {(p.failed_activity, p.culprit_activity) for p in reorderable}
    )
    self_dependent = sorted(
        {
            p.failed_activity
            for p in conflict_pairs
            if p.failed_activity == p.culprit_activity and not p.reorderable
        }
    )

    return LogMetrics(
        total_transactions=total,
        duration=duration,
        tr=tr,
        trd=trd,
        total_failures=total_failures,
        tfr=total_failures / total if total else 0.0,
        failure_counts=dict(failure_counts),
        frd=frd,
        bcount=log.config.block_count,
        btimeout=log.config.block_timeout,
        bsize_avg=bsize_avg,
        edsig=dict(edsig),
        edsig_org=dict(edsig_org),
        ivsig=dict(ivsig),
        ivsig_org=dict(ivsig_org),
        kfreq=dict(kfreq),
        ksig={key: len(acts) for key, acts in ksig_sets.items()},
        ksig_failed={
            key: len(_significant_activities(counts))
            for key, counts in key_failed_activity_counts.items()
        },
        key_failed_activities={
            key: frozenset(_significant_activities(counts))
            for key, counts in key_failed_activity_counts.items()
        },
        hotkeys=hotkeys,
        conflict_pairs=conflict_pairs,
        corpa=corpa,
        activity_stats=activity_stats,
        delta_candidates=delta_candidates,
        mvcc_failures=mvcc_failures,
        reorderable_mvcc=len(reorderable),
        reorderable_activity_pairs=reorderable_pairs,
        self_dependent_activities=self_dependent,
        intra_block_pairs=sum(1 for p in conflict_pairs if p.same_block),
        endorsement_policy=log.config.endorsement_policy,
    )


#: An activity must account for at least this share of a key's failures to
#: count toward the key's failed-activity significance (filters one-off
#: accesses like the single seeResults transaction in the voting use case).
SIGNIFICANT_ACTIVITY_SHARE = 0.05


def _significant_activities(counts: dict[str, int]) -> list[str]:
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        activity
        for activity, count in counts.items()
        if count / total >= SIGNIFICANT_ACTIVITY_SHARE
    ]


def _conflict_pairs(records: list[LogRecord], bsize_avg: float) -> list[ConflictPair]:
    """corDV pairs: for each MVCC/phantom failure, the latest successful
    transaction that wrote one of its read keys."""
    del bsize_avg
    last_writer: dict[str, LogRecord] = {}
    written_keys_sorted: list[str] = []
    pairs: list[ConflictPair] = []
    mvcc_like = {TxStatus.MVCC_CONFLICT, TxStatus.PHANTOM_CONFLICT}
    for record in records:
        if record.status in mvcc_like:
            culprit: LogRecord | None = None
            shared: list[str] = []
            for key in record.read_keys:
                writer = last_writer.get(key)
                if writer is None:
                    continue
                if culprit is None or writer.commit_order > culprit.commit_order:
                    culprit = writer
            if record.status is TxStatus.PHANTOM_CONFLICT:
                # A phantom's culprit may have written a *new* key inside
                # the scanned range, absent from the recorded read set.
                for start, end in record.range_reads:
                    lo = bisect.bisect_left(written_keys_sorted, start)
                    hi = bisect.bisect_left(written_keys_sorted, end)
                    for key in written_keys_sorted[lo:hi]:
                        writer = last_writer[key]
                        if culprit is None or writer.commit_order > culprit.commit_order:
                            culprit = writer
            if culprit is not None:
                culprit_writes = set(culprit.write_keys)
                shared = sorted(set(record.read_keys) & culprit_writes)
                disjoint_writes = not (set(record.write_keys) & culprit_writes)
                pairs.append(
                    ConflictPair(
                        failed_order=record.commit_order,
                        culprit_order=culprit.commit_order,
                        failed_activity=record.activity,
                        culprit_activity=culprit.activity,
                        shared_keys=tuple(shared),
                        distance=record.commit_order - culprit.commit_order,
                        same_block=record.block_number == culprit.block_number,
                        reorderable=disjoint_writes,
                    )
                )
        if record.status is TxStatus.SUCCESS:
            for key in record.write_keys:
                if key not in last_writer:
                    bisect.insort(written_keys_sorted, key)
                last_writer[key] = record
    return pairs


def _activity_proximity(records: list[LogRecord]) -> dict[str, list[int]]:
    """corPA: commit-order distances between consecutive same-activity txs."""
    last_seen: dict[str, int] = {}
    distances: dict[str, list[int]] = {}
    for record in records:
        if record.activity in last_seen:
            distances.setdefault(record.activity, []).append(
                record.commit_order - last_seen[record.activity]
            )
        last_seen[record.activity] = record.commit_order
    return distances


def _delta_candidates(records: list[LogRecord]) -> dict[str, int]:
    """Table 1 delta-write condition, counted per activity.

    A failed MVCC transaction ``x`` with a single-key write is an
    increment/decrement in disguise when its written value is exactly one
    numeric step away from the value written by the transaction that
    created the version ``x`` read — i.e. ``x`` computed ``old + 1``.
    Such updates can be rewritten as blind writes to unique delta keys.
    """
    # Index successful writers by the state version their write created.
    by_version: dict[tuple[str, int, int], LogRecord] = {}
    candidates: Counter = Counter()
    for record in records:
        if (
            record.status is TxStatus.MVCC_CONFLICT
            and len(record.write_keys) == 1
        ):
            key = record.write_keys[0]
            version = record.read_versions.get(key)
            if version is not None:
                writer = by_version.get((key, version[0], version[1]))
                if writer is not None:
                    step = increment_delta(writer.writes[key], record.writes[key])
                    if step is not None and abs(step) == 1.0:
                        candidates[record.activity] += 1
        if record.status is TxStatus.SUCCESS:
            for key in record.write_keys:
                by_version[(key, record.block_number, record.block_position)] = record
    return dict(candidates)
