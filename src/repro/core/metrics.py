"""Metrics derivation from the blockchain log (paper Section 4.3).

Computes every metric the paper defines — rate and failure distributions,
block size, endorser/invoker significance, key frequency/significance,
data-value correlation and (activity-based) proximity correlation — via
:class:`MetricsAccumulator`, a streaming consumer that folds each
:class:`~repro.logs.blockchain_log.LogRecord` in as it commits, so the
rule layer (:mod:`repro.core.rules`) only ever looks at precomputed
values and a run never has to materialize the full log.
:func:`compute_metrics` is the batch entry point: it feeds a
:class:`~repro.logs.blockchain_log.BlockchainLog` through the accumulator
record by record and returns the identical :class:`LogMetrics`.
"""

from __future__ import annotations

import bisect
from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.fabric.transaction import TxStatus, TxType
from repro.logs.blockchain_log import (
    BlockchainLog,
    ChannelConfig,
    LogRecord,
    interval_index,
)


@dataclass(frozen=True)
class ConflictPair:
    """A data-value correlation (corDV) pair: culprit ``y`` before failed ``x``.

    ``distance`` is the proximity correlation corP in commit-order
    positions; ``same_block`` classifies the failure as intra-block.
    ``reorderable`` is Table 1's activity-reordering condition —
    overlapping reads, disjoint write sets.
    """

    failed_order: int
    culprit_order: int
    failed_activity: str
    culprit_activity: str
    shared_keys: tuple[str, ...]
    distance: int
    same_block: bool
    reorderable: bool


def increment_delta(before: Any, after: Any) -> float | None:
    """The numeric increment between two written values, if one exists.

    Handles plain numbers and (recursively) dicts that are identical except
    for exactly one numeric leaf — how the DRM ``play`` counter looks in
    the write set.  Returns ``None`` when the values do not differ by a
    single numeric step.
    """
    if isinstance(before, bool) or isinstance(after, bool):
        return None
    if isinstance(before, (int, float)) and isinstance(after, (int, float)):
        return float(after) - float(before)
    if isinstance(before, dict) and isinstance(after, dict):
        if set(before) != set(after):
            return None
        delta: float | None = None
        for key in before:
            if before[key] == after[key]:
                continue
            step = increment_delta(before[key], after[key])
            if step is None or delta is not None:
                return None  # non-numeric change, or more than one changed leaf
            delta = step
        return delta
    return None


@dataclass(slots=True)
class ActivityStats:
    """Per-activity aggregates."""

    total: int = 0
    failures: int = 0
    type_counts: Counter = field(default_factory=Counter)

    def dominant_type(self) -> TxType | None:
        """Most frequent type, or ``None`` if no transaction ever executed."""
        if not self.type_counts:
            return None
        return self.type_counts.most_common(1)[0][0]

    def minority_types(self) -> dict[TxType, int]:
        """Counts of every type other than the dominant one."""
        dominant = self.dominant_type()
        if dominant is None:
            return {}
        return {t: c for t, c in self.type_counts.items() if t is not dominant}


@dataclass
class LogMetrics:
    """Everything Section 4.3 derives from one blockchain log."""

    total_transactions: int
    duration: float
    # (1) rate metrics
    tr: float
    trd: list[float]
    # (2) failure metrics
    total_failures: int
    tfr: float
    failure_counts: dict[TxStatus, int]
    frd: list[float]
    # (3) block size
    bcount: int
    btimeout: float
    bsize_avg: float
    # (4) endorser significance
    edsig: dict[str, int]
    edsig_org: dict[str, int]
    # (5) invoker significance
    ivsig: dict[str, int]
    ivsig_org: dict[str, int]
    # (6) key frequency / significance / hotkeys
    kfreq: dict[str, int]
    ksig: dict[str, int]
    ksig_failed: dict[str, int]
    key_failed_activities: dict[str, frozenset[str]]
    hotkeys: list[str]
    # (7)+(8) correlations
    conflict_pairs: list[ConflictPair]
    corpa: dict[str, list[int]]
    # derived evidence
    activity_stats: dict[str, ActivityStats]
    delta_candidates: dict[str, int]
    mvcc_failures: int
    reorderable_mvcc: int
    reorderable_activity_pairs: list[tuple[str, str]]
    self_dependent_activities: list[str]
    intra_block_pairs: int
    endorsement_policy: str

    def mean_interval_rate(self) -> float:
        return sum(self.trd) / len(self.trd) if self.trd else 0.0


#: MVCC-like statuses (read-conflict failures the correlation pass tracks).
_MVCC_LIKE = (TxStatus.MVCC_CONFLICT, TxStatus.PHANTOM_CONFLICT)


class _Writer:
    """Slim stand-in for a successful writer (conflict-pair tracking).

    Retains only the four attributes the corDV pass reads from a culprit,
    so the streaming accumulator never keeps whole :class:`LogRecord`
    objects alive between blocks.
    """

    __slots__ = ("order", "activity", "write_keys", "write_set", "block_number")

    def __init__(self, record: LogRecord) -> None:
        self.order = record.commit_order
        self.activity = record.activity
        self.write_keys = record.write_keys
        self.write_set = frozenset(record.write_keys)
        self.block_number = record.block_number


class MetricsAccumulator:
    """Streaming Section 4.3 metrics: fold records in, then :meth:`finish`.

    Implements the record-consumer protocol (``consume``/``finish``): feed
    every log record in commit order — one at a time, straight off the
    ledger — and ``finish()`` returns the same :class:`LogMetrics` the
    batch :func:`compute_metrics` produces, bit for bit.  Per-record state
    is bounded by the key space and block count except for two exact
    analyses that are inherently history-dependent (the delta-write
    version index and the corPA distance lists); the bounded channel
    summaries used at large scale skip this class entirely (see
    ``docs/SCALING.md``).  Timestamps are kept in a compact ``array('d')``
    (plus one failure byte each) because the rate/failure distributions
    need the global min/max before they can bin.
    """

    def __init__(
        self,
        config: ChannelConfig | None = None,
        interval_seconds: float = 1.0,
        hotkey_failure_share: float = 0.1,
        hotkey_min_failures: int = 20,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval must be positive, got {interval_seconds}")
        #: Channel configuration; may be attached after construction (the
        #: streaming ledger only learns it from the genesis block).
        self.config = config
        self.interval_seconds = interval_seconds
        self.hotkey_failure_share = hotkey_failure_share
        self.hotkey_min_failures = hotkey_min_failures
        self._stamps = array("d")
        self._fail_flags = bytearray()
        # Plain dicts updated with local-variable references; insertion
        # order matches the historical batch passes exactly, so every
        # derived dict (and anything serialized from it) is unchanged.
        self._failure_counts: dict[TxStatus, int] = {}
        self._edsig: dict[str, int] = {}
        self._edsig_org: dict[str, int] = {}
        self._ivsig: dict[str, int] = {}
        self._ivsig_org: dict[str, int] = {}
        self._ksig_sets: dict[str, set[str]] = {}
        self._kfreq: dict[str, int] = {}
        self._key_failed_activity_counts: dict[str, dict[str, int]] = {}
        self._activity_stats: dict[str, ActivityStats] = {}
        self._block_sizes: dict[int, int] = {}
        #: Memo of endorser name -> org (rpartition is per-record otherwise).
        self._endorser_org: dict[str, str] = {}
        # corDV state: latest successful writer per key + sorted key index
        # for phantom range scans.
        self._last_writer: dict[str, _Writer] = {}
        self._written_keys_sorted: list[str] = []
        self._pairs: list[ConflictPair] = []
        # corPA state: last commit order per activity.
        self._last_seen: dict[str, int] = {}
        self._corpa: dict[str, list[int]] = {}
        # Delta-write state: written value per created state version.
        self._by_version: dict[tuple[str, int, int], Any] = {}
        self._delta_candidates: Counter = Counter()

    def consume(self, record: LogRecord) -> None:
        """Fold one record in (records must arrive in commit order)."""
        self._stamps.append(record.client_timestamp)
        status = record.status
        failed = status is not TxStatus.SUCCESS
        self._fail_flags.append(1 if failed else 0)

        activity = record.activity
        stats = self._activity_stats.get(activity)
        if stats is None:
            stats = self._activity_stats[activity] = ActivityStats()
        stats.total += 1
        rw_keys = record.rw_keys
        # Transactions that never executed (all endorsements timed out)
        # have an empty read-write set; their derived type is an artifact
        # and must not feed the pruning detector.
        if rw_keys or record.range_reads:
            stats.type_counts[record.tx_type] += 1
        if failed:
            stats.failures += 1
            failure_counts = self._failure_counts
            failure_counts[status] = failure_counts.get(status, 0) + 1
            kfreq = self._kfreq
            key_failed = self._key_failed_activity_counts
            for key in rw_keys:
                kfreq[key] = kfreq.get(key, 0) + 1
                by_activity = key_failed.get(key)
                if by_activity is None:
                    by_activity = key_failed[key] = {}
                by_activity[activity] = by_activity.get(activity, 0) + 1
        edsig = self._edsig
        edsig_org = self._edsig_org
        endorser_org = self._endorser_org
        for endorser in record.endorsers:
            edsig[endorser] = edsig.get(endorser, 0) + 1
            org = endorser_org.get(endorser)
            if org is None:
                org = endorser_org[endorser] = endorser.rpartition("-peer")[0]
            edsig_org[org] = edsig_org.get(org, 0) + 1
        invoker = record.invoker
        self._ivsig[invoker] = self._ivsig.get(invoker, 0) + 1
        invoker_org = record.invoker_org
        self._ivsig_org[invoker_org] = self._ivsig_org.get(invoker_org, 0) + 1
        ksig_sets = self._ksig_sets
        for key in rw_keys:
            activities = ksig_sets.get(key)
            if activities is None:
                activities = ksig_sets[key] = set()
            activities.add(activity)
        block = record.block_number
        if block >= 0:
            self._block_sizes[block] = self._block_sizes.get(block, 0) + 1

        self._consume_conflicts(record, status)

        # corPA: commit-order distance to the previous same-activity tx.
        order = record.commit_order
        previous = self._last_seen.get(activity)
        if previous is not None:
            self._corpa.setdefault(activity, []).append(order - previous)
        self._last_seen[activity] = order

        self._consume_delta(record, status)

    def _consume_conflicts(self, record: LogRecord, status: TxStatus) -> None:
        """corDV pairs: for each MVCC/phantom failure, the latest
        successful transaction that wrote one of its read keys."""
        last_writer = self._last_writer
        if status in _MVCC_LIKE:
            culprit: _Writer | None = None
            for key in record.read_keys:
                writer = last_writer.get(key)
                if writer is None:
                    continue
                if culprit is None or writer.order > culprit.order:
                    culprit = writer
            if status is TxStatus.PHANTOM_CONFLICT:
                # A phantom's culprit may have written a *new* key inside
                # the scanned range, absent from the recorded read set.
                written_keys_sorted = self._written_keys_sorted
                for start, end in record.range_reads:
                    lo = bisect.bisect_left(written_keys_sorted, start)
                    hi = bisect.bisect_left(written_keys_sorted, end)
                    for key in written_keys_sorted[lo:hi]:
                        writer = last_writer[key]
                        if culprit is None or writer.order > culprit.order:
                            culprit = writer
            if culprit is not None:
                culprit_writes = culprit.write_set
                shared = sorted(set(record.read_keys) & culprit_writes)
                disjoint_writes = not (set(record.write_keys) & culprit_writes)
                self._pairs.append(
                    ConflictPair(
                        failed_order=record.commit_order,
                        culprit_order=culprit.order,
                        failed_activity=record.activity,
                        culprit_activity=culprit.activity,
                        shared_keys=tuple(shared),
                        distance=record.commit_order - culprit.order,
                        same_block=record.block_number == culprit.block_number,
                        reorderable=disjoint_writes,
                    )
                )
        if status is TxStatus.SUCCESS and record.write_keys:
            writer = _Writer(record)
            for key in record.write_keys:
                if key not in last_writer:
                    bisect.insort(self._written_keys_sorted, key)
                last_writer[key] = writer

    def _consume_delta(self, record: LogRecord, status: TxStatus) -> None:
        """Table 1 delta-write condition, counted per activity.

        A failed MVCC transaction ``x`` with a single-key write is an
        increment/decrement in disguise when its written value is exactly
        one numeric step away from the value written by the transaction
        that created the version ``x`` read — i.e. ``x`` computed
        ``old + 1``.  Such updates can be rewritten as blind writes to
        unique delta keys.
        """
        by_version = self._by_version
        if status is TxStatus.MVCC_CONFLICT and len(record.write_keys) == 1:
            key = record.write_keys[0]
            version = record.read_versions.get(key)
            if version is not None:
                sentinel = _MISSING
                before = by_version.get((key, version[0], version[1]), sentinel)
                if before is not sentinel:
                    step = increment_delta(before, record.writes[key])
                    if step is not None and abs(step) == 1.0:
                        self._delta_candidates[record.activity] += 1
        if status is TxStatus.SUCCESS:
            writes = record.writes
            for key in record.write_keys:
                by_version[(key, record.block_number, record.block_position)] = (
                    writes.get(key)
                )

    def finish(self) -> LogMetrics:
        """Close the stream and derive the full :class:`LogMetrics`."""
        if self.config is None:
            raise ValueError("no channel configuration attached before finish()")
        stamps = self._stamps
        total = len(stamps)
        ins = self.interval_seconds

        if total:
            start = min(stamps)
            end = max(stamps)
            duration = end - start
        else:
            start = end = duration = 0.0
        tr = total / duration if duration > 0 else float(total)

        if total:
            count = interval_index(end, start, ins) + 1
            slice_totals = [0] * count
            slice_failures = [0] * count
            top = count - 1
            for stamp, flag in zip(stamps, self._fail_flags):
                index = interval_index(stamp, start, ins)
                if index > top:
                    index = top
                slice_totals[index] += 1
                slice_failures[index] += flag
            trd = [n / ins for n in slice_totals]
            frd = [n / ins for n in slice_failures]
        else:
            trd = []
            frd = []

        failure_counts = self._failure_counts
        total_failures = sum(failure_counts.values())
        block_sizes = self._block_sizes
        bsize_avg = (
            sum(block_sizes.values()) / len(block_sizes) if block_sizes else 0.0
        )

        kfreq = self._kfreq
        hot_cut = max(
            self.hotkey_min_failures, self.hotkey_failure_share * total_failures
        )
        hotkeys = sorted(
            (key for key, n in kfreq.items() if n >= hot_cut),
            key=lambda key: (-kfreq[key], key),
        )

        conflict_pairs = self._pairs
        mvcc_failures = sum(failure_counts.get(status, 0) for status in _MVCC_LIKE)
        reorderable = [pair for pair in conflict_pairs if pair.reorderable]
        reorderable_pairs = sorted(
            {(p.failed_activity, p.culprit_activity) for p in reorderable}
        )
        self_dependent = sorted(
            {
                p.failed_activity
                for p in conflict_pairs
                if p.failed_activity == p.culprit_activity and not p.reorderable
            }
        )

        return LogMetrics(
            total_transactions=total,
            duration=duration,
            tr=tr,
            trd=trd,
            total_failures=total_failures,
            tfr=total_failures / total if total else 0.0,
            failure_counts=dict(failure_counts),
            frd=frd,
            bcount=self.config.block_count,
            btimeout=self.config.block_timeout,
            bsize_avg=bsize_avg,
            edsig=dict(self._edsig),
            edsig_org=dict(self._edsig_org),
            ivsig=dict(self._ivsig),
            ivsig_org=dict(self._ivsig_org),
            kfreq=dict(kfreq),
            ksig={key: len(acts) for key, acts in self._ksig_sets.items()},
            ksig_failed={
                key: len(_significant_activities(counts))
                for key, counts in self._key_failed_activity_counts.items()
            },
            key_failed_activities={
                key: frozenset(_significant_activities(counts))
                for key, counts in self._key_failed_activity_counts.items()
            },
            hotkeys=hotkeys,
            conflict_pairs=conflict_pairs,
            corpa=self._corpa,
            activity_stats=self._activity_stats,
            delta_candidates=dict(self._delta_candidates),
            mvcc_failures=mvcc_failures,
            reorderable_mvcc=len(reorderable),
            reorderable_activity_pairs=reorderable_pairs,
            self_dependent_activities=self_dependent,
            intra_block_pairs=sum(1 for p in conflict_pairs if p.same_block),
            endorsement_policy=self.config.endorsement_policy,
        )


#: Sentinel distinguishing "version never indexed" from a written ``None``.
_MISSING = object()


def compute_metrics(
    log: BlockchainLog,
    interval_seconds: float | None = None,
    hotkey_failure_share: float = 0.1,
    hotkey_min_failures: int = 20,
) -> LogMetrics:
    """Derive all Section 4.3 metrics from ``log``.

    Thin batch wrapper: feeds the log through a fresh
    :class:`MetricsAccumulator` record by record.  The hotkey thresholds
    are passed in (rather than read from
    :class:`~repro.core.thresholds.Thresholds`) so the metric layer stays
    independent of the rule layer.
    """
    ins = interval_seconds if interval_seconds is not None else log.interval_seconds
    accumulator = MetricsAccumulator(
        config=log.config,
        interval_seconds=ins,
        hotkey_failure_share=hotkey_failure_share,
        hotkey_min_failures=hotkey_min_failures,
    )
    for record in log.records:
        accumulator.consume(record)
    return accumulator.finish()


#: An activity must account for at least this share of a key's failures to
#: count toward the key's failed-activity significance (filters one-off
#: accesses like the single seeResults transaction in the voting use case).
SIGNIFICANT_ACTIVITY_SHARE = 0.05


def _significant_activities(counts: dict[str, int]) -> list[str]:
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        activity
        for activity, count in counts.items()
        if count / total >= SIGNIFICANT_ACTIVITY_SHARE
    ]
