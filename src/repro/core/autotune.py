"""Automatic threshold tuning (paper Section 9, future work).

"Presently, the threshold settings of BlockOptR depend on the business
network setup ... tuning these thresholds automatically in BlockOptR could
be a future extension."

Two tuners are provided:

* :func:`calibrate_rate_threshold` — derives ``Rt1`` (the high-traffic
  rate) from the log itself: the paper sets it to the deployment's
  sustainable rate ("higher rates led to instabilities"), which we
  estimate as the send rate at which per-interval failure shares start
  exceeding ``Rt2``.
* :class:`GridTuner` — supervised tuning: given labelled logs (log +
  the recommendations an expert says are correct), grid-search the
  threshold space for the setting with the best F1 agreement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.metrics import compute_metrics
from repro.core.recommendations import OptimizationKind
from repro.core.rules import evaluate_rules
from repro.core.thresholds import Thresholds
from repro.logs.blockchain_log import BlockchainLog


def calibrate_rate_threshold(
    log: BlockchainLog, thresholds: Thresholds | None = None
) -> Thresholds:
    """Set ``Rt1`` to the lowest interval rate whose failure share exceeds
    ``Rt2`` — the deployment's observed instability point.

    If no interval is unstable the existing ``Rt1`` is kept (there is no
    evidence the current traffic is too high).
    """
    thresholds = thresholds or Thresholds()
    metrics = compute_metrics(log, interval_seconds=thresholds.interval_seconds)
    unstable_rates = [
        rate
        for rate, failures in zip(metrics.trd, metrics.frd)
        if rate > 0 and failures >= rate * thresholds.failure_fraction
    ]
    if not unstable_rates:
        return thresholds
    return replace(thresholds, rate_high=min(unstable_rates))


@dataclass(frozen=True)
class LabelledLog:
    """A training example: a log and its expert-approved recommendations."""

    log: BlockchainLog
    expected: frozenset[OptimizationKind]


@dataclass
class TuningResult:
    """Best thresholds found plus the search trace."""

    thresholds: Thresholds
    f1: float
    evaluated: int
    trace: list[tuple[dict, float]] = field(default_factory=list)


#: Default search grid: a coarse sweep around the paper's defaults.
DEFAULT_GRID: dict[str, Sequence[float]] = {
    "failure_fraction": (0.1, 0.3, 0.5),
    "reorderable_mvcc_share": (0.2, 0.4, 0.6),
    "hotkey_failure_share": (0.05, 0.1, 0.2),
}


class GridTuner:
    """Grid search over threshold settings against labelled logs."""

    def __init__(self, grid: dict[str, Sequence[float]] | None = None) -> None:
        self.grid = dict(grid or DEFAULT_GRID)
        for name in self.grid:
            if not hasattr(Thresholds(), name):
                raise ValueError(f"unknown threshold {name!r}")

    def _candidates(self) -> Iterable[Thresholds]:
        names = sorted(self.grid)
        for values in itertools.product(*(self.grid[name] for name in names)):
            yield Thresholds(**dict(zip(names, values)))

    @staticmethod
    def _f1(predicted: set[OptimizationKind], expected: frozenset[OptimizationKind]) -> float:
        if not predicted and not expected:
            return 1.0
        true_positive = len(predicted & expected)
        if true_positive == 0:
            return 0.0
        precision = true_positive / len(predicted)
        recall = true_positive / len(expected)
        return 2 * precision * recall / (precision + recall)

    def _score(self, thresholds: Thresholds, examples: Sequence[LabelledLog]) -> float:
        scores = []
        for example in examples:
            metrics = compute_metrics(
                example.log,
                interval_seconds=thresholds.interval_seconds,
                hotkey_failure_share=thresholds.hotkey_failure_share,
                hotkey_min_failures=thresholds.hotkey_min_failures,
            )
            predicted = {rec.kind for rec in evaluate_rules(metrics, thresholds)}
            scores.append(self._f1(predicted, example.expected))
        return sum(scores) / len(scores)

    def tune(self, examples: Sequence[LabelledLog]) -> TuningResult:
        """Return the grid point with the best mean F1 over ``examples``."""
        if not examples:
            raise ValueError("tuning needs at least one labelled log")
        best: Thresholds | None = None
        best_score = -1.0
        trace: list[tuple[dict, float]] = []
        evaluated = 0
        names = sorted(self.grid)
        for candidate in self._candidates():
            score = self._score(candidate, examples)
            evaluated += 1
            trace.append(
                ({name: getattr(candidate, name) for name in names}, score)
            )
            if score > best_score:
                best, best_score = candidate, score
        assert best is not None
        return TuningResult(
            thresholds=best, f1=best_score, evaluated=evaluated, trace=trace
        )
