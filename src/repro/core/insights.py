"""Deeper log analytics beyond the nine rules.

The paper's metrics section hints at analyses the rules only partially
consume — proximity-correlation versus block size (inter- vs intra-block
failures, which "helps to choose between inter- or intra-block transaction
reordering strategies"), conflict-graph structure, and per-activity
failure profiles.  This module computes those as a structured
:class:`LogInsights` object, used by the extended report and the
scheduler-choice ablation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx

from repro.core.metrics import LogMetrics


@dataclass
class ActivityProfile:
    """One activity's health summary."""

    total: int
    failures: int
    failure_rate: float
    failed_as_victim: int
    caused_as_culprit: int


@dataclass
class LogInsights:
    """Structural analytics over one analyzed log."""

    #: Share of conflict pairs whose culprit sits in the same block.
    intra_block_share: float
    #: Histogram of proximity correlations (corP), bucketed.
    distance_histogram: dict[str, int]
    #: Scheduler suggestion per the paper: intra-block failures favour
    #: Fabric++-style in-block reordering; inter-block favours
    #: FabricSharp-style windowed early abort.
    suggested_scheduler: str
    activity_profiles: dict[str, ActivityProfile]
    #: Conflict graph: activities as nodes, culprit -> victim edges
    #: weighted by pair counts.
    conflict_graph: nx.DiGraph = field(repr=False, default_factory=nx.DiGraph)

    def top_victims(self, n: int = 3) -> list[str]:
        """Activities that fail the most as conflict victims."""
        ranked = sorted(
            self.activity_profiles.items(),
            key=lambda item: -item[1].failed_as_victim,
        )
        return [name for name, profile in ranked[:n] if profile.failed_as_victim]

    def top_culprits(self, n: int = 3) -> list[str]:
        """Activities whose writes invalidate the most transactions."""
        ranked = sorted(
            self.activity_profiles.items(),
            key=lambda item: -item[1].caused_as_culprit,
        )
        return [name for name, profile in ranked[:n] if profile.caused_as_culprit]


_BUCKETS = ((1, "1"), (5, "2-5"), (20, "6-20"), (100, "21-100"))


def _bucket(distance: int) -> str:
    for upper, label in _BUCKETS:
        if distance <= upper:
            return label
    return ">100"


def derive_insights(metrics: LogMetrics) -> LogInsights:
    """Compute :class:`LogInsights` from precomputed metrics."""
    pairs = metrics.conflict_pairs
    intra = sum(1 for pair in pairs if pair.same_block)
    intra_share = intra / len(pairs) if pairs else 0.0

    histogram: Counter = Counter(_bucket(pair.distance) for pair in pairs)

    victims: Counter = Counter(pair.failed_activity for pair in pairs)
    culprits: Counter = Counter(pair.culprit_activity for pair in pairs)

    graph = nx.DiGraph()
    edge_weights: Counter = Counter(
        (pair.culprit_activity, pair.failed_activity) for pair in pairs
    )
    for (culprit, victim), weight in edge_weights.items():
        graph.add_edge(culprit, victim, weight=weight)

    profiles = {}
    for activity, stats in metrics.activity_stats.items():
        profiles[activity] = ActivityProfile(
            total=stats.total,
            failures=stats.failures,
            failure_rate=stats.failures / stats.total if stats.total else 0.0,
            failed_as_victim=victims.get(activity, 0),
            caused_as_culprit=culprits.get(activity, 0),
        )

    # Paper Section 4.3 (metric 8): "If intra-block failures are very high,
    # smaller block sizes can potentially reduce failures ... helps to
    # choose between inter- or intra-block transaction reordering".
    if not pairs:
        suggestion = "none"
    elif intra_share >= 0.5:
        suggestion = "fabricpp"  # in-block reordering removes intra-block conflicts
    else:
        suggestion = "fabricsharp"  # windowed early abort targets inter-block staleness

    return LogInsights(
        intra_block_share=intra_share,
        distance_histogram=dict(histogram),
        suggested_scheduler=suggestion,
        activity_profiles=profiles,
        conflict_graph=graph,
    )


def render_insights(insights: LogInsights) -> str:
    """Readable appendix for the BlockOptR report."""
    lines = [
        "Conflict structure",
        "------------------",
        f"intra-block failure share: {insights.intra_block_share:.0%}"
        f" -> suggested system-level scheduler: {insights.suggested_scheduler}",
        f"conflict distances (commit-order positions): "
        + ", ".join(
            f"{label}: {count}"
            for label, count in sorted(insights.distance_histogram.items())
        ),
    ]
    victims = insights.top_victims()
    culprits = insights.top_culprits()
    if victims:
        lines.append(f"most-failing activities: {', '.join(victims)}")
    if culprits:
        lines.append(f"most-invalidating activities: {', '.join(culprits)}")
    return "\n".join(lines)
