"""The nine recommendation rules (paper Table 1).

Each rule is a pure function ``(LogMetrics, Thresholds) -> Recommendation
| None``; :func:`evaluate_rules` runs them all.  Rules follow Table 1's
necessary conditions, with the two documented disambiguations from
DESIGN.md (block-size tolerance band, fair-share endorser detection) and
the paper's prose thresholds (40% reorderable-MVCC share from Section
6.1.5).
"""

from __future__ import annotations

from typing import Callable

from repro.core.metrics import LogMetrics
from repro.core.recommendations import OptimizationKind, Recommendation
from repro.core.thresholds import Thresholds
from repro.fabric.policy import parse_policy
from repro.fabric.transaction import TxType

Rule = Callable[[LogMetrics, Thresholds], "Recommendation | None"]

#: Transaction types counted as "read-like" when deciding whether a
#: reorderable activity should move to the front (reads first) or back.
_READ_TYPES = {TxType.READ, TxType.RANGE_READ}


def rule_activity_reordering(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: corDV(x,y) == 1 and WS(x) ∩ WS(y) == ∅.

    Recommended when reorderable conflict pairs explain at least
    ``reorderable_mvcc_share`` (40%) of the MVCC failures, and the pair
    involves two *different* activities (a self-dependent activity cannot
    be fixed by reordering, e.g. Update-vs-Update in Experiment 5).
    """
    if metrics.mvcc_failures < thresholds.reorderable_min_failures:
        return None
    cross_pairs = [
        pair
        for pair in metrics.conflict_pairs
        if pair.reorderable and pair.failed_activity != pair.culprit_activity
    ]
    share = len(cross_pairs) / metrics.mvcc_failures
    if share < thresholds.reorderable_mvcc_share:
        return None

    activity_pairs = sorted(
        {(p.failed_activity, p.culprit_activity) for p in cross_pairs}
    )
    # All reorderable failing activities move to the *front* of the
    # schedule: a front group only ever races against its own writes,
    # which are disjoint from the culprits' by the reorderability
    # condition, whereas a back group is endorsed while the main flow's
    # tail is still committing (pipeline backlog) and keeps failing at
    # the boundary.  The paper reorders in both directions depending on
    # business semantics; performance-wise front placement dominates.
    culprits = {culprit for _, culprit in activity_pairs}
    front = {failed for failed, _ in activity_pairs if failed not in culprits}

    return Recommendation(
        kind=OptimizationKind.ACTIVITY_REORDERING,
        rationale=(
            f"{share:.0%} of MVCC failures come from reorderable activity "
            f"pairs {activity_pairs}"
        ),
        evidence={
            "reorderable_share": share,
            "reorderable_pairs": activity_pairs,
            "mvcc_failures": metrics.mvcc_failures,
            "self_dependent": metrics.self_dependent_activities,
        },
        actions={"front": tuple(sorted(front)), "back": ()},
    )


def rule_process_model_pruning(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: A(x) == A(y) and TT(x) != TT(y).

    An activity whose transactions exhibit a minority transaction type
    deviates from its expected behaviour (e.g. an Unload that only reads
    because no Ship preceded it).  The minority must be small enough to be
    an anomaly, not a second legitimate mode.
    """
    anomalies: dict[str, dict[str, int]] = {}
    for activity, stats in metrics.activity_stats.items():
        minority = stats.minority_types()
        count = sum(minority.values())
        if count < thresholds.pruning_min_anomalies:
            continue
        if count / stats.total >= thresholds.pruning_max_fraction:
            continue  # a second legitimate mode, not an anomaly
        anomalies[activity] = {
            tx_type.value: type_count for tx_type, type_count in minority.items()
        }
    if not anomalies:
        return None
    return Recommendation(
        kind=OptimizationKind.PROCESS_MODEL_PRUNING,
        rationale=(
            f"activities with anomalous transaction types: {sorted(anomalies)}"
        ),
        evidence={"anomalous_activities": anomalies},
        actions={"activities": tuple(sorted(anomalies))},
    )


def rule_transaction_rate_control(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: Trd_i >= Rt1 and Frd_i >= Trd_i * Rt2 for some interval i."""
    hot_intervals = [
        index
        for index, (rate, failures) in enumerate(zip(metrics.trd, metrics.frd))
        if rate >= thresholds.rate_high and failures >= rate * thresholds.failure_fraction
    ]
    if not hot_intervals:
        return None
    worst = max(hot_intervals, key=lambda i: metrics.frd[i])
    return Recommendation(
        kind=OptimizationKind.TRANSACTION_RATE_CONTROL,
        rationale=(
            f"{len(hot_intervals)} interval(s) with rate >= "
            f"{thresholds.rate_high:.0f} TPS and failure share >= "
            f"{thresholds.failure_fraction:.0%} (worst interval {worst})"
        ),
        evidence={
            "hot_intervals": hot_intervals,
            "worst_interval": worst,
            "worst_rate": metrics.trd[worst],
            "worst_failure_rate": metrics.frd[worst],
        },
        actions={"target_rate": 100.0},
    )


def rule_delta_writes(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: corPA(x,y)==1, ST(x)==MRC, |WS|==1, WS(x) ± 1 == WS(y)."""
    candidates = {
        activity: count
        for activity, count in metrics.delta_candidates.items()
        if count >= thresholds.delta_min_candidates
    }
    if not candidates:
        return None
    return Recommendation(
        kind=OptimizationKind.DELTA_WRITES,
        rationale=(
            f"failed single-key increment/decrement updates detected in "
            f"{sorted(candidates)}"
        ),
        evidence={"candidates_per_activity": candidates},
        actions={"activities": tuple(sorted(candidates))},
    )


def rule_smart_contract_partitioning(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: Ksig(HK_i) > 1 — a hotkey accessed by multiple activities.

    When only a single hotkey exists, Table 1 routes the case to data
    model alteration instead (the paper's LAP experiment), so this rule
    requires more than one hotkey.
    """
    del thresholds
    if len(metrics.hotkeys) <= 1:
        return None
    shared = {
        key: sorted(metrics.key_failed_activities.get(key, frozenset()))
        for key in metrics.hotkeys
        if metrics.ksig_failed.get(key, 0) > 1
    }
    if not shared:
        return None
    return Recommendation(
        kind=OptimizationKind.SMART_CONTRACT_PARTITIONING,
        rationale=(
            f"{len(shared)} hotkey(s) accessed by multiple activities, "
            f"e.g. {metrics.hotkeys[0]} by "
            f"{shared.get(metrics.hotkeys[0], [])}"
        ),
        evidence={"hotkeys": metrics.hotkeys, "activities_per_hotkey": shared},
        actions={"hotkeys": tuple(metrics.hotkeys)},
    )


def rule_data_model_alteration(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: Ksig(HK_i) == 1 or |HK| == 1."""
    del thresholds
    if not metrics.hotkeys:
        return None
    single_activity = {
        key: sorted(metrics.key_failed_activities.get(key, frozenset()))
        for key in metrics.hotkeys
        if metrics.ksig_failed.get(key, 0) == 1
    }
    single_hotkey = len(metrics.hotkeys) == 1
    # Precedence over partitioning: when several hotkeys exist and any of
    # them is shared by multiple activities, the case belongs to smart
    # contract partitioning (the paper's DRM experiment); alteration needs
    # a single hotkey (LAP) or exclusively self-dependent hotkeys (DV).
    all_single = len(single_activity) == len(metrics.hotkeys)
    if not single_hotkey and not all_single:
        return None
    if not single_activity and not single_hotkey:
        return None
    if single_hotkey:
        rationale = (
            f"a single hotkey {metrics.hotkeys[0]} concentrates the failures "
            f"— the skewed access warrants a data model redesign"
        )
    else:
        rationale = (
            f"hotkey(s) {sorted(single_activity)} accessed by only one "
            f"activity — the key choice itself causes the self-dependency"
        )
    return Recommendation(
        kind=OptimizationKind.DATA_MODEL_ALTERATION,
        rationale=rationale,
        evidence={
            "hotkeys": metrics.hotkeys,
            "single_activity_hotkeys": single_activity,
            "single_hotkey": single_hotkey,
        },
        actions={"hotkeys": tuple(metrics.hotkeys)},
    )


def rule_block_size_adaptation(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Section 6.1.3: recommend when Bsize_avg deviates from Tr by Bt (60%).

    (Table 1's formal condition is vacuous as printed; see DESIGN.md.)
    The suggested setting follows Table 4: make ``min(Bcount, Tr *
    Btimeout)`` equal the derived transaction rate.
    """
    if metrics.tr <= 0:
        return None
    low = metrics.tr * (1.0 - thresholds.block_tolerance)
    high = metrics.tr * (1.0 + thresholds.block_tolerance)
    if low <= metrics.bsize_avg <= high:
        return None
    suggested = max(1, round(metrics.tr * metrics.btimeout))
    direction = "small" if metrics.bsize_avg < low else "large"
    return Recommendation(
        kind=OptimizationKind.BLOCK_SIZE_ADAPTATION,
        rationale=(
            f"average block size {metrics.bsize_avg:.0f} is too {direction} "
            f"for the derived rate {metrics.tr:.0f} TPS"
        ),
        evidence={
            "bsize_avg": metrics.bsize_avg,
            "tr": metrics.tr,
            "bcount": metrics.bcount,
            "btimeout": metrics.btimeout,
        },
        actions={"block_count": suggested},
    )


def rule_endorser_restructuring(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Endorser bottlenecks: an org endorsing far more than its peers.

    ``fair_share`` mode (default, matching the paper's "we expect an even
    distribution of transactions to all endorsers"): flag orgs above
    ``(1 + Et)`` times the fair share.  ``absolute`` mode is Table 1
    verbatim: ``EDsig(e) > |TX| * Et``.
    """
    if not metrics.edsig_org:
        return None
    try:
        policy = parse_policy(metrics.endorsement_policy)
        policy_orgs = sorted(policy.organizations())
        min_endorsements = policy.min_endorsements()
    except Exception:
        policy_orgs = sorted(metrics.edsig_org)
        min_endorsements = 1
    total_endorsements = sum(metrics.edsig_org.values())
    n_orgs = max(1, len(policy_orgs))
    if thresholds.endorser_mode == "absolute":
        cut = metrics.total_transactions * thresholds.endorser_share
    else:
        cut = (total_endorsements / n_orgs) * (1.0 + thresholds.endorser_share)
    bottlenecks = {
        org: count for org, count in metrics.edsig_org.items() if count > cut
    }
    if not bottlenecks:
        return None
    suggested_policy = f"OutOf({min_endorsements},{','.join(policy_orgs)})"
    return Recommendation(
        kind=OptimizationKind.ENDORSER_RESTRUCTURING,
        rationale=(
            f"endorsement load imbalance: {sorted(bottlenecks)} endorse more "
            f"than {cut:.0f} transactions (policy {metrics.endorsement_policy})"
        ),
        evidence={
            "edsig_org": metrics.edsig_org,
            "bottleneck_orgs": sorted(bottlenecks),
            "threshold": cut,
        },
        actions={"policy": suggested_policy, "balance_selection": True},
    )


def rule_client_resource_boost(
    metrics: LogMetrics, thresholds: Thresholds
) -> Recommendation | None:
    """Table 1: IVsig(c) > |TX| * It, aggregated per organization."""
    cut = metrics.total_transactions * thresholds.invoker_share
    heavy = {
        org: count for org, count in metrics.ivsig_org.items() if count > cut
    }
    if not heavy:
        return None
    org = max(heavy, key=lambda name: heavy[name])
    return Recommendation(
        kind=OptimizationKind.CLIENT_RESOURCE_BOOST,
        rationale=(
            f"organization {org} invokes {heavy[org]} of "
            f"{metrics.total_transactions} transactions (> {cut:.0f})"
        ),
        evidence={"ivsig_org": metrics.ivsig_org, "heavy_orgs": sorted(heavy)},
        actions={"orgs": tuple(sorted(heavy)), "scale_factor": 2},
    )


#: All nine rules, in Figure 1's top-to-bottom order.
ALL_RULES: tuple[Rule, ...] = (
    rule_activity_reordering,
    rule_process_model_pruning,
    rule_transaction_rate_control,
    rule_delta_writes,
    rule_smart_contract_partitioning,
    rule_data_model_alteration,
    rule_block_size_adaptation,
    rule_endorser_restructuring,
    rule_client_resource_boost,
)


def evaluate_rules(
    metrics: LogMetrics, thresholds: Thresholds | None = None
) -> list[Recommendation]:
    """Run every rule; returns the recommendations that fired."""
    thresholds = thresholds or Thresholds()
    recommendations = []
    for rule in ALL_RULES:
        recommendation = rule(metrics, thresholds)
        if recommendation is not None:
            recommendations.append(recommendation)
    return recommendations
