"""BlockOptR core: metrics, the nine recommendation rules, and appliers.

The paper's contribution (Section 4): derive metrics from the blockchain
log (:mod:`~repro.core.metrics`), evaluate the formalized necessary
conditions of Table 1 (:mod:`~repro.core.rules`) under configurable
thresholds (:mod:`~repro.core.thresholds`), orchestrate the Figure 5
workflow (:mod:`~repro.core.recommender`), and implement the Table 4
optimization settings (:mod:`~repro.core.apply`).
"""

from repro.core.apply import ApplyResult, apply_recommendations
from repro.core.autotune import GridTuner, LabelledLog, calibrate_rate_threshold
from repro.core.feedback import FeedbackLoop, FeedbackOutcome, approve_all, technical_only
from repro.core.insights import LogInsights, derive_insights, render_insights
from repro.core.metrics import (
    ConflictPair,
    LogMetrics,
    MetricsAccumulator,
    compute_metrics,
)
from repro.core.recommendations import Level, OptimizationKind, Recommendation
from repro.core.recommender import AnalysisReport, BlockOptR
from repro.core.report import render_report
from repro.core.rules import ALL_RULES, evaluate_rules
from repro.core.thresholds import Thresholds

__all__ = [
    "ALL_RULES",
    "FeedbackLoop",
    "FeedbackOutcome",
    "GridTuner",
    "LabelledLog",
    "LogInsights",
    "approve_all",
    "calibrate_rate_threshold",
    "derive_insights",
    "render_insights",
    "technical_only",
    "AnalysisReport",
    "ApplyResult",
    "BlockOptR",
    "ConflictPair",
    "Level",
    "LogMetrics",
    "MetricsAccumulator",
    "OptimizationKind",
    "Recommendation",
    "Thresholds",
    "apply_recommendations",
    "compute_metrics",
    "evaluate_rules",
    "render_report",
]
