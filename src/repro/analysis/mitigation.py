"""The selectable failure-mitigation strategies.

The canonical name list lives on :data:`repro.fabric.config.MITIGATIONS`
(the network validates its configuration against it); this module adds
the operator-facing descriptions the CLI and docs render, and a helper to
resolve/validate a name with a useful error.

Strategies (mechanics and trade-offs: docs/FAILURES.md):

``none``
    The seed behaviour — no intervention; the baseline every comparison
    is made against.
``early_abort``
    Clients re-check the endorsed read set against currently committed
    state at packaging time and drop already-stale transactions before
    ordering (FabricSharp's idea, applied at the client).  Converts
    would-be MVCC/phantom conflicts into cheap early aborts and frees
    block space.
``reorder``
    The ordering service applies the abort-free conflict-aware scheduler
    (:class:`~repro.fabric.reorder.ConflictAwareScheduler`): readers are
    emitted before in-block writers of the same keys, removing avoidable
    intra-block MVCC conflicts without rejecting any transaction.
"""

from __future__ import annotations

from repro.fabric.config import MITIGATIONS

#: Mitigation name -> one-line description (CLI ``--mitigation`` help).
MITIGATION_DESCRIPTIONS: dict[str, str] = {
    "none": "no mitigation (baseline behaviour)",
    "early_abort": "drop transactions with already-stale read sets before ordering",
    "reorder": "conflict-aware in-block reordering (readers before writers, no aborts)",
}

if set(MITIGATION_DESCRIPTIONS) != set(MITIGATIONS):  # pragma: no cover
    raise RuntimeError(
        "MITIGATION_DESCRIPTIONS out of sync with repro.fabric.config.MITIGATIONS"
    )


def validate_mitigation(name: str) -> str:
    """Return ``name`` if it is a known mitigation, else raise ``ValueError``."""
    if name not in MITIGATIONS:
        raise ValueError(
            f"unknown mitigation {name!r}; known: {', '.join(MITIGATIONS)}"
        )
    return name


def describe_mitigations() -> str:
    """Multi-line ``name — description`` listing for help text and docs."""
    return "\n".join(
        f"{name:<12} {MITIGATION_DESCRIPTIONS[name]}" for name in MITIGATIONS
    )
