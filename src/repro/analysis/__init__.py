"""Failure forensics and mitigation (``repro.analysis``).

Post-processes finished runs into structured failure-forensics reports —
abort-cause taxonomy, hot-key attribution, per-org policy-failure
breakdown, intervention-aligned failure-rate series, retry accounting —
and names the mitigation strategies the network can run with.  The
taxonomy itself is documented in docs/FAILURES.md; ``python -m repro
analyze --cached <exp_id>`` renders a cached run's report.
"""

from repro.analysis.forensics import (
    CAUSES,
    ForensicsAccumulator,
    ForensicsReport,
    RetryStats,
    TimeBucket,
    classify_transaction,
    forensics_report,
    report_digest,
)
from repro.analysis.mitigation import (
    MITIGATION_DESCRIPTIONS,
    describe_mitigations,
    validate_mitigation,
)
from repro.analysis.report import render_cause_summary, render_forensics
from repro.fabric.config import MITIGATIONS

__all__ = [
    "CAUSES",
    "MITIGATIONS",
    "MITIGATION_DESCRIPTIONS",
    "ForensicsAccumulator",
    "ForensicsReport",
    "RetryStats",
    "TimeBucket",
    "classify_transaction",
    "describe_mitigations",
    "forensics_report",
    "render_cause_summary",
    "render_forensics",
    "report_digest",
    "validate_mitigation",
]
