"""Render a forensics report as operator-readable text.

One report renders into sections mirroring the structure of
:class:`~repro.analysis.forensics.ForensicsReport`: headline accounting,
the abort-cause taxonomy table, hot-key and key-family attribution, the
per-organization endorsement breakdown, the failure-rate time series with
scenario interventions inlined at the buckets they fired in, and retry
accounting.  Output is deterministic (no timestamps, no floats beyond
fixed rounding), so tests can compare it verbatim.
"""

from __future__ import annotations

from repro.analysis.forensics import CAUSES, ForensicsReport

#: Width of the failure-rate bar in the time series.
_BAR_WIDTH = 24


def render_forensics(report: ForensicsReport | dict, title: str | None = None) -> str:
    """The full text report for one run (accepts the dict form too)."""
    if isinstance(report, dict):
        report = ForensicsReport.from_dict(report)
    lines: list[str] = []
    if title:
        lines.append(title)
    scenario = report.scenario or "steady-state"
    lines.append(
        f"failure forensics — scenario: {scenario}, mitigation: {report.mitigation}"
    )
    retries = report.retry.resubmissions
    originals = report.total_issued - retries
    issued = f"{report.total_issued}"
    if retries:
        issued += f" ({originals} original + {retries} retries)"
    success_pct = (
        100.0 * report.successes / report.submitted if report.submitted else 0.0
    )
    lines.append(
        f"issued {issued}, submitted {report.submitted}, "
        f"success {report.successes} ({success_pct:.1f}%), "
        f"failed {report.failures}"
    )
    lines.append(f"mvcc abort rate: {100.0 * report.mvcc_abort_rate:.1f}%")

    lines.append("")
    lines.append("abort causes")
    total_failures = max(1, report.failures)
    for cause in CAUSES:
        count = report.cause_counts.get(cause, 0)
        if count == 0:
            continue
        share = 100.0 * count / total_failures
        lines.append(f"  {cause:<28} {count:>6}  {share:5.1f}%")
    if not report.distinct_causes():
        lines.append("  (no failures)")

    if report.hot_keys:
        lines.append("")
        lines.append("hot keys (read-conflict attribution)")
        for key, count in report.hot_keys:
            lines.append(f"  {key:<28} {count:>6}")
    if report.key_families:
        lines.append("")
        lines.append("key families")
        for family, count in report.key_families:
            lines.append(f"  {family:<28} {count:>6}")

    if report.org_policy_failures:
        lines.append("")
        lines.append("missing endorsements by organization")
        for org, count in report.org_policy_failures.items():
            lines.append(f"  {org:<28} {count:>6}")

    if report.buckets:
        lines.append("")
        lines.append(f"failure rate over time ({len(report.buckets)} buckets)")
        lines.extend(_render_series(report))

    if report.retry.resubmissions or report.retry.max_attempt > 1:
        lines.append("")
        lines.append(
            f"retries: {report.retry.resubmissions} resubmissions, "
            f"{report.retry.recovered} recovered, "
            f"{report.retry.exhausted} exhausted, "
            f"deepest attempt {report.retry.max_attempt}"
        )
    return "\n".join(lines)


def _render_series(report: ForensicsReport) -> list[str]:
    """The bucket rows, with interventions inlined where they fired."""
    lines: list[str] = []
    pending = list(report.timeline)
    for index, bucket in enumerate(report.buckets):
        while pending and (
            pending[0][0] < bucket.end or index == len(report.buckets) - 1
        ):
            time, kind, detail = pending.pop(0)
            lines.append(f"    ! {time:7.2f}s {kind}: {detail}")
        bar = "#" * round(_BAR_WIDTH * bucket.failure_rate)
        lines.append(
            f"  [{bucket.start:7.2f}-{bucket.end:7.2f}s] "
            f"{100.0 * bucket.failure_rate:5.1f}% ({bucket.failed}/{bucket.issued}) {bar}"
        )
    return lines


def render_cause_summary(report: ForensicsReport | dict) -> str:
    """One-line ``cause=count`` summary (CLI row annotations)."""
    if isinstance(report, dict):
        report = ForensicsReport.from_dict(report)
    parts = [
        f"{cause}={report.cause_counts[cause]}"
        for cause in CAUSES
        if report.cause_counts.get(cause, 0)
    ]
    return ", ".join(parts) if parts else "no failures"
