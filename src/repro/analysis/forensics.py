"""Failure forensics: post-process one run into a structured report.

The paper's headline metrics (throughput, latency, success rate) say *how
much* failed; this module says *why*, *where* and *when*:

* a per-abort-cause taxonomy (docs/FAILURES.md) finer than
  :class:`~repro.fabric.transaction.TxStatus` — endorsement-policy
  failures split into crashed-peer vs endorsement-timeout, early aborts
  split by pipeline stage;
* hot-key and key-family attribution of read-conflict failures, using
  the ``conflict_key`` the validator records;
* a per-organization breakdown of missing endorsements;
* a time-bucketed failure-rate series whose span lines up with the
  scenario engine's applied-intervention timeline, so a crash window is
  visible as the buckets it poisoned;
* retry-traffic accounting when a
  :class:`~repro.fabric.retry.RetryPolicy` is active.

Everything is a pure function of the finished
:class:`~repro.fabric.network.FabricNetwork`, deterministic per seed;
:func:`report_digest` fingerprints a report for the determinism tests and
the golden forensics file.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fabric.transaction import Transaction, TxStatus
from repro.logs.eventlog import key_family

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.network import FabricNetwork

#: The failure taxonomy, in reporting order (definitions: docs/FAILURES.md).
CAUSES = (
    "mvcc_conflict",
    "phantom_conflict",
    "policy_endorsement_timeout",
    "policy_crashed_peer",
    "policy_unsatisfied",
    "early_abort_stale_read",
    "early_abort_scheduler",
    "early_abort_chaincode",
)

#: Default number of buckets in the failure-rate time series.
DEFAULT_BUCKETS = 12


def classify_transaction(tx: Transaction) -> str | None:
    """Map a finished transaction to its taxonomy cause (``None`` = success).

    Endorsement-policy failures are attributed to *why* the endorsement
    went missing: when both a timed-out and a crashed org contributed, the
    timeout wins — the client spent the full endorsement window waiting on
    it, so it is the operative cause of the transaction's fate and
    latency; a crashed peer is detected immediately.
    """
    if tx.status is None or tx.status is TxStatus.SUCCESS:
        return None
    if tx.status is TxStatus.MVCC_CONFLICT:
        return "mvcc_conflict"
    if tx.status is TxStatus.PHANTOM_CONFLICT:
        return "phantom_conflict"
    if tx.status is TxStatus.ENDORSEMENT_FAILURE:
        reasons = set(tx.missing_reasons)
        if "timeout" in reasons:
            return "policy_endorsement_timeout"
        if "crashed" in reasons:
            return "policy_crashed_peer"
        return "policy_unsatisfied"
    # EARLY_ABORT, by pipeline stage.
    if tx.abort_stage == "stale_read":
        return "early_abort_stale_read"
    if tx.abort_stage == "ordering":
        return "early_abort_scheduler"
    return "early_abort_chaincode"


@dataclass(frozen=True)
class TimeBucket:
    """One slot of the failure-rate series (bucketed by submit time)."""

    start: float
    end: float
    issued: int
    failed: int
    #: Taxonomy cause -> count, causes present in this bucket only.
    causes: dict[str, int]

    @property
    def failure_rate(self) -> float:
        """Failures as a share of this bucket's issued transactions."""
        return self.failed / self.issued if self.issued else 0.0

    def to_dict(self) -> dict:
        """JSON-able form."""
        return {
            "start": self.start,
            "end": self.end,
            "issued": self.issued,
            "failed": self.failed,
            "causes": dict(self.causes),
        }


@dataclass(frozen=True)
class RetryStats:
    """Retry-traffic accounting for one run (all zero without a policy)."""

    resubmissions: int = 0
    recovered: int = 0
    exhausted: int = 0
    max_attempt: int = 1

    def to_dict(self) -> dict:
        """JSON-able form."""
        return {
            "resubmissions": self.resubmissions,
            "recovered": self.recovered,
            "exhausted": self.exhausted,
            "max_attempt": self.max_attempt,
        }


@dataclass
class ForensicsReport:
    """The structured forensics output for one finished run."""

    scenario: str | None
    mitigation: str
    #: Transactions issued, client retries included.
    total_issued: int
    #: Denominator of failure rates: issued minus chaincode-stage aborts
    #: (consistent with :func:`repro.fabric.results.summarize_run`).
    submitted: int
    successes: int
    failures: int
    #: Taxonomy cause -> count, every cause present (zeros included).
    cause_counts: dict[str, int]
    #: Conflict-attributed keys, most-failed first: ``(key, failures)``.
    hot_keys: list[tuple[str, int]]
    #: Conflict failures grouped by key family: ``(family, failures)``.
    key_families: list[tuple[str, int]]
    #: Organization -> number of transactions it failed to endorse.
    org_policy_failures: dict[str, int]
    buckets: list[TimeBucket]
    #: The scenario engine's applied-intervention timeline, when present.
    timeline: list[tuple[float, str, str]] = field(default_factory=list)
    retry: RetryStats = field(default_factory=RetryStats)

    @property
    def mvcc_abort_rate(self) -> float:
        """MVCC read conflicts as a share of submitted transactions."""
        if not self.submitted:
            return 0.0
        return self.cause_counts.get("mvcc_conflict", 0) / self.submitted

    def distinct_causes(self) -> list[str]:
        """The causes that actually occurred, in taxonomy order."""
        return [cause for cause in CAUSES if self.cause_counts.get(cause, 0) > 0]

    def to_dict(self) -> dict:
        """JSON-able form (cached with experiment outcomes)."""
        return {
            "scenario": self.scenario,
            "mitigation": self.mitigation,
            "total_issued": self.total_issued,
            "submitted": self.submitted,
            "successes": self.successes,
            "failures": self.failures,
            "cause_counts": dict(self.cause_counts),
            "hot_keys": [list(item) for item in self.hot_keys],
            "key_families": [list(item) for item in self.key_families],
            "org_policy_failures": dict(self.org_policy_failures),
            "buckets": [bucket.to_dict() for bucket in self.buckets],
            "timeline": [list(entry) for entry in self.timeline],
            "retry": self.retry.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "ForensicsReport":
        """Inverse of :meth:`to_dict` (cache hydration)."""
        try:
            return ForensicsReport(
                scenario=data["scenario"],
                mitigation=data["mitigation"],
                total_issued=data["total_issued"],
                submitted=data["submitted"],
                successes=data["successes"],
                failures=data["failures"],
                cause_counts=dict(data["cause_counts"]),
                hot_keys=[(str(k), int(n)) for k, n in data["hot_keys"]],
                key_families=[(str(k), int(n)) for k, n in data["key_families"]],
                org_policy_failures=dict(data["org_policy_failures"]),
                buckets=[
                    TimeBucket(
                        start=b["start"],
                        end=b["end"],
                        issued=b["issued"],
                        failed=b["failed"],
                        causes=dict(b["causes"]),
                    )
                    for b in data["buckets"]
                ],
                timeline=[
                    (float(t), str(kind), str(detail))
                    for t, kind, detail in data["timeline"]
                ],
                retry=RetryStats(**data["retry"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed forensics report: {exc}") from exc


#: Causes attributable to a specific key (conflict_key is recorded).
_KEYED_CAUSES = frozenset(
    {"mvcc_conflict", "phantom_conflict", "early_abort_stale_read"}
)

#: How many hot keys / families a report keeps.
TOP_N = 10


class ForensicsAccumulator:
    """Streaming forensics: fold finished transactions in, then :meth:`finish`.

    Implements the transaction-consumer protocol (``consume``/``finish``).
    Every internal structure is insensitive to consumption order (counts,
    sorted tops, fixed-order cause maps), so feeding committed and aborted
    transactions interleaved — the way a live run surfaces them — yields
    the same :class:`ForensicsReport` as the historical committed-then-
    aborted batch pass.  Per-transaction state is one timestamp double and
    one cause byte (the bucket series needs the global span before it can
    bin); everything else is bounded by the key space and org count.
    """

    def __init__(self, buckets: int = DEFAULT_BUCKETS) -> None:
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        self._buckets = buckets
        self._cause_counts = {cause: 0 for cause in CAUSES}
        self._cause_index = {cause: i for i, cause in enumerate(CAUSES)}
        self._key_hits: dict[str, int] = {}
        self._family_hits: dict[str, int] = {}
        self._org_failures: dict[str, int] = {}
        self._submitted = 0
        self._successes = 0
        self._max_attempt = 1
        self._stamps = array("d")
        self._stamp_causes = array("b")

    def consume(self, tx: Transaction) -> None:
        """Fold one finished (committed or aborted) transaction in."""
        if tx.attempt > self._max_attempt:
            self._max_attempt = tx.attempt
        if tx.abort_stage != "endorsement":
            self._submitted += 1
        cause = classify_transaction(tx)
        self._stamps.append(tx.client_timestamp)
        self._stamp_causes.append(-1 if cause is None else self._cause_index[cause])
        if cause is None:
            self._successes += 1
            return
        self._cause_counts[cause] += 1
        if cause in _KEYED_CAUSES and tx.conflict_key is not None:
            key_hits = self._key_hits
            key_hits[tx.conflict_key] = key_hits.get(tx.conflict_key, 0) + 1
            parsed = key_family(tx.conflict_key)
            if parsed is not None:
                family_hits = self._family_hits
                family_hits[parsed[0]] = family_hits.get(parsed[0], 0) + 1
        if tx.status is TxStatus.ENDORSEMENT_FAILURE:
            org_failures = self._org_failures
            for org in tx.missing_endorsements:
                org_failures[org] = org_failures.get(org, 0) + 1

    def finish(
        self,
        scenario: str | None = None,
        mitigation: str = "none",
        timeline: list[tuple[float, str, str]] | None = None,
        resubmissions: int = 0,
        recovered: int = 0,
        exhausted: int = 0,
    ) -> ForensicsReport:
        """Close the stream and build the :class:`ForensicsReport`."""
        total = len(self._stamps)
        return ForensicsReport(
            scenario=scenario,
            mitigation=mitigation,
            total_issued=total,
            submitted=self._submitted,
            successes=self._successes,
            failures=total - self._successes,
            cause_counts=self._cause_counts,
            hot_keys=_top(self._key_hits),
            key_families=_top(self._family_hits),
            org_policy_failures=dict(sorted(self._org_failures.items())),
            buckets=self._series(),
            timeline=list(timeline) if timeline else [],
            retry=RetryStats(
                resubmissions=resubmissions,
                recovered=recovered,
                exhausted=exhausted,
                max_attempt=self._max_attempt,
            ),
        )

    def _series(self) -> list[TimeBucket]:
        """Bucket issued/failed counts by client submit time.

        Failures are attributed to the bucket the transaction was
        *submitted* in, not where it committed — a doomed transaction was
        doomed by the conditions at submission, which is what lines the
        series up with the intervention timeline.  The binning arithmetic
        is kept byte-identical to the pinned golden forensics report.
        """
        stamps = self._stamps
        if not stamps:
            return []
        start = min(stamps)
        end = max(stamps)
        buckets = self._buckets
        width = (end - start) / buckets if end > start else 0.0
        if width <= 0.0:
            buckets = 1

        issued = [0] * buckets
        failed = [0] * buckets
        causes: list[dict[str, int]] = [{} for _ in range(buckets)]
        for stamp, cause_index in zip(stamps, self._stamp_causes):
            if width > 0.0:
                index = min(buckets - 1, int((stamp - start) / width))
            else:
                index = 0
            issued[index] += 1
            if cause_index >= 0:
                failed[index] += 1
                cause = CAUSES[cause_index]
                causes[index][cause] = causes[index].get(cause, 0) + 1

        out = []
        for index in range(buckets):
            bucket_start = start + index * width
            bucket_end = end if index == buckets - 1 else start + (index + 1) * width
            out.append(
                TimeBucket(
                    start=bucket_start,
                    end=bucket_end,
                    issued=issued[index],
                    failed=failed[index],
                    causes={
                        cause: causes[index][cause]
                        for cause in CAUSES
                        if cause in causes[index]
                    },
                )
            )
        return out


def forensics_report(
    network: "FabricNetwork", buckets: int = DEFAULT_BUCKETS
) -> ForensicsReport:
    """Post-process a finished network into a :class:`ForensicsReport`.

    Thin batch wrapper over :class:`ForensicsAccumulator` — pure and
    deterministic: reads the ledger, the aborted set and the scenario
    timeline; mutates nothing.  ``buckets`` controls the resolution of
    the failure-rate series.
    """
    accumulator = ForensicsAccumulator(buckets=buckets)
    for tx in network.ledger.transactions(include_config=False):
        accumulator.consume(tx)
    for tx in network.aborted:
        accumulator.consume(tx)

    timeline: list[tuple[float, str, str]] = []
    scenario_name = None
    if network.scenario_engine is not None:
        scenario_name = network.scenario_engine.spec.name
        timeline = sorted(network.scenario_engine.timeline, key=lambda e: (e[0], e[1]))

    return accumulator.finish(
        scenario=scenario_name,
        mitigation=network.config.mitigation,
        timeline=timeline,
        resubmissions=network.retries_issued,
        recovered=network.retries_recovered,
        exhausted=network.retries_exhausted,
    )


def _top(hits: dict[str, int], n: int = TOP_N) -> list[tuple[str, int]]:
    """Most-hit entries first; count desc, then key asc (deterministic)."""
    return sorted(hits.items(), key=lambda item: (-item[1], item[0]))[:n]


def report_digest(report: ForensicsReport | dict) -> str:
    """SHA-256 over the canonical JSON form of a report.

    Two runs are forensically identical iff their digests match — the
    determinism tests and the golden forensics file key on this.
    """
    data = report.to_dict() if isinstance(report, ForensicsReport) else report
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
