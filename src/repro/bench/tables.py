"""Paper-style table rendering for experiment outcomes."""

from __future__ import annotations

from repro.bench.harness import ExperimentOutcome, RunRow

_HEADER = f"{'run':<28} {'tput(tps)':>10} {'lat(s)':>8} {'success%':>9}"


def _format_row(row: RunRow) -> str:
    flag = " *" if row.forced else ""
    return (
        f"{row.label:<28} {row.throughput:>10.1f} {row.latency:>8.2f} "
        f"{row.success_pct:>9.1f}{flag}"
    )


def format_outcome(outcome: ExperimentOutcome) -> str:
    """Measured rows only."""
    lines = [f"== {outcome.name} ==", _HEADER]
    lines.extend(_format_row(row) for row in outcome.rows)
    if outcome.recommendations:
        lines.append(f"recommended: {', '.join(outcome.recommendations)}")
    if any(row.forced for row in outcome.rows):
        lines.append("(* = applied although not recommended at current thresholds)")
    return "\n".join(lines)


def format_paper_comparison(outcome: ExperimentOutcome) -> str:
    """Measured vs paper, side by side, for EXPERIMENTS.md and bench output."""
    lines = [
        f"== {outcome.name} ==",
        f"{'run':<28} {'tput':>8} {'lat':>7} {'succ%':>7}   "
        f"{'paper tput':>10} {'paper lat':>9} {'paper succ%':>11}",
    ]
    for row in outcome.rows:
        paper = outcome.paper.get(row.label)
        if paper is None:
            paper_cells = f"{'-':>10} {'-':>9} {'-':>11}"
        else:
            paper_cells = f"{paper[0]:>10.1f} {paper[1]:>9.2f} {paper[2]:>11.1f}"
        flag = " *" if row.forced else ""
        lines.append(
            f"{row.label:<28} {row.throughput:>8.1f} {row.latency:>7.2f} "
            f"{row.success_pct:>7.1f}   {paper_cells}{flag}"
        )
    if outcome.recommendations:
        lines.append(f"recommended: {', '.join(outcome.recommendations)}")
    return "\n".join(lines)


def improvement(outcome: ExperimentOutcome, label: str) -> dict[str, float]:
    """Relative change of a run vs the baseline (positive = better)."""
    base = outcome.row("without")
    row = outcome.row(label)
    return {
        "throughput": _relative(base.throughput, row.throughput),
        "latency": _relative(row.latency, base.latency),  # lower is better
        "success": _relative(base.success_pct, row.success_pct),
    }


def _relative(before: float, after: float) -> float:
    if before <= 0:
        return 0.0
    return (after - before) / before
