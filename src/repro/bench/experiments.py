"""Experiment definitions: Table 3 and Figures 7-19, with paper values.

Every bench module in ``benchmarks/`` pulls its experiment definition and
the paper's reported numbers from here, so the per-experiment index in
DESIGN.md maps one-to-one onto this file.

Scale: the paper runs 10,000 transactions per workload; benches default to
``REPRO_BENCH_TXS`` (4,000) and scale phase counts proportionally.  Shapes
(who wins, direction, crossover) are scale-stable; absolute numbers are
recorded next to the paper's in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.bench.harness import MakeBundle
from repro.contracts.registry import (
    ContractFamily,
    drm_family,
    ehr_family,
    genchain_family,
    loan_family,
    scm_family,
    voting_family,
)
from repro.core.recommendations import OptimizationKind as K
from repro.workloads.loan import generate_loan_event_log, loan_workload
from repro.workloads.spec import ControlVariables, WorkloadType
from repro.workloads.synthetic import synthetic_workload
from repro.workloads.usecases import (
    UseCaseSpec,
    drm_workload,
    ehr_workload,
    scm_workload,
    voting_workload,
)

#: Bench transaction budget (the paper uses 10,000).
SCALE_TXS = int(os.environ.get("REPRO_BENCH_TXS", "4000"))


def scaled(paper_count: int, total: int | None = None) -> int:
    """Scale one of the paper's per-10,000-transaction counts to a budget.

    ``total`` defaults to the bench budget (``REPRO_BENCH_TXS``); pass an
    explicit budget to scale consistently under overrides.  Single source
    for every derived count (loan applications, voting query/vote split).
    """
    budget = SCALE_TXS if total is None else total
    return max(100, round(paper_count * budget / 10_000))


# -- Table 3: the 15 synthetic experiments ---------------------------------------

def synthetic_spec(experiment: str, seed: int = 7) -> ControlVariables:
    """The ControlVariables for one named synthetic experiment.

    Names follow Table 3 plus the two extra figure configurations
    (``block_count_100``, ``block_count_500``, ``send_rate_500``,
    ``send_rate_500_1000``, ``endorsement_policy_p3``).
    """
    spec = ControlVariables(total_transactions=SCALE_TXS, seed=seed)
    if experiment == "default":
        pass
    elif experiment == "endorsement_policy_p1":
        spec.endorsement_policy, spec.num_orgs = "P1", 4
    elif experiment == "endorsement_policy_p2_skew":
        spec.endorsement_policy, spec.num_orgs = "P2", 4
        spec.endorser_dist_skew = 6.0
    elif experiment == "endorsement_policy_p3":
        spec.endorsement_policy, spec.num_orgs = "P3", 4
    elif experiment == "num_orgs_4":
        spec.num_orgs = 4
    elif experiment == "workload_read_heavy":
        spec.workload_type = WorkloadType.READ_HEAVY
    elif experiment == "workload_update_heavy":
        spec.workload_type = WorkloadType.UPDATE_HEAVY
    elif experiment == "workload_insert_heavy":
        spec.workload_type = WorkloadType.INSERT_HEAVY
    elif experiment == "workload_rangeread_heavy":
        spec.workload_type = WorkloadType.RANGEREAD_HEAVY
    elif experiment == "key_dist_skew_2":
        spec.key_dist_skew = 2.0
    elif experiment == "block_count_50":
        spec.block_count = 50
    elif experiment == "block_count_100":
        spec.block_count = 100
    elif experiment == "block_count_300":
        spec.block_count = 300
    elif experiment == "block_count_500":
        spec.block_count = 500
    elif experiment == "block_count_1000":
        spec.block_count = 1000
    elif experiment == "send_rate_50":
        spec.send_rate = 50.0
    elif experiment == "send_rate_300":
        spec.send_rate = 300.0
    elif experiment == "send_rate_500":
        spec.send_rate = 500.0
    elif experiment == "send_rate_1000":
        spec.send_rate = 1000.0
    elif experiment == "send_rate_500_1000":
        half = SCALE_TXS // 2
        spec.send_rate_phases = [(half, 500.0), (SCALE_TXS - half, 1000.0)]
    elif experiment == "tx_dist_skew_70":
        spec.tx_dist_skew = 0.7
    else:
        raise KeyError(f"unknown synthetic experiment {experiment!r}")
    return spec


def make_synthetic(
    experiment: str,
    seed: int = 7,
    scheduler: str = "fifo",
    total_transactions: int | None = None,
) -> MakeBundle:
    """Bundle factory for a named synthetic experiment.

    ``total_transactions`` overrides the bench budget (tests use small
    runs); phased schedules rescale their per-phase counts proportionally.
    """

    def make():
        spec = synthetic_spec(experiment, seed=seed)
        spec.scheduler = scheduler
        if total_transactions is not None:
            _rescale_transactions(spec, total_transactions)
        config, _, requests = synthetic_workload(spec)
        return config, genchain_family(num_keys=spec.num_keys), requests

    return make


#: ControlVariables knobs a ``tuned`` bundle (experiment matrices) may
#: override.  Deliberately scalar-only: phased/profiled schedules stay
#: the domain of named experiments and scenarios.
TUNABLE_FIELDS = frozenset(
    {
        "workload_type",
        "endorsement_policy",
        "endorser_dist_skew",
        "key_dist_skew",
        "num_orgs",
        "block_count",
        "block_timeout",
        "send_rate",
        "tx_dist_skew",
        "num_keys",
        "clients_per_org",
        "endorsers_per_org",
        "scheduler",
    }
)


def make_tuned(
    base: str,
    overrides: tuple,
    seed: int = 7,
    total_transactions: int | None = None,
) -> MakeBundle:
    """Bundle factory for a synthetic experiment with knob overrides.

    ``overrides`` is a declarative ``((field, value), ...)`` tuple applied
    on top of :func:`synthetic_spec`'s ``base`` — the factorial front-end
    of :mod:`repro.bench.matrix` uses this to cross *numeric* factors
    (block size × send rate × workload mix) that no single named
    experiment exposes.  Fields are restricted to :data:`TUNABLE_FIELDS`
    and the combined spec is re-validated after all overrides land, so an
    impossible combination (e.g. a P1 policy with 2 orgs) fails at
    expansion time, not mid-sweep.
    """
    for field_name, _ in overrides:
        if field_name not in TUNABLE_FIELDS:
            raise KeyError(
                f"unknown tunable field {field_name!r}; "
                f"valid: {', '.join(sorted(TUNABLE_FIELDS))}"
            )

    def make():
        spec = synthetic_spec(base, seed=seed)
        for field_name, value in overrides:
            if field_name == "workload_type":
                value = WorkloadType(value)
            setattr(spec, field_name, value)
        spec.__post_init__()  # re-validate the combined knob settings
        if total_transactions is not None:
            _rescale_transactions(spec, total_transactions)
        config, _, requests = synthetic_workload(spec)
        return config, genchain_family(num_keys=spec.num_keys), requests

    return make


def _rescale_transactions(spec: ControlVariables, total: int) -> None:
    """Set a new transaction budget, keeping phase proportions intact."""
    if spec.send_rate_phases:
        old_total = sum(count for count, _ in spec.send_rate_phases)
        phases = [
            (max(1, round(count * total / old_total)), rate)
            for count, rate in spec.send_rate_phases[:-1]
        ]
        consumed = sum(count for count, _ in phases)
        phases.append((max(1, total - consumed), spec.send_rate_phases[-1][1]))
        spec.send_rate_phases = phases
        total = sum(count for count, _ in phases)
    spec.total_transactions = total


#: Table 3: experiment -> the recommendations the paper reports.
TABLE3_EXPECTED: dict[str, set[K]] = {
    "endorsement_policy_p1": {K.ENDORSER_RESTRUCTURING, K.ACTIVITY_REORDERING},
    "endorsement_policy_p2_skew": {K.ENDORSER_RESTRUCTURING, K.ACTIVITY_REORDERING},
    "num_orgs_4": {K.TRANSACTION_RATE_CONTROL},
    "workload_read_heavy": {K.ACTIVITY_REORDERING},
    "workload_update_heavy": {K.TRANSACTION_RATE_CONTROL},
    "workload_insert_heavy": {K.ACTIVITY_REORDERING},
    "workload_rangeread_heavy": {K.ACTIVITY_REORDERING, K.TRANSACTION_RATE_CONTROL},
    "key_dist_skew_2": {
        K.ACTIVITY_REORDERING,
        K.SMART_CONTRACT_PARTITIONING,
        K.BLOCK_SIZE_ADAPTATION,
    },
    "block_count_50": {K.ACTIVITY_REORDERING, K.TRANSACTION_RATE_CONTROL},
    "block_count_300": {K.ACTIVITY_REORDERING, K.TRANSACTION_RATE_CONTROL},
    "block_count_1000": {K.ACTIVITY_REORDERING},
    "send_rate_50": {K.ACTIVITY_REORDERING},
    "send_rate_300": {
        K.ACTIVITY_REORDERING,
        K.BLOCK_SIZE_ADAPTATION,
        K.TRANSACTION_RATE_CONTROL,
    },
    "send_rate_1000": {K.ACTIVITY_REORDERING, K.TRANSACTION_RATE_CONTROL},
    "tx_dist_skew_70": {K.ACTIVITY_REORDERING, K.CLIENT_RESOURCE_BOOST},
}


# -- Figures 7-12: paper values (throughput tps, latency s, success %) ------------

FIG7_ENDORSER = {
    "endorsement_policy_p1": {
        "without": (107.1, 16.8, 87.5),
        "endorser restructuring": (151.4, 10.4, 89.4),
    },
    "endorsement_policy_p2_skew": {
        "without": (103.4, 19.2, 77.4),
        "endorser restructuring": (141.1, 12.3, 87.9),
    },
}

FIG8_CLIENT_BOOST = {
    "tx_dist_skew_70": {
        "without": (160.8, 3.3, 59.9),
        "client resource boost": (190.6, 0.8, 64.4),
    }
}

FIG9_BLOCK_SIZE = {
    "block_count_50": {
        "without": (14.8, 3.3, 13.8),
        "block size adaptation": (217.9, 4.9, 92.8),
    },
    "block_count_100": {
        "without": (43.6, 6.8, 37.6),
        "block size adaptation": (217.9, 4.4, 92.6),
    },
    "send_rate_1000": {
        "without": (189.1, 11.4, 63.3),
        "block size adaptation": (199.1, 11.2, 65.7),
    },
    "send_rate_500_1000": {
        "without": (182.8, 12.5, 79.0),
        "block size adaptation": (227.3, 10.0, 84.5),
    },
}

FIG10_RATE_CONTROL = {
    "endorsement_policy_p3": {
        "without": (121.9, 16.1, 84.7),
        "transaction rate control": (88.6, 4.8, 97.3),
    },
    "num_orgs_4": {
        "without": (117.7, 16.7, 84.9),
        "transaction rate control": (90.1, 4.3, 97.4),
    },
    "workload_update_heavy": {
        "without": (179.4, 6.1, 83.5),
        "transaction rate control": (95.3, 2.2, 97.0),
    },
    "key_dist_skew_2": {
        "without": (99.3, 2.9, 37.7),
        "transaction rate control": (40.6, 1.2, 41.3),
    },
    "block_count_300": {
        "without": (173.3, 8.1, 81.6),
        "transaction rate control": (97.0, 1.4, 99.1),
    },
    "block_count_500": {
        "without": (204.1, 6.7, 91.8),
        "transaction rate control": (95.7, 1.6, 99.1),
    },
    "block_count_1000": {
        "without": (211.6, 6.3, 91.9),
        "transaction rate control": (95.7, 2.0, 98.7),
    },
    "send_rate_500": {
        "without": (155.7, 13.3, 85.4),
        "transaction rate control": (94.9, 1.9, 98.9),
    },
    "send_rate_1000": {
        "without": (189.1, 11.4, 63.3),
        "transaction rate control": (96.7, 1.4, 99.2),
    },
    "send_rate_500_1000": {
        "without": (182.8, 12.5, 79.0),
        "transaction rate control": (95.6, 1.9, 98.8),
    },
    "tx_dist_skew_70": {
        "without": (160.8, 3.3, 59.9),
        "transaction rate control": (73.4, 1.1, 74.0),
    },
}

FIG11_REORDERING = {
    "endorsement_policy_p1": {
        "without": (107.1, 16.8, 87.5),
        "activity reordering": (198.2, 7.1, 92.1),
    },
    "endorsement_policy_p2_skew": {
        "without": (103.4, 19.2, 77.4),
        "activity reordering": (152.3, 9.5, 91.5),
    },
    "workload_read_heavy": {
        "without": (231.8, 4.3, 95.2),
        "activity reordering": (243.9, 3.9, 96.2),
    },
    "workload_insert_heavy": {
        "without": (208.1, 6.4, 97.2),
        "activity reordering": (239.0, 4.1, 97.9),
    },
    "workload_rangeread_heavy": {
        "without": (12.4, 27.3, 11.5),
        "activity reordering": (36.2, 22.7, 27.8),
    },
    "key_dist_skew_2": {
        "without": (99.3, 2.9, 37.7),
        "activity reordering": (172.1, 2.0, 67.8),
    },
    "block_count_50": {
        "without": (14.8, 3.3, 13.8),
        "activity reordering": (19.2, 2.3, 18.4),
    },
    "block_count_300": {
        "without": (173.3, 8.1, 81.6),
        "activity reordering": (221.7, 5.0, 92.7),
    },
    "block_count_1000": {
        "without": (211.6, 6.3, 91.9),
        "activity reordering": (239.6, 3.7, 94.4),
    },
    "send_rate_50": {
        "without": (49.2, 1.5, 99.4),
        "activity reordering": (49.6, 1.1, 99.7),
    },
    "send_rate_300": {
        "without": (174.4, 7.3, 90.9),
        "activity reordering": (188.2, 6.8, 92.1),
    },
    "send_rate_1000": {
        "without": (189.1, 11.4, 63.3),
        "activity reordering": (200.6, 10.4, 64.6),
    },
    "tx_dist_skew_70": {
        "without": (160.8, 3.3, 59.9),
        "activity reordering": (217.8, 2.1, 77.8),
    },
}

FIG12_COMBINED = {
    "endorsement_policy_p1": {
        "without": (107.1, 16.8, 87.5),
        "all": (159.3, 11.8, 89.8),
    },
    "endorsement_policy_p2_skew": {
        "without": (103.4, 19.2, 77.4),
        "all": (152.1, 12.2, 85.0),
    },
    "key_dist_skew_2": {"without": (99.3, 2.9, 37.7), "all": (67.2, 1.2, 68.5)},
    "block_count_50": {"without": (14.8, 3.3, 13.8), "all": (230.6, 3.6, 93.6)},
    "block_count_300": {"without": (173.3, 8.1, 81.6), "all": (97.1, 1.3, 99.3)},
    "block_count_1000": {"without": (211.6, 6.3, 91.9), "all": (97.5, 1.6, 99.1)},
    "send_rate_1000": {"without": (189.1, 11.4, 63.3), "all": (95.7, 1.7, 98.9)},
    "tx_dist_skew_70": {"without": (160.8, 3.3, 59.9), "all": (85.8, 0.8, 86.6)},
}


# -- Figures 13-17: use cases -------------------------------------------------------

FIG13_SCM = {
    "without": (207.48, 7.28, 79.83),
    "transaction rate control": (98.18, 1.10, 99.47),
    "activity reordering": (275.31, 2.59, 94.22),
    "process model pruning": (286.62, 1.87, 99.04),
    "all": (96.76, 3.79, 97.73),
}

FIG14_DRM = {
    "without": (35.1, 14.0, 20.1),
    "delta writes": (60.7, 18.1, 49.7),
    "activity reordering": (81.4, 11.7, 47.6),
    "smart contract partitioning": (53.4, 10.5, 27.3),
    "all": (110.7, 6.0, 82.6),
}

FIG15_EHR = {
    "without": (55.57, 6.40, 19.70),
    "transaction rate control": (64.34, 1.78, 65.39),
    "activity reordering": (135.96, 3.57, 57.94),
    "process model pruning": (99.56, 2.31, 35.01),
    "all": (75.97, 1.77, 78.85),
}

FIG16_DV = {
    "without": (4.2, 4.6, 10.2),
    "transaction rate control": (4.7, 3.7, 11.3),
    "data model alteration": (54.3, 4.1, 100.0),
    "all": (46.3, 2.3, 100.0),
}

FIG17_LAP = {
    "send_rate_10": {
        "without": (3.2, 1.5, 31.8),
        "data model alteration": (6.6, 1.2, 66.0),
    },
    "send_rate_300": {
        "without": (18.7, 2.0, 7.0),
        "data model alteration": (63.3, 1.4, 22.0),
        "transaction rate control": (14.2, 1.1, 14.4),
        "all": (24.4, 1.6, 24.9),
    },
}


# -- Figures 18-19: Fabric extensions ------------------------------------------------

FIG18_FABRICSHARP = {
    "endorsement_policy_p1": {
        "without": (100.92, 2.09, 94.14),
        "endorser restructuring": (103.56, 2.07, 96.56),
    },
    "endorsement_policy_p2_skew": {
        "without": (96.56, 2.04, 90.08),
        "endorser restructuring": (99.16, 1.90, 92.50),
    },
    "workload_insert_heavy": {
        "without": (93.36, 3.54, 87.17),
        "transaction rate control": (62.32, 1.42, 99.47),
    },
}

FIG19_FABRICPP = {
    "workload_update_heavy": {
        "without": (106.27, 3.62, 41.04),
        "transaction rate control": (57.56, 1.33, 59.22),
        "activity reordering": (159.47, 3.13, 61.87),
        "all": (69.41, 1.57, 71.37),
    },
    "workload_read_heavy": {
        "without": (144.61, 2.58, 53.70),
        "transaction rate control": (69.02, 1.56, 70.36),
        "activity reordering": (194.22, 2.87, 77.49),
        "all": (83.70, 1.10, 85.02),
    },
    "workload_rangeread_heavy": {
        "without": (95.78, 10.36, 45.57),
        "transaction rate control": (56.28, 1.01, 57.14),
        "activity reordering": (213.47, 1.85, 78.24),
        "all": (83.92, 1.02, 85.33),
    },
}


# -- Use-case bundle factories --------------------------------------------------------

def make_usecase(
    usecase: str, total_transactions: int | None = None, seed: int = 7
) -> MakeBundle:
    """Bundle factory for one of the paper's use cases."""
    total = total_transactions if total_transactions is not None else SCALE_TXS

    def make():
        spec = UseCaseSpec(total_transactions=total, seed=seed)
        if usecase == "scm":
            config, _, requests = scm_workload(spec)
            return config, scm_family(), requests
        if usecase == "drm":
            config, _, requests = drm_workload(spec)
            return config, drm_family(), requests
        if usecase == "ehr":
            config, _, requests = ehr_workload(spec)
            return config, ehr_family(), requests
        if usecase == "voting":
            config, _, requests = voting_workload(
                spec,
                query_count=scaled(1000, total),
                vote_count=scaled(5000, total),
            )
            return config, voting_family(), requests
        if usecase == "loan":
            events = generate_loan_event_log(
                num_applications=scaled(2000, total), seed=seed
            )
            config, _, requests = loan_workload(
                UseCaseSpec(seed=seed), events=events, send_rate=10.0
            )
            return config, loan_family(), requests
        if usecase == "synthetic":
            spec_syn = synthetic_spec("default", seed=seed)
            spec_syn.total_transactions = total
            config, _, requests = synthetic_workload(spec_syn)
            return config, genchain_family(num_keys=spec_syn.num_keys), requests
        raise KeyError(f"unknown use case {usecase!r}")

    return make


def make_scenario(
    base: str,
    scenario: str,
    total_transactions: int | None = None,
    seed: int = 7,
) -> MakeBundle:
    """Bundle factory for a synthetic experiment run under a named scenario.

    ``base`` is any :func:`synthetic_spec` experiment name; ``scenario``
    is a :mod:`repro.scenario.library` name.  The bundle carries the
    resolved :class:`~repro.scenario.spec.ScenarioSpec` as its fourth
    element, which both executor waves thread into ``run_workload``.
    """
    from repro.scenario.library import get_scenario

    inner = make_synthetic(base, seed=seed, total_transactions=total_transactions)

    def make():
        config, family, requests = inner()
        return config, family, requests, get_scenario(scenario)

    return make


def make_forensics(
    base: str,
    scenario: str,
    mitigation: str = "none",
    retry_attempts: int = 1,
    seed: int = 7,
    total_transactions: int | None = None,
) -> MakeBundle:
    """Bundle factory for the ``failure_forensics`` mitigation sweep.

    A synthetic ``base`` experiment run under a named ``scenario`` with a
    mitigation strategy and/or a client retry policy applied on top.
    ``mitigation`` is one of :data:`repro.fabric.config.MITIGATIONS`;
    ``retry_attempts`` > 1 enables a
    :class:`~repro.fabric.retry.RetryPolicy` with that many total
    attempts.  ``mitigation="none"``/``retry_attempts=1`` reproduces the
    plain scenario run bit for bit (the sweep's baseline cell).
    """
    from repro.fabric.retry import RetryPolicy
    from repro.scenario.library import get_scenario

    inner = make_synthetic(base, seed=seed, total_transactions=total_transactions)

    def make():
        config, family, requests = inner()
        config.mitigation = mitigation
        if retry_attempts > 1:
            config.retry = RetryPolicy(max_attempts=retry_attempts)
        return config, family, requests, get_scenario(scenario)

    return make


def make_control(
    base: str,
    scenario: str,
    policy: str = "off",
    retry_attempts: int = 2,
    seed: int = 7,
    total_transactions: int | None = None,
) -> MakeBundle:
    """Bundle factory for the ``slo_guardian`` controller-on/off sweep.

    A synthetic ``base`` experiment run under a named ``scenario`` with a
    client retry policy, with or without the live SLO-guardian controller
    (:mod:`repro.control`).  ``policy`` is ``"off"`` — no controller, the
    comparison baseline — or a registered control policy name
    (:data:`repro.control.spec.POLICIES`).  The ``off`` cells are
    bit-identical to the same run without the control package.
    """
    from repro.control.spec import ControlSpec
    from repro.fabric.retry import RetryPolicy
    from repro.scenario.library import get_scenario

    inner = make_synthetic(base, seed=seed, total_transactions=total_transactions)

    def make():
        config, family, requests = inner()
        if retry_attempts > 1:
            config.retry = RetryPolicy(max_attempts=retry_attempts)
        if policy != "off":
            config.control = ControlSpec(policy=policy)
        return config, family, requests, get_scenario(scenario)

    return make


def make_loan(
    send_rate: float, seed: int = 7, num_applications: int | None = None
) -> MakeBundle:
    """LAP bundle at a specific send rate (the paper runs 10 and 300 TPS)."""

    def make():
        applications = (
            num_applications if num_applications is not None else scaled(2000)
        )
        events = generate_loan_event_log(num_applications=applications, seed=seed)
        config, _, requests = loan_workload(
            UseCaseSpec(seed=seed), events=events, send_rate=send_rate
        )
        return config, loan_family(), requests

    return make


def usecase_plans(usecase: str) -> list[tuple[str, tuple[K, ...]]]:
    """The per-figure optimization plans for a use case."""
    plans: dict[str, list[tuple[str, tuple[K, ...]]]] = {
        "scm": [
            ("transaction rate control", (K.TRANSACTION_RATE_CONTROL,)),
            ("activity reordering", (K.ACTIVITY_REORDERING,)),
            ("process model pruning", (K.PROCESS_MODEL_PRUNING,)),
            (
                "all",
                (
                    K.TRANSACTION_RATE_CONTROL,
                    K.ACTIVITY_REORDERING,
                    K.PROCESS_MODEL_PRUNING,
                ),
            ),
        ],
        "drm": [
            ("delta writes", (K.DELTA_WRITES,)),
            ("activity reordering", (K.ACTIVITY_REORDERING,)),
            ("smart contract partitioning", (K.SMART_CONTRACT_PARTITIONING,)),
            (
                "all",
                (K.ACTIVITY_REORDERING, K.DELTA_WRITES),
            ),
        ],
        "ehr": [
            ("transaction rate control", (K.TRANSACTION_RATE_CONTROL,)),
            ("activity reordering", (K.ACTIVITY_REORDERING,)),
            ("process model pruning", (K.PROCESS_MODEL_PRUNING,)),
            (
                "all",
                (
                    K.TRANSACTION_RATE_CONTROL,
                    K.ACTIVITY_REORDERING,
                    K.PROCESS_MODEL_PRUNING,
                ),
            ),
        ],
        "voting": [
            ("transaction rate control", (K.TRANSACTION_RATE_CONTROL,)),
            ("data model alteration", (K.DATA_MODEL_ALTERATION,)),
            ("all", (K.TRANSACTION_RATE_CONTROL, K.DATA_MODEL_ALTERATION)),
        ],
        "loan": [
            ("data model alteration", (K.DATA_MODEL_ALTERATION,)),
        ],
        "synthetic": [
            ("activity reordering", (K.ACTIVITY_REORDERING,)),
            ("transaction rate control", (K.TRANSACTION_RATE_CONTROL,)),
        ],
    }
    if usecase not in plans:
        raise KeyError(f"unknown use case {usecase!r}")
    return plans[usecase]
