"""Declarative run table: every figure/use-case experiment as an ExperimentSpec.

The bench scripts under ``benchmarks/``, the suite runner (``python -m
repro suite``) and ``scripts/generate_experiments_md.py`` all pull their
experiment definitions from this registry, so the set of runs behind the
paper's tables and figures exists in exactly one place.

An :class:`ExperimentSpec` is fully declarative — plain strings, numbers
and tuples — which makes it hashable, picklable (process-pool workers
receive specs, not closures) and JSON-serializable (the result cache keys
on the spec payload).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.bench import experiments as defs
from repro.bench.harness import MakeBundle
from repro.core.recommendations import OptimizationKind as K

#: (label, (OptimizationKind values, ...)) — kinds stored by value so the
#: spec stays declarative; resolve with :meth:`ExperimentSpec.resolved_plans`.
PlanTable = tuple[tuple[str, tuple[str, ...]], ...]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of the paper as a declarative, picklable record."""

    #: Stable identifier, ``<group>/<variant>`` (e.g. ``fig09_block_size/block_count_50``).
    exp_id: str
    group: str
    variant: str
    #: Human title matching the historical bench output (``Figure 9 / ...``).
    title: str
    #: Bundle factory kind: ``synthetic``, ``usecase`` or ``loan``.
    maker: str
    maker_args: tuple = ()
    scheduler: str = "fifo"
    seed: int = 7
    #: ``None`` means the bench budget (``REPRO_BENCH_TXS``) at run time.
    total_transactions: int | None = None
    plans: PlanTable = ()
    #: ((row label, (tput, lat, succ%)), ...) — the paper's reported values.
    paper: tuple[tuple[str, tuple[float, float, float]], ...] = ()

    # -- derived views -----------------------------------------------------------

    def make_bundle(self) -> MakeBundle:
        """Materialize the bundle factory this spec describes."""
        if self.maker == "sharded":
            raise ValueError(
                f"{self.exp_id} is a sharded large-scale experiment: it has "
                "no single workload bundle; the executor routes it through "
                "repro.shard.run_registry_spec"
            )
        if self.maker == "synthetic":
            (experiment,) = self.maker_args
            return defs.make_synthetic(
                experiment,
                seed=self.seed,
                scheduler=self.scheduler,
                total_transactions=self.total_transactions,
            )
        if self.maker == "tuned":
            base, overrides = self.maker_args
            return defs.make_tuned(
                base,
                tuple((name, value) for name, value in overrides),
                seed=self.seed,
                total_transactions=self.total_transactions,
            )
        if self.maker == "usecase":
            (usecase,) = self.maker_args
            return defs.make_usecase(
                usecase, total_transactions=self.total_transactions, seed=self.seed
            )
        if self.maker == "scenario":
            base, scenario = self.maker_args
            return defs.make_scenario(
                base,
                scenario,
                seed=self.seed,
                total_transactions=self.total_transactions,
            )
        if self.maker == "forensics":
            base, scenario, mitigation, retry_attempts = self.maker_args
            return defs.make_forensics(
                base,
                scenario,
                mitigation=mitigation,
                retry_attempts=retry_attempts,
                seed=self.seed,
                total_transactions=self.total_transactions,
            )
        if self.maker == "control":
            base, scenario, policy, retry_attempts = self.maker_args
            return defs.make_control(
                base,
                scenario,
                policy=policy,
                retry_attempts=retry_attempts,
                seed=self.seed,
                total_transactions=self.total_transactions,
            )
        if self.maker == "loan":
            (send_rate,) = self.maker_args
            applications = (
                None
                if self.total_transactions is None
                else defs.scaled(2000, self.total_transactions)
            )
            return defs.make_loan(
                float(send_rate), seed=self.seed, num_applications=applications
            )
        raise KeyError(f"unknown bundle maker {self.maker!r}")

    def resolved_plans(self) -> list[tuple[str, tuple[K, ...]]]:
        """Plans with the optimization kinds resolved to enum members."""
        return [
            (label, tuple(K(value) for value in values))
            for label, values in self.plans
        ]

    def paper_dict(self) -> dict[str, tuple[float, float, float]]:
        return {label: values for label, values in self.paper}

    def run_count(self) -> int:
        """Simulation runs this experiment performs (baseline + plans)."""
        return 1 + len(self.plans)

    def with_overrides(
        self, seed: int | None = None, total_transactions: int | None = None
    ) -> "ExperimentSpec":
        """A copy with the seed and/or transaction budget replaced."""
        spec = self
        if seed is not None:
            spec = replace(spec, seed=seed)
        if total_transactions is not None:
            spec = replace(spec, total_transactions=total_transactions)
        return spec

    def payload(self) -> dict:
        """JSON-able identity of this spec, used for cache keying.

        The *resolved* transaction budget is part of the identity so runs
        at different ``REPRO_BENCH_TXS`` never collide.
        """
        return {
            "exp_id": self.exp_id,
            "maker": self.maker,
            "maker_args": list(self.maker_args),
            "scheduler": self.scheduler,
            "seed": self.seed,
            "total_transactions": (
                self.total_transactions
                if self.total_transactions is not None
                else defs.SCALE_TXS
            ),
            "plans": [[label, list(values)] for label, values in self.plans],
        }


# -- registry construction ---------------------------------------------------------


def _plan(label: str, kinds: tuple[K, ...]) -> tuple[str, tuple[str, ...]]:
    return (label, tuple(kind.value for kind in kinds))


def _paper_rows(table: dict) -> tuple:
    return tuple((label, tuple(values)) for label, values in table.items())


def _synthetic_group(
    group: str,
    figure: str,
    table: dict,
    plans_for: dict | list,
    scheduler: str = "fifo",
) -> tuple[ExperimentSpec, ...]:
    specs = []
    for variant, paper in table.items():
        plans = plans_for[variant] if isinstance(plans_for, dict) else plans_for
        specs.append(
            ExperimentSpec(
                exp_id=f"{group}/{variant}",
                group=group,
                variant=variant,
                title=f"{figure} / {variant}",
                maker="synthetic",
                maker_args=(variant,),
                scheduler=scheduler,
                plans=tuple(plans),
                paper=_paper_rows(paper),
            )
        )
    return tuple(specs)


def _combined_plans(variant: str) -> list:
    """Figure 12 applies exactly the paper's Table 3 recommendations."""
    kinds = tuple(
        sorted(
            defs.TABLE3_EXPECTED.get(variant, {K.TRANSACTION_RATE_CONTROL}),
            key=lambda kind: kind.value,
        )
    )
    return [_plan("all", kinds)]


def _usecase_spec(
    group: str, figure: str, usecase: str, paper: dict
) -> tuple[ExperimentSpec, ...]:
    plans = tuple(
        _plan(label, kinds) for label, kinds in defs.usecase_plans(usecase)
    )
    return (
        ExperimentSpec(
            exp_id=f"{group}/{usecase}",
            group=group,
            variant=usecase,
            title=figure,
            maker="usecase",
            maker_args=(usecase,),
            plans=plans,
            paper=_paper_rows(paper),
        ),
    )


def _scenario_group() -> tuple[ExperimentSpec, ...]:
    """Fault-injection scenarios against the default synthetic workload.

    ``(scenario name, optimization plans)``: every scenario runs its
    baseline *and* its optimized re-runs under the same interventions, so
    the rows measure how much the recommendations recover under faults.
    """
    rate_control = _plan("transaction rate control", (K.TRANSACTION_RATE_CONTROL,))
    block_size = _plan("block size adaptation", (K.BLOCK_SIZE_ADAPTATION,))
    reordering = _plan("activity reordering", (K.ACTIVITY_REORDERING,))
    table: tuple[tuple[str, tuple, str], ...] = (
        ("crash_burst", (rate_control,), "default"),
        ("crash_recover", (), "default"),
        ("flaky_endorser", (rate_control,), "default"),
        ("degraded_orderer", (block_size,), "default"),
        ("conflict_storm", (reordering,), "workload_update_heavy"),
        ("chaos", (rate_control,), "default"),
        # The forensics showcase: every abort cause of docs/FAILURES.md
        # (MVCC, phantom, crashed peer, endorsement timeout) in one run.
        ("partial_outage", (rate_control,), "default"),
    )
    return tuple(
        ExperimentSpec(
            exp_id=f"scenario_faults/{scenario}",
            group="scenario_faults",
            variant=scenario,
            title=f"Scenario / {scenario} on {base}",
            maker="scenario",
            maker_args=(base, scenario),
            plans=plans,
        )
        for scenario, plans, base in table
    )


def _fuzzed_group() -> tuple[ExperimentSpec, ...]:
    """Fuzzer-promoted scenarios (``repro fuzz``, see docs/SCENARIOS.md).

    The most severe oracle-clean compositions a seeded fuzz campaign
    found, promoted into :mod:`repro.scenario.library` with their run
    digests pinned in ``tests/golden/fuzzed__library_digests.json``.
    They stress the workload-realism primitives the hand-written
    scenarios don't reach: rate curves, hot-key drift and region lag.
    """
    rate_control = _plan("transaction rate control", (K.TRANSACTION_RATE_CONTROL,))
    table: tuple[tuple[str, tuple], ...] = (
        ("flash_crowd_outage", (rate_control,)),
        ("org_blackout_storm", ()),
        ("rolling_contention", (rate_control,)),
    )
    return tuple(
        ExperimentSpec(
            exp_id=f"fuzzed/{scenario}",
            group="fuzzed",
            variant=scenario,
            title=f"Fuzzed / {scenario} on default",
            maker="scenario",
            maker_args=("default", scenario),
            plans=plans,
        )
        for scenario, plans in table
    )


def _forensics_group() -> tuple[ExperimentSpec, ...]:
    """The mitigation × scenario sweep behind ``failure_forensics``.

    Each cell is a single run (no optimization plans): one fault scenario
    crossed with a mitigation strategy and/or a client retry policy.  The
    ``none`` cells are bit-identical to the plain scenario runs, so the
    sweep measures exactly what each mitigation buys — the forensics
    reports cached with every outcome carry the per-cause abort counts
    the comparison is made on (see docs/FAILURES.md).
    """
    sweeps: tuple[tuple[str, str], ...] = (
        ("conflict_storm", "workload_update_heavy"),
        ("partial_outage", "default"),
    )
    cells: list[tuple[str, str, str, str, int]] = []
    for scenario, base in sweeps:
        for mitigation in ("none", "early_abort", "reorder"):
            cells.append((f"{scenario}__{mitigation}", base, scenario, mitigation, 1))
        cells.append((f"{scenario}__retry", base, scenario, "none", 3))
        cells.append(
            (f"{scenario}__early_abort_retry", base, scenario, "early_abort", 3)
        )
    return tuple(
        ExperimentSpec(
            exp_id=f"failure_forensics/{variant}",
            group="failure_forensics",
            variant=variant,
            title=f"Forensics / {scenario} + {mitigation}"
            + (f" + retry({retry})" if retry > 1 else "")
            + f" on {base}",
            maker="forensics",
            maker_args=(base, scenario, mitigation, retry),
        )
        for variant, base, scenario, mitigation, retry in cells
    )


def _control_group() -> tuple[ExperimentSpec, ...]:
    """The controller-on/off sweep behind ``slo_guardian``.

    Every scenario in the library — the promoted fuzzed worst cases
    included — crossed with the SLO-guardian controller off and on, under
    a 2-attempt client retry policy (the controller's retry-tightening
    actuator needs headroom to act).  The ``off`` cells are bit-identical
    to the same runs without the control package; the headline comparison
    (per-scenario abort rate, latency, throughput with the guardian
    active) is pinned in ``tests/golden/slo_guardian__comparison.json``.
    """
    from repro.scenario.library import scenario_names

    cells = [
        (f"{scenario}__{policy}", scenario, policy)
        for scenario in scenario_names()
        for policy in ("off", "guardian")
    ]
    return tuple(
        ExperimentSpec(
            exp_id=f"slo_guardian/{variant}",
            group="slo_guardian",
            variant=variant,
            title=f"SLO guardian / {scenario} ({policy})",
            maker="control",
            maker_args=("default", scenario, policy, 2),
        )
        for variant, scenario, policy in cells
    )


def _build_registry() -> dict[str, tuple[ExperimentSpec, ...]]:
    restructuring = [_plan("endorser restructuring", (K.ENDORSER_RESTRUCTURING,))]
    rate_control = [_plan("transaction rate control", (K.TRANSACTION_RATE_CONTROL,))]
    registry: dict[str, tuple[ExperimentSpec, ...]] = {
        "table3": tuple(
            ExperimentSpec(
                exp_id=f"table3/{variant}",
                group="table3",
                variant=variant,
                title=f"Table 3 / {variant}",
                maker="synthetic",
                maker_args=(variant,),
            )
            for variant in defs.TABLE3_EXPECTED
        ),
        "fig07_endorser": _synthetic_group(
            "fig07_endorser", "Figure 7", defs.FIG7_ENDORSER, restructuring
        ),
        "fig08_client_boost": _synthetic_group(
            "fig08_client_boost",
            "Figure 8",
            defs.FIG8_CLIENT_BOOST,
            [_plan("client resource boost", (K.CLIENT_RESOURCE_BOOST,))],
        ),
        "fig09_block_size": _synthetic_group(
            "fig09_block_size",
            "Figure 9",
            defs.FIG9_BLOCK_SIZE,
            [_plan("block size adaptation", (K.BLOCK_SIZE_ADAPTATION,))],
        ),
        "fig10_rate_control": _synthetic_group(
            "fig10_rate_control", "Figure 10", defs.FIG10_RATE_CONTROL, rate_control
        ),
        "fig11_reordering": _synthetic_group(
            "fig11_reordering",
            "Figure 11",
            defs.FIG11_REORDERING,
            [_plan("activity reordering", (K.ACTIVITY_REORDERING,))],
        ),
        "fig12_combined": _synthetic_group(
            "fig12_combined",
            "Figure 12",
            defs.FIG12_COMBINED,
            {variant: _combined_plans(variant) for variant in defs.FIG12_COMBINED},
        ),
        "fig13_scm": _usecase_spec("fig13_scm", "Figure 13 / SCM", "scm", defs.FIG13_SCM),
        "fig14_drm": _usecase_spec("fig14_drm", "Figure 14 / DRM", "drm", defs.FIG14_DRM),
        "fig15_ehr": _usecase_spec("fig15_ehr", "Figure 15 / EHR", "ehr", defs.FIG15_EHR),
        "fig16_voting": _usecase_spec(
            "fig16_voting", "Figure 16 / DV", "voting", defs.FIG16_DV
        ),
        "fig17_loan": (
            ExperimentSpec(
                exp_id="fig17_loan/send_rate_10",
                group="fig17_loan",
                variant="send_rate_10",
                title="Figure 17 / LAP send_rate_10",
                maker="loan",
                maker_args=(10.0,),
                plans=(_plan("data model alteration", (K.DATA_MODEL_ALTERATION,)),),
                paper=_paper_rows(defs.FIG17_LAP["send_rate_10"]),
            ),
            ExperimentSpec(
                exp_id="fig17_loan/send_rate_300",
                group="fig17_loan",
                variant="send_rate_300",
                title="Figure 17 / LAP send_rate_300",
                maker="loan",
                maker_args=(300.0,),
                plans=(
                    _plan("data model alteration", (K.DATA_MODEL_ALTERATION,)),
                    _plan("transaction rate control", (K.TRANSACTION_RATE_CONTROL,)),
                    _plan(
                        "all",
                        (K.DATA_MODEL_ALTERATION, K.TRANSACTION_RATE_CONTROL),
                    ),
                ),
                paper=_paper_rows(defs.FIG17_LAP["send_rate_300"]),
            ),
        ),
        "fig18_fabricsharp": _synthetic_group(
            "fig18_fabricsharp",
            "Figure 18",
            defs.FIG18_FABRICSHARP,
            {
                "endorsement_policy_p1": restructuring,
                "endorsement_policy_p2_skew": restructuring,
                "workload_insert_heavy": rate_control,
            },
            scheduler="fabricsharp",
        ),
        "fig19_fabricpp": _synthetic_group(
            "fig19_fabricpp",
            "Figure 19",
            defs.FIG19_FABRICPP,
            [
                _plan("transaction rate control", (K.TRANSACTION_RATE_CONTROL,)),
                _plan("activity reordering", (K.ACTIVITY_REORDERING,)),
                _plan(
                    "all", (K.TRANSACTION_RATE_CONTROL, K.ACTIVITY_REORDERING)
                ),
            ],
            scheduler="fabricpp",
        ),
        # Beyond the paper: fault-injection scenarios (repro.scenario).
        # No paper rows exist — the runs answer "do the recommendations
        # still help under faults and dynamic network conditions?".
        "scenario_faults": _scenario_group(),
        # Beyond the paper: fuzzer-promoted worst-case compositions
        # (repro.scenario.fuzz) — severe scenarios a seeded campaign
        # discovered, exercising rate curves, hot-key drift, region lag.
        "fuzzed": _fuzzed_group(),
        # Beyond the paper: the mitigation × scenario forensics sweep
        # (repro.analysis) — "which mitigation recovers which abort cause?".
        "failure_forensics": _forensics_group(),
        # Beyond the paper: the SLO-guardian controller sweep
        # (repro.control) — "what does closing the loop at run time buy?".
        "slo_guardian": _control_group(),
        # Beyond the paper: streamed multi-channel runs at scale
        # (repro.shard) — on-demand, so a plain `repro suite` never
        # launches the 1M-transaction run by accident.
        "large_scale": _large_scale_group(),
    }
    return registry


def _large_scale_group() -> tuple[ExperimentSpec, ...]:
    """Sharded streaming runs (``maker="sharded"``, args ``(base, channels)``).

    These run through :func:`repro.shard.run_registry_spec`: N channels,
    each a streaming-mode network with bounded accumulators, stitched
    into one digestable summary.  ``multichannel_5k`` backs the tier-1
    digest golden; ``multichannel_50k`` is the CI smoke scale;
    ``multichannel_1m`` is the million-transaction demonstration
    (reach it explicitly with ``repro suite --only large_scale/multichannel_1m``
    or ``repro shard --txs 1000000``).
    """
    table: tuple[tuple[str, str, int, int], ...] = (
        ("multichannel_5k", "default", 3, 5_000),
        ("multichannel_50k", "default", 4, 50_000),
        ("multichannel_1m", "default", 8, 1_000_000),
    )
    return tuple(
        ExperimentSpec(
            exp_id=f"large_scale/{variant}",
            group="large_scale",
            variant=variant,
            title=f"Large scale / {channels}-channel {total:,}-tx streamed run",
            maker="sharded",
            maker_args=(base, channels),
            total_transactions=total,
        )
        for variant, base, channels, total in table
    )


REGISTRY: dict[str, tuple[ExperimentSpec, ...]] = _build_registry()

#: Groups that run only when named explicitly (``--only``): a default
#: ``repro suite`` must never launch a million-transaction run.
ON_DEMAND_GROUPS = frozenset({"large_scale"})


def groups() -> list[str]:
    """All experiment group names, in figure order."""
    return list(REGISTRY)


def experiments(group: str) -> tuple[ExperimentSpec, ...]:
    """The specs of one group (e.g. ``fig09_block_size``)."""
    try:
        return REGISTRY[group]
    except KeyError:
        raise KeyError(
            f"unknown experiment group {group!r}; known: {', '.join(REGISTRY)}"
        ) from None


def all_specs(include_on_demand: bool = False) -> list[ExperimentSpec]:
    """Every registered experiment, in figure order.

    On-demand groups (:data:`ON_DEMAND_GROUPS`) are excluded unless
    ``include_on_demand`` — the full suite stays affordable by default
    while ``select``/``get`` still reach them by name.
    """
    return [
        spec
        for group, specs in REGISTRY.items()
        if include_on_demand or group not in ON_DEMAND_GROUPS
        for spec in specs
    ]


def get(exp_id: str) -> ExperimentSpec:
    """Look one experiment up by its ``<group>/<variant>`` id."""
    for spec in all_specs(include_on_demand=True):
        if spec.exp_id == exp_id:
            return spec
    raise KeyError(f"unknown experiment {exp_id!r}")


class UnknownSelectionError(KeyError):
    """``--only`` tokens that matched nothing — all of them, not just the first.

    A thousand-cell sweep launched with a typoed id must fail loudly
    *before* any simulation runs, and must name every bad token so the
    user fixes the whole selection in one round trip.
    """

    def __init__(self, unmatched: list[str], hint: str) -> None:
        self.unmatched = list(unmatched)
        rendered = ", ".join(repr(token) for token in self.unmatched)
        super().__init__(
            f"--only matched nothing for {rendered}; {hint}"
        )


def select(tokens: Iterable[str]) -> list[ExperimentSpec]:
    """Resolve ``--only`` tokens: group names, prefixes, or full exp ids.

    ``fig09`` matches the ``fig09_block_size`` group; ``fig09_block_size/
    block_count_50`` matches a single experiment.  Order follows the
    registry, deduplicated.  Tokens that match nothing — including a
    selection that is entirely blank — raise
    :class:`UnknownSelectionError` listing every unmatched token, so a
    typo can never silently select zero experiments.
    """
    matched: set[str] = set()
    unmatched: list[str] = []
    candidates = all_specs(include_on_demand=True)
    cleaned = [token.strip() for token in tokens if token.strip()]
    if not cleaned:
        raise UnknownSelectionError(
            [token for token in tokens], "the selection is empty"
        )
    for token in cleaned:
        matches = [
            spec
            for spec in candidates
            if spec.exp_id == token
            or spec.group == token
            or spec.group.startswith(token)
        ]
        if not matches:
            unmatched.append(token)
        matched.update(spec.exp_id for spec in matches)
    if unmatched:
        raise UnknownSelectionError(
            unmatched, f"known groups: {', '.join(REGISTRY)}"
        )
    return [spec for spec in candidates if spec.exp_id in matched]
