"""Content-addressed, on-disk cache of experiment results.

One JSON file per experiment under ``.repro_cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``).  The file
name is a SHA-256 over

* the experiment's declarative identity (:meth:`ExperimentSpec.payload`:
  bundle factory + args, scheduler, seed, resolved transaction budget,
  optimization plans), and
* a *code version* — a hash over every ``repro`` source file — so any
  change to the simulator, workloads or recommender invalidates every
  cached result automatically.

A warm suite re-run therefore performs zero simulation runs; nothing ever
needs manual invalidation beyond deleting the directory (or ``--no-cache``).
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bench.harness import ExperimentOutcome, RunRow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.bench.registry import ExperimentSpec

#: Bump to invalidate every existing cache entry on format changes.
#: Format 2 added the per-row failure-forensics reports; format 3 the
#: per-row SLO-guardian control timelines.
CACHE_FORMAT = 3

DEFAULT_CACHE_DIR = ".repro_cache"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every ``repro`` source file (path + contents)."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def outcome_to_dict(outcome: ExperimentOutcome) -> dict:
    """JSON-able form of an outcome (the analysis report is not kept).

    The per-row forensics reports ride along when present (the ``rows``
    shape itself is unchanged, so golden files keyed on rows stay stable).
    """
    data = {
        "name": outcome.name,
        "rows": [
            {
                "label": row.label,
                "throughput": row.throughput,
                "latency": row.latency,
                "success_pct": row.success_pct,
                "applied": list(row.applied),
                "forced": row.forced,
            }
            for row in outcome.rows
        ],
        "recommendations": list(outcome.recommendations),
        "paper": {label: list(values) for label, values in outcome.paper.items()},
    }
    if outcome.forensics is not None:
        data["forensics"] = list(outcome.forensics)
    if outcome.control is not None:
        data["control"] = list(outcome.control)
    return data


def outcome_from_dict(data: dict) -> ExperimentOutcome:
    return ExperimentOutcome(
        name=data["name"],
        rows=[
            RunRow(
                label=row["label"],
                throughput=row["throughput"],
                latency=row["latency"],
                success_pct=row["success_pct"],
                applied=tuple(row["applied"]),
                forced=row["forced"],
            )
            for row in data["rows"]
        ],
        recommendations=list(data["recommendations"]),
        paper={label: tuple(values) for label, values in data["paper"].items()},
        forensics=data.get("forensics"),
        control=data.get("control"),
    )


class ResultCache:
    """Maps an :class:`ExperimentSpec` to a cached :class:`ExperimentOutcome`."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(
            root
            if root is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )

    def key(self, spec: "ExperimentSpec") -> str:
        identity = {
            "format": CACHE_FORMAT,
            "code": code_version(),
            "spec": spec.payload(),
        }
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def path(self, spec: "ExperimentSpec") -> Path:
        return self.root / f"{self.key(spec)}.json"

    def get(self, spec: "ExperimentSpec") -> ExperimentOutcome | None:
        """The cached outcome, or ``None`` on miss or a corrupt entry.

        A truncated, garbled or non-UTF-8 entry (interrupted write, disk
        trouble, manual editing) is a cache *miss*, never a traceback:
        the entry is deleted so the re-execution writes it fresh instead
        of tripping over the same bytes on every warm run.
        """
        path = self.path(spec)
        try:
            data = json.loads(path.read_bytes())
            return outcome_from_dict(data["outcome"])
        except FileNotFoundError:
            return None
        except (KeyError, TypeError, ValueError, AttributeError, OSError):
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        """Best-effort removal of a corrupt entry (failures stay a miss)."""
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - e.g. permission trouble
            pass

    def put(self, spec: "ExperimentSpec", outcome: ExperimentOutcome) -> Path:
        path = self.path(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "exp_id": spec.exp_id,
            "spec": spec.payload(),
            "outcome": outcome_to_dict(outcome),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record, indent=1, sort_keys=True))
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
