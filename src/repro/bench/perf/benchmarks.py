"""The microbenchmark registry: what ``repro perf`` can measure.

Each :class:`Microbenchmark` is a *factory of trials*: calling
:meth:`Microbenchmark.make` performs all un-measured setup (workload
generation, log construction) and returns a zero-argument closure whose
execution is the measured region.  The closure returns a small,
JSON-able payload describing *what the measured code computed* — the
runner hashes it into the benchmark's determinism digest, so a behaviour
change in the hot path is caught even when timings drift.

The registry covers the layers every experiment run exercises:

========================  =====================================================
``kernel_event_churn``    schedule/cancel/fire cycles through the event heap
``pipeline_round_trip``   full endorse → order → validate lifecycle of a
                          synthetic workload
``metrics_accumulation``  the single-pass Section 4.3 metrics derivation
``eventlog_derivation``   CaseID derivation + event-log construction
``small_experiment``      an entire registry experiment (baseline + analysis +
                          optimized re-runs) at a small transaction budget
``forensics_pass``        the failure-forensics post-processing pass over a
                          faulted run with retries (repro.analysis)
``streaming_overhead``    the same pipeline round trip in streaming mode —
                          request generator, RunStream fan-out and bounded
                          accumulators instead of a materialized ledger
``controller_overhead``   the same round trip with a noop SLO-guardian
                          ticking on the kernel's control lane — compare
                          against ``pipeline_round_trip`` for the cost of
                          the monitor + tick machinery (repro.control)
========================  =====================================================

Two ``*_batch`` entries mirror ``kernel_event_churn`` and
``pipeline_round_trip`` through the :mod:`repro.sim.batch` kernel tier —
identical workload, identical digest payload, different execution tier —
so ``repro perf --compare`` quantifies the batch tier's speedup and the
determinism digests double as one more cross-tier equivalence check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: The measured region: runs once per trial, returns the digest payload.
Trial = Callable[[], object]


@dataclass(frozen=True)
class Microbenchmark:
    """One registered microbenchmark."""

    name: str
    description: str
    #: Builds a fresh trial closure; everything inside ``make`` is setup
    #: and excluded from timing.
    make: Callable[[], Trial]


def _kernel_event_churn(tier: str = "reference") -> Trial:
    from repro.sim.batch import make_kernel

    count = 20_000

    def trial() -> object:
        kernel = make_kernel(tier)
        cancelled = 0
        events = []
        # A braided schedule: interleaved times, two priority lanes, and a
        # cancellation pattern — the shapes the orderer timeout logic and
        # the scenario intervention lane actually produce.
        for index in range(count):
            time = float((index * 7919) % 1000) + index / count
            event = kernel.schedule(time, _noop)
            if index % 11 == 0:
                events.append(event)
        for event in events:
            event.cancel()
            cancelled += 1
        kernel.run()
        return {"processed": kernel.events_processed, "cancelled": cancelled}

    return trial


def _noop() -> None:
    return None


def _pipeline_round_trip(tier: str = "reference") -> Trial:
    from repro.bench.experiments import make_synthetic

    make = make_synthetic("default", seed=7, total_transactions=1500)

    def trial() -> object:
        from repro.fabric.network import run_workload

        config, family, requests = make()
        config.kernel_tier = tier
        deployment = family.deploy()
        _, result = run_workload(config, deployment.contracts, requests)
        return result.summary_row()

    return trial


def _controller_overhead() -> Trial:
    from repro.bench.experiments import make_synthetic

    make = make_synthetic("default", seed=7, total_transactions=1500)

    def trial() -> object:
        from repro.control.spec import ControlSpec
        from repro.fabric.network import run_workload

        config, family, requests = make()
        config.control = ControlSpec(policy="noop")
        deployment = family.deploy()
        network, result = run_workload(config, deployment.contracts, requests)
        payload = result.summary_row()
        # A noop controller must not perturb the run: the summary row is
        # identical to pipeline_round_trip's, so the digests double as a
        # controller-off equivalence check; the tick count pins cadence.
        payload["control_ticks"] = network.controller.timeline.ticks
        return payload

    return trial


def _kernel_event_churn_batch() -> Trial:
    return _kernel_event_churn("batch")


def _pipeline_round_trip_batch() -> Trial:
    return _pipeline_round_trip("batch")


def _make_log():
    """A committed blockchain log shared by the analysis benchmarks."""
    from repro.bench.experiments import make_synthetic
    from repro.fabric.network import run_workload
    from repro.logs.extract import extract_blockchain_log

    config, family, requests = make_synthetic(
        "workload_update_heavy", seed=11, total_transactions=2000
    )()
    deployment = family.deploy()
    network, _ = run_workload(config, deployment.contracts, requests)
    return extract_blockchain_log(network)


def _metrics_accumulation() -> Trial:
    log = _make_log()

    def trial() -> object:
        from repro.core.metrics import compute_metrics

        metrics = compute_metrics(log)
        return {
            "total": metrics.total_transactions,
            "failures": metrics.total_failures,
            "keys": len(metrics.kfreq),
            "pairs": len(metrics.conflict_pairs),
            "hotkeys": list(metrics.hotkeys[:5]),
        }

    return trial


def _eventlog_derivation() -> Trial:
    log = _make_log()

    def trial() -> object:
        from repro.logs.eventlog import EventLog

        event_log = EventLog.from_blockchain_log(log)
        return {
            "attribute": event_log.derivation.attribute,
            "events": len(event_log),
            "variants": len(event_log.trace_variants()),
        }

    return trial


def _small_experiment() -> Trial:
    from repro.bench.registry import select

    (spec,) = select(["fig16_voting"])
    spec = spec.with_overrides(total_transactions=600)

    def trial() -> object:
        from repro.bench.executor import run_spec

        outcome = run_spec(spec)
        return {
            "rows": [
                (row.label, row.throughput, row.latency, row.success_pct)
                for row in outcome.rows
            ],
            "recommendations": list(outcome.recommendations),
        }

    return trial


def _forensics_pass() -> Trial:
    from repro.bench.experiments import make_forensics
    from repro.bench.harness import unpack_bundle
    from repro.fabric.network import run_workload

    # Setup (untimed): one faulted, retry-heavy run — the densest
    # forensics input the registry produces.
    config, family, requests, scenario = unpack_bundle(
        make_forensics(
            "default", "partial_outage", retry_attempts=3, total_transactions=2000
        )()
    )
    deployment = family.deploy()
    network, _ = run_workload(config, deployment.contracts, requests, scenario=scenario)

    def trial() -> object:
        from repro.analysis import forensics_report, report_digest

        report = forensics_report(network)
        return {
            "causes": dict(report.cause_counts),
            "buckets": len(report.buckets),
            "digest": report_digest(report),
        }

    return trial


def _streaming_overhead() -> Trial:
    """The streaming counterpart of ``pipeline_round_trip``.

    Same workload and seed, but the run goes through the O(blocks) path:
    requests pulled one at a time from the generator, blocks fanned out
    through a :class:`~repro.logs.stream.RunStream` into the bounded
    shard accumulators, no ledger materialization.  Compared against
    ``pipeline_round_trip`` this measures what the streaming machinery
    costs; the ``--compare`` ratchet keeps that overhead from creeping.
    """
    from repro.bench.experiments import synthetic_spec

    spec = synthetic_spec("default", seed=7)
    spec.total_transactions = 1500

    def trial() -> object:
        from repro.contracts.registry import genchain_family
        from repro.fabric.network import FabricNetwork
        from repro.logs.stream import RunStream
        from repro.shard.summary import RateSeriesAccumulator, RunStatsAccumulator
        from repro.workloads.synthetic import iter_synthetic_requests

        deployment = genchain_family(num_keys=spec.num_keys).deploy()
        stream = RunStream()
        run_stats = RunStatsAccumulator()
        rates = RateSeriesAccumulator(1.0)
        stream.add_transaction_consumer(run_stats).add_record_consumer(rates)
        network = FabricNetwork(
            spec.to_network_config(), deployment.contracts, stream=stream
        )
        stats = network.run_streamed(
            iter_synthetic_requests(spec, deployment.contracts[0].name)
        )
        return {
            "records": stream.records_streamed,
            "committed": stats.committed,
            "aborted": stats.aborted,
            "blocks": stats.blocks,
            "successes": run_stats.successes,
            "intervals": len(rates.totals),
        }

    return trial


_REGISTRY: tuple[Microbenchmark, ...] = (
    Microbenchmark(
        name="kernel_event_churn",
        description="schedule/cancel/fire 20k events through the kernel heap",
        make=_kernel_event_churn,
    ),
    Microbenchmark(
        name="pipeline_round_trip",
        description="endorse-order-validate a 1.5k-tx synthetic workload",
        make=_pipeline_round_trip,
    ),
    Microbenchmark(
        name="metrics_accumulation",
        description="Section 4.3 metrics over a 2k-tx update-heavy log",
        make=_metrics_accumulation,
    ),
    Microbenchmark(
        name="eventlog_derivation",
        description="CaseID derivation + event-log build from the same log",
        make=_eventlog_derivation,
    ),
    Microbenchmark(
        name="small_experiment",
        description="one full registry experiment (voting, 600 txs)",
        make=_small_experiment,
    ),
    Microbenchmark(
        name="forensics_pass",
        description="forensics post-processing of a 2k-tx faulted run with retries",
        make=_forensics_pass,
    ),
    Microbenchmark(
        name="streaming_overhead",
        description="the 1.5k-tx pipeline round trip through the streaming path",
        make=_streaming_overhead,
    ),
    Microbenchmark(
        name="controller_overhead",
        description="the 1.5k-tx round trip with a noop SLO-guardian ticking",
        make=_controller_overhead,
    ),
    Microbenchmark(
        name="kernel_event_churn_batch",
        description="the same 20k-event churn through the batch kernel tier",
        make=_kernel_event_churn_batch,
    ),
    Microbenchmark(
        name="pipeline_round_trip_batch",
        description="the same 1.5k-tx round trip under the batch kernel tier",
        make=_pipeline_round_trip_batch,
    ),
)


def all_benchmarks() -> tuple[Microbenchmark, ...]:
    """Every registered microbenchmark, in registry order."""
    return _REGISTRY


def benchmark_names() -> list[str]:
    """Registry-order names (the ``--only`` vocabulary)."""
    return [bench.name for bench in _REGISTRY]


def get_benchmark(name: str) -> Microbenchmark:
    """Look up one benchmark; raises ``KeyError`` with the valid names."""
    for bench in _REGISTRY:
        if bench.name == name:
            return bench
    raise KeyError(
        f"unknown benchmark {name!r}; expected one of {', '.join(benchmark_names())}"
    )
