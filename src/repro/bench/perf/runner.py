"""Stable-timing microbenchmark runner and the ``BENCH_perf.json`` schema.

Timing discipline: each benchmark gets ``warmup`` untimed executions
(JIT-free Python still benefits — allocator warmup, branch caches, lazy
imports) followed by ``trials`` timed executions.  The report records the
full trial list plus the **median** (robust location) and **MAD** (median
absolute deviation — robust spread), never the mean: a single scheduler
hiccup would otherwise poison the number a future PR ratchets against.

Determinism digest: every trial's return payload is serialized and
hashed; all trials of a benchmark must produce the *same* digest or the
runner raises — a microbenchmark whose measured code is nondeterministic
cannot be compared across commits.  Digests (not timings) are what the
perf test suite asserts on, so CI stays immune to machine noise.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from dataclasses import dataclass, field
from hashlib import sha256
from statistics import median
from typing import Callable, Sequence

from repro.bench.perf.benchmarks import Microbenchmark, all_benchmarks, get_benchmark

#: Bump on any incompatible change to the report layout.
SCHEMA_VERSION = 1

#: Optional progress sink (one line per benchmark), mirroring the suite runner.
Progress = Callable[[str], None]


class NondeterministicBenchmarkError(RuntimeError):
    """Raised when a benchmark's trials disagree on their result payload."""


def _digest(payload: object) -> str:
    """Stable hash of a trial's result payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return sha256(blob.encode()).hexdigest()


@dataclass
class BenchResult:
    """Timings and determinism digest of one microbenchmark."""

    name: str
    description: str
    #: Per-trial wall time in seconds, in execution order.
    trials: list[float]
    #: Hash of the measured code's (identical) per-trial result payload.
    digest: str
    warmup: int

    @property
    def median_s(self) -> float:
        """Median trial time in seconds."""
        return median(self.trials)

    @property
    def mad_s(self) -> float:
        """Median absolute deviation of the trials in seconds."""
        center = self.median_s
        return median(abs(trial - center) for trial in self.trials)


@dataclass
class PerfReport:
    """One ``repro perf`` invocation's results (the BENCH_perf.json payload)."""

    results: list[BenchResult] = field(default_factory=list)
    python: str = ""
    platform: str = ""

    def get(self, name: str) -> BenchResult:
        """The result for ``name``; raises ``KeyError`` when absent."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no benchmark {name!r} in this report")

    def names(self) -> list[str]:
        """Benchmark names in report order."""
        return [result.name for result in self.results]


def run_benchmarks(
    names: Sequence[str] | None = None,
    warmup: int = 1,
    trials: int = 5,
    progress: Progress | None = None,
) -> PerfReport:
    """Run the selected microbenchmarks and build a :class:`PerfReport`.

    ``names=None`` runs the whole registry in order.  Raises ``KeyError``
    for an unknown name and :class:`NondeterministicBenchmarkError` when a
    benchmark's trials disagree on their payload digest.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    selected: list[Microbenchmark] = (
        list(all_benchmarks())
        if names is None
        else [get_benchmark(name) for name in names]
    )
    note = progress or (lambda message: None)

    report = PerfReport(
        python=platform.python_version(),
        platform=platform.platform(),
    )
    for bench in selected:
        timings: list[float] = []
        digests: set[str] = set()
        # Setup runs once per benchmark; the trial closure is re-executed
        # for every round and must itself build any mutable state it needs
        # (every registered benchmark does), so rounds stay independent.
        trial = bench.make()
        for round_index in range(warmup + trials):
            # Collect leftover garbage, then keep the collector out of the
            # timed region (the ``timeit`` discipline): an incidental
            # gen-2 pass mid-trial charges another workload's garbage to
            # this benchmark and can dominate a short trial's MAD.
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                started = time.perf_counter()
                payload = trial()
                elapsed = time.perf_counter() - started
            finally:
                if gc_was_enabled:
                    gc.enable()
            if round_index >= warmup:
                timings.append(elapsed)
                digests.add(_digest(payload))
        if len(digests) != 1:
            raise NondeterministicBenchmarkError(
                f"benchmark {bench.name!r} produced {len(digests)} distinct "
                "result digests across trials; the measured code must be "
                "deterministic to be comparable across commits"
            )
        result = BenchResult(
            name=bench.name,
            description=bench.description,
            trials=timings,
            digest=digests.pop(),
            warmup=warmup,
        )
        report.results.append(result)
        note(
            f"{bench.name:<24} median {result.median_s * 1e3:8.2f} ms  "
            f"mad {result.mad_s * 1e3:6.2f} ms  ({len(timings)} trials)"
        )
    return report


# -- JSON round trip ---------------------------------------------------------------


def report_to_dict(report: PerfReport) -> dict:
    """JSON-able form of a report (schema-versioned)."""
    return {
        "schema": SCHEMA_VERSION,
        "python": report.python,
        "platform": report.platform,
        "results": [
            {
                "name": result.name,
                "description": result.description,
                "trials": list(result.trials),
                "median_s": result.median_s,
                "mad_s": result.mad_s,
                "digest": result.digest,
                "warmup": result.warmup,
            }
            for result in report.results
        ],
    }


def report_from_dict(data: dict) -> PerfReport:
    """Parse a report dict; raises ``ValueError`` on schema mismatch/shape."""
    if not isinstance(data, dict):
        raise ValueError("perf report must be a JSON object")
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported perf report schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    try:
        results = [
            BenchResult(
                name=entry["name"],
                description=entry.get("description", ""),
                trials=[float(value) for value in entry["trials"]],
                digest=entry["digest"],
                warmup=int(entry.get("warmup", 0)),
            )
            for entry in data["results"]
        ]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed perf report: {exc!r}") from exc
    for result in results:
        if not result.trials:
            raise ValueError(f"benchmark {result.name!r} has no trials")
    return PerfReport(
        results=results,
        python=data.get("python", ""),
        platform=data.get("platform", ""),
    )


def report_to_json(report: PerfReport) -> str:
    """Serialize ``report`` for ``--json`` (stable key order)."""
    return json.dumps(report_to_dict(report), indent=1, sort_keys=True)


def report_from_json(text: str) -> PerfReport:
    """Parse a ``--json`` report; raises ``ValueError`` on any bad input."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"perf report is not valid JSON: {exc}") from exc
    return report_from_dict(data)
