"""Baseline comparison: ratchet the perf numbers across commits.

``repro perf --compare old.json`` loads a previously recorded
:class:`~repro.bench.perf.runner.PerfReport`, re-measures, and classifies
each benchmark shared by both reports:

* **regression** — new median slower than the threshold allows *and* the
  gap clears the noise floor (3× the larger MAD, but never less than
  :data:`MIN_RELATIVE_NOISE` of the baseline median, so a zero-MAD
  baseline cannot make the ratchet flaky-strict), so a noisy trial
  cannot fail a build on its own;
* **improvement** — symmetric, faster beyond threshold and noise;
* **unchanged** — everything else.

Digest changes are reported separately: a benchmark whose measured code
now computes something different is not comparable, timing-wise.  The
CLI treats them as ratchet failures too — a behaviour change in the hot
path must be acknowledged by regenerating the baseline, never waved
through because the timings happened to line up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.perf.runner import PerfReport

#: Default slowdown tolerated before a benchmark counts as a regression
#: (median vs baseline median): generous because CI machines are shared.
DEFAULT_THRESHOLD = 0.25

#: How many MADs the median shift must clear to count as signal.
NOISE_MADS = 3.0

#: Minimum noise floor as a fraction of the baseline median.  A MAD of 0
#: (single trial, or timings identical to clock resolution) would
#: otherwise collapse the noise floor to zero and let any sub-threshold
#: shift count as signal — the flaky-strict failure mode this guards.
MIN_RELATIVE_NOISE = 0.02


@dataclass(frozen=True)
class Delta:
    """One benchmark's old-vs-new comparison."""

    name: str
    old_median_s: float
    new_median_s: float
    #: new/old — above 1.0 is slower.
    ratio: float
    #: "regression", "improvement", "unchanged" or "digest-changed".
    verdict: str

    @property
    def percent(self) -> float:
        """Signed percent change (positive = slower)."""
        return (self.ratio - 1.0) * 100.0


def compare_reports(
    old: PerfReport, new: PerfReport, threshold: float = DEFAULT_THRESHOLD
) -> list[Delta]:
    """Compare benchmarks present in both reports, in ``new``'s order."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold!r}")
    old_names = set(old.names())
    deltas: list[Delta] = []
    for result in new.results:
        if result.name not in old_names:
            continue
        baseline = old.get(result.name)
        ratio = (
            result.median_s / baseline.median_s if baseline.median_s > 0 else float("inf")
        )
        noise = max(
            NOISE_MADS * max(baseline.mad_s, result.mad_s),
            MIN_RELATIVE_NOISE * baseline.median_s,
        )
        shift = result.median_s - baseline.median_s
        if baseline.digest != result.digest:
            verdict = "digest-changed"
        elif ratio > 1.0 + threshold and shift > noise:
            verdict = "regression"
        elif ratio < 1.0 - threshold and -shift > noise:
            verdict = "improvement"
        else:
            verdict = "unchanged"
        deltas.append(
            Delta(
                name=result.name,
                old_median_s=baseline.median_s,
                new_median_s=result.median_s,
                ratio=ratio,
                verdict=verdict,
            )
        )
    return deltas


def regressions(deltas: list[Delta]) -> list[Delta]:
    """The deltas that got measurably slower."""
    return [delta for delta in deltas if delta.verdict == "regression"]


def digest_changes(deltas: list[Delta]) -> list[Delta]:
    """The deltas whose measured code changed behaviour (not comparable)."""
    return [delta for delta in deltas if delta.verdict == "digest-changed"]


def format_comparison(deltas: list[Delta]) -> str:
    """Human-readable comparison table."""
    if not deltas:
        return "no benchmarks in common between the two reports"
    lines = [
        f"{'benchmark':<24}{'old (ms)':>10}{'new (ms)':>10}{'change':>9}  verdict"
    ]
    for delta in deltas:
        lines.append(
            f"{delta.name:<24}"
            f"{delta.old_median_s * 1e3:>10.2f}"
            f"{delta.new_median_s * 1e3:>10.2f}"
            f"{delta.percent:>+8.1f}%  {delta.verdict}"
        )
    return "\n".join(lines)
