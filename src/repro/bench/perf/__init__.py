"""Microbenchmark subsystem: measure the simulator's hot paths over time.

The experiment suite answers *"do we reproduce the paper?"*; this package
answers *"how fast is the machinery that does it?"*.  It provides

* :mod:`~repro.bench.perf.benchmarks` — a registry of microbenchmarks
  covering the per-event hot path end to end: kernel event churn, the
  endorse→order→validate round trip, metrics accumulation, event-log
  derivation, and a full small-experiment wall time;
* :mod:`~repro.bench.perf.runner` — a stable-timing runner (warmup +
  repeated trials, median and MAD) producing a :class:`PerfReport` that
  round-trips through JSON, plus a determinism *digest* per benchmark so
  tests can verify the measured code's behaviour (never its timings);
* :mod:`~repro.bench.perf.compare` — baseline comparison and regression
  detection, so every PR can ratchet against a recorded ``BENCH_perf.json``.

CLI: ``python -m repro perf [--only ...] [--json BENCH_perf.json]
[--compare old.json]`` — see ``docs/PERFORMANCE.md`` for the workflow.
"""

from repro.bench.perf.benchmarks import (
    Microbenchmark,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
)
from repro.bench.perf.compare import Delta, compare_reports, format_comparison
from repro.bench.perf.runner import (
    SCHEMA_VERSION,
    BenchResult,
    PerfReport,
    report_from_dict,
    report_from_json,
    report_to_dict,
    report_to_json,
    run_benchmarks,
)

__all__ = [
    "BenchResult",
    "Delta",
    "Microbenchmark",
    "PerfReport",
    "SCHEMA_VERSION",
    "all_benchmarks",
    "benchmark_names",
    "compare_reports",
    "format_comparison",
    "get_benchmark",
    "report_from_dict",
    "report_from_json",
    "report_to_dict",
    "report_to_json",
    "run_benchmarks",
]
