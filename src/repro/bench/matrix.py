"""Declarative experiment matrices: factors × seeds → run table with CIs.

The registry (:mod:`repro.bench.registry`) enumerates the paper's
experiments one by one; a :class:`MatrixSpec` instead *generates* a run
table from a YAML/JSON file — the cross-product of named factors (block
size, send rate, workload mix, scenario, mitigation, …) crossed with a
seed list:

.. code-block:: yaml

    name: block_rate_sweep
    maker: tuned
    txs: 400
    seeds: [7, 11, 13]
    factors:
      block_count: [50, 300, 1000]
      send_rate: [150, 300, 1000]

Expansion (:func:`expand`) produces one concrete
:class:`~repro.bench.registry.ExperimentSpec` per cell × seed via the
registry's ``with_overrides`` copy, so every cell flows through the
existing parallel executor and content-addressed cache unchanged: cache
keys are per cell (spec payload + seed + budget), which is what makes a
partially completed sweep resume for free after an interrupt.

Replications are aggregated per cell (:func:`aggregate`) into **median +
bootstrap confidence intervals** instead of single-seed point estimates
— the statistics the run-table methodology of the muBench replication
and benchalot's per-cell samples argue for.  Exports are a per-run
``run_table.csv`` and an aggregated Markdown table, both byte-stable for
a fixed spec (the bootstrap RNG is seeded from the cell id).
"""

from __future__ import annotations

import csv
import hashlib
import io
import itertools
import json
import random
import statistics
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.bench.harness import ExperimentOutcome
from repro.bench.registry import ExperimentSpec, UnknownSelectionError

#: Bootstrap resamples per (cell, metric) — enough for stable 2.5/97.5
#: percentiles at these replication counts while keeping aggregation
#: instant next to even one simulation run.
BOOTSTRAP_RESAMPLES = 500

#: Two-sided confidence level of the reported intervals.
CONFIDENCE = 0.95

#: The headline metrics aggregated per cell, in report order.
METRICS = ("throughput", "latency", "success_pct")


class MatrixError(ValueError):
    """A malformed matrix spec (schema, factor, or expansion problem)."""


# -- maker shapes -------------------------------------------------------------------
#
# Each maker accepts a fixed set of factor names; ``args`` lists the ones
# that map positionally onto ``ExperimentSpec.maker_args`` (in order),
# ``defaults`` fills the optional ones, and ``free`` marks makers whose
# remaining factors become declarative knob overrides (the ``tuned``
# bundle of repro.bench.experiments).


@dataclass(frozen=True)
class _MakerShape:
    """Factor-name contract of one bundle maker."""

    args: tuple[str, ...]
    defaults: tuple[tuple[str, object], ...] = ()
    free: bool = False


_MAKER_SHAPES: dict[str, _MakerShape] = {
    "synthetic": _MakerShape(args=("experiment",), defaults=(("scheduler", "fifo"),)),
    "tuned": _MakerShape(args=("base",), defaults=(("base", "default"),), free=True),
    "scenario": _MakerShape(args=("base", "scenario")),
    "forensics": _MakerShape(
        args=("base", "scenario", "mitigation", "retry"),
        defaults=(("mitigation", "none"), ("retry", 1)),
    ),
    "usecase": _MakerShape(args=("usecase",)),
    "loan": _MakerShape(args=("send_rate",)),
    "control": _MakerShape(
        args=("base", "scenario", "policy", "retry"),
        defaults=(("policy", "off"), ("retry", 2)),
    ),
}


@dataclass(frozen=True)
class MatrixSpec:
    """One declarative experiment matrix, parsed and validated."""

    name: str
    maker: str
    #: ``(factor name, (value, ...))`` in declaration order — the order
    #: cells are enumerated in and the column order of every export.
    factors: tuple[tuple[str, tuple], ...]
    seeds: tuple[int, ...]
    #: Per-cell transaction budget; ``None`` means the bench default.
    total_transactions: int | None = None
    description: str = ""

    def cell_count(self) -> int:
        """Factor combinations (excluding the seed axis)."""
        count = 1
        for _, values in self.factors:
            count *= len(values)
        return count

    def run_count(self) -> int:
        """Total runs: cells × seeds."""
        return self.cell_count() * len(self.seeds)

    def factor_names(self) -> list[str]:
        """Factor names in declaration order."""
        return [name for name, _ in self.factors]


@dataclass(frozen=True)
class MatrixRun:
    """One expanded run: a factor combination at one seed."""

    #: ``<matrix>/<variant>@s<seed>`` — unique per run, the ``--only`` handle.
    exp_id: str
    #: ``<matrix>/<variant>`` — shared by all seeds of one combination.
    cell_id: str
    #: ``(factor name, value)`` in matrix factor order.
    factors: tuple[tuple[str, object], ...]
    seed: int
    spec: ExperimentSpec


# -- parsing / validation -----------------------------------------------------------


def load_matrix(path: str | Path) -> MatrixSpec:
    """Parse a matrix spec file (YAML or JSON, decided by suffix)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise MatrixError(f"{path}: invalid JSON: {exc}") from exc
    else:
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - pyyaml is baked in
            raise MatrixError(
                f"{path}: YAML specs need PyYAML; rewrite the spec as .json"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise MatrixError(f"{path}: invalid YAML: {exc}") from exc
    if not isinstance(data, Mapping):
        raise MatrixError(f"{path}: spec must be a mapping, got {type(data).__name__}")
    return matrix_from_dict(data)


def matrix_from_dict(data: Mapping) -> MatrixSpec:
    """Validate a parsed spec mapping into a :class:`MatrixSpec`."""
    known_keys = {"name", "description", "maker", "factors", "seeds", "txs"}
    unknown = sorted(set(data) - known_keys)
    if unknown:
        raise MatrixError(
            f"unknown spec key(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(known_keys))}"
        )

    name = data.get("name")
    if not isinstance(name, str) or not name.strip():
        raise MatrixError("spec needs a non-empty string 'name'")
    name = name.strip()
    if "/" in name or "@" in name:
        raise MatrixError(f"matrix name {name!r} must not contain '/' or '@'")

    maker = data.get("maker", "synthetic")
    shape = _MAKER_SHAPES.get(maker)
    if shape is None:
        raise MatrixError(
            f"unknown maker {maker!r}; valid: {', '.join(sorted(_MAKER_SHAPES))}"
        )

    factors = _parse_factors(name, maker, shape, data.get("factors"))
    seeds = _parse_seeds(data.get("seeds"))

    txs = data.get("txs")
    if txs is not None:
        if not isinstance(txs, int) or isinstance(txs, bool) or txs < 1:
            raise MatrixError(f"'txs' must be a positive integer, got {txs!r}")

    description = data.get("description", "")
    if not isinstance(description, str):
        raise MatrixError("'description' must be a string")

    return MatrixSpec(
        name=name,
        maker=maker,
        factors=factors,
        seeds=seeds,
        total_transactions=txs,
        description=description,
    )


def _parse_factors(
    name: str, maker: str, shape: _MakerShape, raw: object
) -> tuple[tuple[str, tuple], ...]:
    """Normalize and validate the ``factors`` mapping for one maker."""
    if not isinstance(raw, Mapping) or not raw:
        raise MatrixError(f"matrix {name!r} needs a non-empty 'factors' mapping")
    factors: list[tuple[str, tuple]] = []
    for factor_name, values in raw.items():
        if not isinstance(factor_name, str):
            raise MatrixError(f"factor names must be strings, got {factor_name!r}")
        if isinstance(values, (str, int, float, bool)):
            values = [values]  # a scalar pins the factor to one value
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise MatrixError(
                f"factor {factor_name!r} must be a list of values (or a scalar)"
            )
        if len(values) == 0:
            raise MatrixError(
                f"factor {factor_name!r} has an empty value list — the "
                "cross-product would be empty; drop the factor or give it values"
            )
        if len(set(map(str, values))) != len(values):
            raise MatrixError(f"factor {factor_name!r} repeats a value")
        factors.append((factor_name, tuple(values)))

    allowed = set(shape.args) | {key for key, _ in shape.defaults}
    if shape.free:
        from repro.bench.experiments import TUNABLE_FIELDS

        allowed |= TUNABLE_FIELDS
    bad = [factor for factor, _ in factors if factor not in allowed]
    if bad:
        raise MatrixError(
            f"maker {maker!r} does not accept factor(s) "
            f"{', '.join(repr(b) for b in bad)}; valid: {', '.join(sorted(allowed))}"
        )
    defaults = dict(shape.defaults)
    present = {factor for factor, _ in factors}
    missing = [arg for arg in shape.args if arg not in present and arg not in defaults]
    if missing:
        raise MatrixError(
            f"maker {maker!r} requires factor(s) {', '.join(repr(m) for m in missing)}"
        )
    return tuple(factors)


def _parse_seeds(raw: object) -> tuple[int, ...]:
    """Validate the seed list (non-empty, integer, duplicate-free)."""
    if raw is None:
        raise MatrixError("spec needs a 'seeds' list (one run per cell per seed)")
    if isinstance(raw, int) and not isinstance(raw, bool):
        raw = [raw]
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)) or not raw:
        raise MatrixError("'seeds' must be a non-empty list of integers")
    seeds: list[int] = []
    for seed in raw:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise MatrixError(f"seeds must be integers, got {seed!r}")
        seeds.append(seed)
    if len(set(seeds)) != len(seeds):
        raise MatrixError("'seeds' repeats a value — replications must differ")
    return tuple(seeds)


# -- expansion ----------------------------------------------------------------------


def expand(matrix: MatrixSpec) -> list[MatrixRun]:
    """Cross every factor with every seed into concrete registry specs.

    Cells enumerate in factor declaration order (last factor varies
    fastest), seeds innermost — the row order of ``run_table.csv``.
    Duplicate cell ids (two value combinations that render to the same
    variant string) are an error, not a silent overwrite.
    """
    shape = _MAKER_SHAPES[matrix.maker]
    names = matrix.factor_names()
    value_lists = [values for _, values in matrix.factors]
    runs: list[MatrixRun] = []
    seen_cells: set[str] = set()
    for combo in itertools.product(*value_lists):
        bound = dict(zip(names, combo))
        variant = "_".join(_slug(value) for value in combo)
        cell_id = f"{matrix.name}/{variant}"
        if cell_id in seen_cells:
            raise MatrixError(
                f"duplicate cell id {cell_id!r}: two factor combinations "
                "render identically; make the values distinguishable"
            )
        seen_cells.add(cell_id)
        template = _cell_spec(matrix, shape, cell_id, variant, bound)
        for seed in matrix.seeds:
            spec = template.with_overrides(seed=seed)
            # with_overrides keeps the exp_id; re-key it per seed so the
            # executor's outcome map and ``--only`` see each run.
            exp_id = f"{cell_id}@s{seed}"
            spec = replace(
                spec, exp_id=exp_id, title=f"{matrix.name} / {variant} (seed {seed})"
            )
            runs.append(
                MatrixRun(
                    exp_id=exp_id,
                    cell_id=cell_id,
                    factors=tuple(zip(names, combo)),
                    seed=seed,
                    spec=spec,
                )
            )
    return runs


def _cell_spec(
    matrix: MatrixSpec,
    shape: _MakerShape,
    cell_id: str,
    variant: str,
    bound: dict,
) -> ExperimentSpec:
    """The template :class:`ExperimentSpec` of one factor combination."""
    values = dict(shape.defaults) | bound
    scheduler = "fifo"
    if matrix.maker == "synthetic":
        maker_args: tuple = (values["experiment"],)
        scheduler = values.get("scheduler", "fifo")
    elif matrix.maker == "tuned":
        overrides = tuple(
            sorted((name, value) for name, value in bound.items() if name != "base")
        )
        maker_args = (values["base"], overrides)
    elif matrix.maker == "scenario":
        maker_args = (values["base"], values["scenario"])
    elif matrix.maker == "forensics":
        maker_args = (
            values["base"],
            values["scenario"],
            values["mitigation"],
            int(values["retry"]),
        )
    elif matrix.maker == "control":
        maker_args = (
            values["base"],
            values["scenario"],
            str(values["policy"]),
            int(values["retry"]),
        )
    elif matrix.maker == "usecase":
        maker_args = (values["usecase"],)
    else:  # loan
        maker_args = (float(values["send_rate"]),)
    return ExperimentSpec(
        exp_id=cell_id,
        group=matrix.name,
        variant=variant,
        title=f"{matrix.name} / {variant}",
        maker=matrix.maker,
        maker_args=maker_args,
        scheduler=scheduler,
        total_transactions=matrix.total_transactions,
    )


def _slug(value: object) -> str:
    """A value's id fragment: compact, filesystem/CSV-safe, readable."""
    text = str(value)
    if isinstance(value, float) and text.endswith(".0"):
        text = text[:-2]
    for bad, good in (("/", "-"), ("@", "-"), (" ", "-"), (",", "-")):
        text = text.replace(bad, good)
    return text


def select_runs(runs: list[MatrixRun], tokens: Iterable[str]) -> list[MatrixRun]:
    """Filter expanded runs by ``--only`` tokens (cell/run ids or prefixes).

    Mirrors :func:`repro.bench.registry.select`: every token must match
    at least one run or the whole selection fails with
    :class:`~repro.bench.registry.UnknownSelectionError` naming each
    unmatched token — a typo must not quietly shrink a sweep.
    """
    matched: set[str] = set()
    unmatched: list[str] = []
    cleaned = [token.strip() for token in tokens if token.strip()]
    if not cleaned:
        raise UnknownSelectionError(list(tokens), "the selection is empty")
    for token in cleaned:
        hits = [
            run
            for run in runs
            if run.exp_id == token
            or run.cell_id == token
            or run.cell_id.startswith(token)
        ]
        if not hits:
            unmatched.append(token)
        matched.update(run.exp_id for run in hits)
    if unmatched:
        raise UnknownSelectionError(
            unmatched, "use --dry-run to list the expanded cell ids"
        )
    return [run for run in runs if run.exp_id in matched]


# -- statistics ---------------------------------------------------------------------


@dataclass(frozen=True)
class MetricStats:
    """Median and bootstrap CI of one metric across a cell's seeds."""

    median: float
    ci_low: float
    ci_high: float


@dataclass(frozen=True)
class CellStats:
    """Aggregated replications of one cell (all seeds)."""

    cell_id: str
    factors: tuple[tuple[str, object], ...]
    n: int
    metrics: dict[str, MetricStats]


def bootstrap_ci(
    values: Sequence[float],
    key: str,
    resamples: int = BOOTSTRAP_RESAMPLES,
    confidence: float = CONFIDENCE,
) -> tuple[float, float]:
    """Percentile bootstrap CI of the median, deterministically seeded.

    The RNG seed derives from ``key`` (cell id + metric) via SHA-256, so
    re-running the same matrix reproduces the interval bit for bit —
    run-table exports stay byte-stable.  With a single replication the
    interval degrades to the point itself.
    """
    if not values:
        raise ValueError("bootstrap_ci needs at least one value")
    if len(values) == 1:
        return (values[0], values[0])
    seed = int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")
    rng = random.Random(seed)
    n = len(values)
    medians = sorted(
        statistics.median(rng.choices(values, k=n)) for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low = medians[int(alpha * (resamples - 1))]
    high = medians[int((1.0 - alpha) * (resamples - 1))]
    return (low, high)


def aggregate(
    runs: list[MatrixRun], outcomes: Mapping[str, ExperimentOutcome]
) -> list[CellStats]:
    """Collapse per-seed baseline rows into per-cell median + CI stats.

    ``outcomes`` maps ``exp_id`` → outcome (the suite report's pairing).
    Each run contributes its *baseline* row — matrix cells carry no
    optimization plans, so the baseline is the cell's one measurement.
    """
    by_cell: dict[str, list[MatrixRun]] = {}
    for run in runs:
        by_cell.setdefault(run.cell_id, []).append(run)
    cells: list[CellStats] = []
    for cell_id, cell_runs in by_cell.items():
        samples: dict[str, list[float]] = {metric: [] for metric in METRICS}
        for run in cell_runs:
            row = outcomes[run.exp_id].rows[0]
            samples["throughput"].append(row.throughput)
            samples["latency"].append(row.latency)
            samples["success_pct"].append(row.success_pct)
        metrics = {}
        for metric in METRICS:
            values = samples[metric]
            low, high = bootstrap_ci(values, key=f"{cell_id}:{metric}")
            metrics[metric] = MetricStats(
                median=statistics.median(values), ci_low=low, ci_high=high
            )
        cells.append(
            CellStats(
                cell_id=cell_id,
                factors=cell_runs[0].factors,
                n=len(cell_runs),
                metrics=metrics,
            )
        )
    return cells


# -- exports ------------------------------------------------------------------------


def run_table_csv(
    runs: list[MatrixRun], outcomes: Mapping[str, ExperimentOutcome]
) -> str:
    """The per-run table: one CSV row per cell × seed, expansion order.

    Columns: run id, cell id, one column per factor, seed, the resolved
    transaction budget, and the three headline metrics.  Content depends
    only on the spec and the (deterministic) simulations, so a re-run
    writes byte-identical CSV — the CI smoke step asserts this.
    """
    factor_names = [name for name, _ in runs[0].factors] if runs else []
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["run_id", "cell_id", *factor_names, "seed", "txs",
         "throughput_tps", "latency_s", "success_pct"]
    )
    for run in runs:
        row = outcomes[run.exp_id].rows[0]
        writer.writerow(
            [
                run.exp_id,
                run.cell_id,
                *[value for _, value in run.factors],
                run.seed,
                run.spec.payload()["total_transactions"],
                row.throughput,
                row.latency,
                row.success_pct,
            ]
        )
    return buffer.getvalue()


def summary_markdown(matrix: MatrixSpec, cells: list[CellStats]) -> str:
    """The aggregated Markdown table: one row per cell, median [CI] cells."""
    factor_names = matrix.factor_names()
    lines = [
        f"# Matrix `{matrix.name}`",
        "",
        f"{matrix.cell_count()} cells × {len(matrix.seeds)} seeds "
        f"= {matrix.run_count()} runs (maker `{matrix.maker}`, seeds "
        f"{', '.join(str(seed) for seed in matrix.seeds)}).",
        "",
        "Medians with "
        f"{CONFIDENCE:.0%} percentile-bootstrap confidence intervals "
        f"({BOOTSTRAP_RESAMPLES} resamples) over the seed replications.",
        "",
        "| cell | " + " | ".join(factor_names)
        + " | n | tput (tps) | latency (s) | success (%) |",
        "|---" * (len(factor_names) + 5) + "|",
    ]
    for cell in cells:
        metric_cells = [
            _format_stats(cell.metrics["throughput"], 1),
            _format_stats(cell.metrics["latency"], 2),
            _format_stats(cell.metrics["success_pct"], 1),
        ]
        lines.append(
            "| " + cell.cell_id.split("/", 1)[1]
            + " | " + " | ".join(str(value) for _, value in cell.factors)
            + f" | {cell.n} | " + " | ".join(metric_cells) + " |"
        )
    lines.append("")
    return "\n".join(lines)


def _format_stats(stats: MetricStats, decimals: int) -> str:
    """``median [lo, hi]``, or just the median for single-seed cells."""
    if stats.ci_low == stats.ci_high == stats.median:
        return f"{stats.median:.{decimals}f}"
    return (
        f"{stats.median:.{decimals}f} "
        f"[{stats.ci_low:.{decimals}f}, {stats.ci_high:.{decimals}f}]"
    )


def write_outputs(
    out_dir: str | Path,
    matrix: MatrixSpec,
    runs: list[MatrixRun],
    outcomes: Mapping[str, ExperimentOutcome],
) -> tuple[Path, Path]:
    """Write ``run_table.csv`` and ``summary.md`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    table_path = out / "run_table.csv"
    table_path.write_text(run_table_csv(runs, outcomes))
    summary_path = out / "summary.md"
    summary_path.write_text(summary_markdown(matrix, aggregate(runs, outcomes)))
    return table_path, summary_path
