"""Benchmark harness: regenerate every table and figure of the paper.

:mod:`~repro.bench.harness` runs the full loop — generate workload, run,
analyze with BlockOptR, apply recommended optimizations, re-run — and
formats paper-style rows (success throughput / average latency / success
rate, without vs with).  :mod:`~repro.bench.experiments` holds the
experiment definitions and the paper's reported values for comparison.
"""

from repro.bench.cache import ResultCache
from repro.bench.executor import (
    ExperimentExecutionError,
    SuiteReport,
    derive_seed,
    run_spec,
    run_suite,
)
from repro.bench.harness import (
    ExperimentOutcome,
    RunRow,
    default_recommendation,
    execute_experiment,
    run_usecase_demo,
)
from repro.bench.matrix import (
    MatrixError,
    MatrixRun,
    MatrixSpec,
    expand,
    load_matrix,
    matrix_from_dict,
)
from repro.bench.registry import ExperimentSpec, UnknownSelectionError
from repro.bench.tables import format_outcome, format_paper_comparison

__all__ = [
    "ExperimentExecutionError",
    "ExperimentOutcome",
    "ExperimentSpec",
    "MatrixError",
    "MatrixRun",
    "MatrixSpec",
    "ResultCache",
    "RunRow",
    "SuiteReport",
    "UnknownSelectionError",
    "default_recommendation",
    "derive_seed",
    "execute_experiment",
    "expand",
    "format_outcome",
    "format_paper_comparison",
    "load_matrix",
    "matrix_from_dict",
    "run_spec",
    "run_suite",
    "run_usecase_demo",
]
