"""Benchmark harness: regenerate every table and figure of the paper.

:mod:`~repro.bench.harness` runs the full loop — generate workload, run,
analyze with BlockOptR, apply recommended optimizations, re-run — and
formats paper-style rows (success throughput / average latency / success
rate, without vs with).  :mod:`~repro.bench.experiments` holds the
experiment definitions and the paper's reported values for comparison.
"""

from repro.bench.cache import ResultCache
from repro.bench.executor import SuiteReport, derive_seed, run_spec, run_suite
from repro.bench.harness import (
    ExperimentOutcome,
    RunRow,
    default_recommendation,
    execute_experiment,
    run_usecase_demo,
)
from repro.bench.registry import ExperimentSpec
from repro.bench.tables import format_outcome, format_paper_comparison

__all__ = [
    "ExperimentOutcome",
    "ExperimentSpec",
    "ResultCache",
    "RunRow",
    "SuiteReport",
    "default_recommendation",
    "derive_seed",
    "execute_experiment",
    "format_outcome",
    "format_paper_comparison",
    "run_spec",
    "run_suite",
    "run_usecase_demo",
]
