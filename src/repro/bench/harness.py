"""The run → analyze → optimize → re-run loop behind every figure.

The paper's protocol (Section 5): execute a workload without
optimizations, feed the ledger to BlockOptR, implement the recommended
optimizations (Table 4 settings), re-execute the same workload, and
compare success throughput, average latency and success rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.contracts.registry import ContractFamily
from repro.core.apply import apply_recommendations
from repro.core.recommendations import OptimizationKind, Recommendation
from repro.core.recommender import AnalysisReport, BlockOptR
from repro.core.thresholds import Thresholds
from repro.fabric.config import NetworkConfig
from repro.fabric.network import run_workload
from repro.fabric.policy import parse_policy
from repro.fabric.results import RunResult
from repro.fabric.transaction import TxRequest
from repro.scenario.spec import ScenarioSpec

#: A factory producing one experiment's ingredients: ``(config, family,
#: requests)`` or, for scenario experiments, ``(config, family, requests,
#: scenario)``.
MakeBundle = Callable[[], tuple]


def unpack_bundle(
    bundle: tuple,
) -> tuple[NetworkConfig, ContractFamily, list[TxRequest], ScenarioSpec | None]:
    """Normalize a bundle to ``(config, family, requests, scenario)``.

    Pre-scenario makers return 3-tuples; scenario makers append the
    :class:`ScenarioSpec`.  Everything downstream (serial harness, both
    executor waves) handles the two shapes through this one helper.
    """
    if len(bundle) == 3:
        config, family, requests = bundle
        return config, family, requests, None
    config, family, requests, scenario = bundle
    return config, family, requests, scenario


@dataclass
class RunRow:
    """One bar group of a paper figure: a run's three headline numbers."""

    label: str
    throughput: float
    latency: float
    success_pct: float
    #: Kinds actually applied for this run (empty for the baseline).
    applied: tuple[str, ...] = ()
    #: True when the optimization was applied despite not being recommended
    #: (to regenerate a paper row); EXPERIMENTS.md records these.
    forced: bool = False

    @staticmethod
    def from_result(label: str, result: RunResult, applied=(), forced=False) -> "RunRow":
        return RunRow(
            label=label,
            throughput=round(result.success_throughput, 1),
            latency=round(result.avg_latency, 2),
            success_pct=round(result.success_rate * 100.0, 1),
            applied=tuple(k.value if isinstance(k, OptimizationKind) else str(k) for k in applied),
            forced=forced,
        )


@dataclass
class ExperimentOutcome:
    """Everything a bench run produces for one experiment."""

    name: str
    rows: list[RunRow]
    recommendations: list[str]
    #: Paper-reported (throughput, latency, success%) per row label.
    paper: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    report: AnalysisReport | None = None
    #: One failure-forensics report (dict form, see
    #: :func:`repro.analysis.forensics.forensics_report`) per row, in row
    #: order; ``None`` on outcomes hydrated from pre-forensics caches.
    forensics: list[dict] | None = None
    #: One control timeline (dict form, see
    #: :meth:`repro.control.timeline.ControlTimeline.to_dict`) per row, in
    #: row order (``None`` entries for controller-off runs); ``None`` when
    #: no run of the experiment had a controller installed.
    control: list[dict | None] | None = None

    def row(self, label: str) -> RunRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.name}")

    def __str__(self) -> str:
        from repro.bench.tables import format_outcome

        return format_outcome(self)


def default_recommendation(
    kind: OptimizationKind, report: AnalysisReport
) -> Recommendation:
    """Build an applicable recommendation even when the rule did not fire.

    Benches must regenerate every paper row; when our detector disagrees
    with the paper's (thresholds differ), the optimization is applied
    anyway and the row is flagged ``forced``.
    """
    metrics = report.metrics
    if kind is OptimizationKind.BLOCK_SIZE_ADAPTATION:
        actions = {"block_count": max(1, round(metrics.tr * metrics.btimeout))}
    elif kind is OptimizationKind.TRANSACTION_RATE_CONTROL:
        actions = {"target_rate": 100.0}
    elif kind is OptimizationKind.ENDORSER_RESTRUCTURING:
        try:
            policy = parse_policy(metrics.endorsement_policy)
            orgs = sorted(policy.organizations())
            minimum = policy.min_endorsements()
        except Exception:
            orgs = sorted(metrics.edsig_org)
            minimum = 1
        actions = {
            "policy": f"OutOf({minimum},{','.join(orgs)})",
            "balance_selection": True,
        }
    elif kind is OptimizationKind.CLIENT_RESOURCE_BOOST:
        busiest = max(metrics.ivsig_org, key=lambda org: metrics.ivsig_org[org])
        actions = {"orgs": (busiest,), "scale_factor": 2}
    elif kind is OptimizationKind.ACTIVITY_REORDERING:
        pairs = {
            (p.failed_activity, p.culprit_activity)
            for p in metrics.conflict_pairs
            if p.reorderable and p.failed_activity != p.culprit_activity
        }
        culprits = {culprit for _, culprit in pairs}
        front = {failed for failed, _ in pairs if failed not in culprits}
        actions = {"front": tuple(sorted(front)), "back": ()}
    else:
        # Contract-swap kinds need no parameters beyond the kind itself.
        actions = {}
    return Recommendation(
        kind=kind, rationale="forced by the bench harness", actions=actions
    )


def control_timeline_dict(network) -> dict | None:
    """Dict-form control timeline of ``network``, ``None`` when no
    controller is installed (controller-off runs)."""
    controller = getattr(network, "controller", None)
    return controller.timeline.to_dict() if controller is not None else None


def execute_experiment(
    name: str,
    make: MakeBundle,
    plans: list[tuple[str, tuple[OptimizationKind, ...]]],
    thresholds: Thresholds | None = None,
    paper: dict[str, tuple[float, float, float]] | None = None,
    keep_report: bool = False,
) -> ExperimentOutcome:
    """Run one experiment: baseline, analysis, then one run per plan.

    ``plans`` lists the optimization combinations the figure shows, e.g.
    ``[("rate control", (TRANSACTION_RATE_CONTROL,)), ("all", (...))]``.

    Scenario bundles run both the baseline and every optimized re-run
    under the same scenario: the recommendations are evaluated under the
    same faults they were derived from.
    """
    from repro.analysis.forensics import forensics_report

    config, family, requests, scenario = unpack_bundle(make())
    deployment = family.deploy()
    network, baseline = run_workload(
        config, deployment.contracts, requests, scenario=scenario
    )
    advisor = BlockOptR(thresholds)
    report = advisor.analyze_network(network)

    rows = [RunRow.from_result("without", baseline)]
    forensics = [forensics_report(network).to_dict()]
    control: list[dict | None] = [control_timeline_dict(network)]
    recommended = report.recommended_kinds()
    for label, kinds in plans:
        recs: list[Recommendation] = []
        forced = False
        for kind in kinds:
            if kind in recommended:
                recs.append(report.get(kind))
            else:
                recs.append(default_recommendation(kind, report))
                forced = True
        applied = apply_recommendations(recs, config, family, requests)
        optimized_network, optimized = run_workload(
            applied.config,
            applied.deployment.contracts,
            applied.requests,
            scenario=scenario,
        )
        rows.append(
            RunRow.from_result(label, optimized, applied=applied.applied, forced=forced)
        )
        forensics.append(forensics_report(optimized_network).to_dict())
        control.append(control_timeline_dict(optimized_network))

    return ExperimentOutcome(
        name=name,
        rows=rows,
        recommendations=sorted(k.value for k in recommended),
        paper=dict(paper or {}),
        report=report if keep_report else None,
        forensics=forensics,
        control=control if any(entry is not None for entry in control) else None,
    )


def run_usecase_demo(
    usecase: str, total_transactions: int = 3000, seed: int = 7
) -> ExperimentOutcome:
    """One-call demo used by the CLI: run, analyze, apply all, re-run."""
    from repro.bench.experiments import make_usecase, usecase_plans

    make = make_usecase(usecase, total_transactions=total_transactions, seed=seed)
    plans = usecase_plans(usecase)
    return execute_experiment(f"demo:{usecase}", make, plans)
