"""Parallel experiment executor: fan experiments out over a process pool.

The paper's protocol (run → analyze → apply recommendations → re-run) is
embarrassingly parallel across experiments, and within one experiment the
per-plan optimized runs are independent of one another once the baseline
has been analyzed.  The executor exploits both levels:

* **wave 1** — one pool task per experiment runs the baseline workload,
  analyzes it with BlockOptR and resolves each plan's recommendations;
* **wave 2** — as each baseline completes, one pool task per plan applies
  the resolved recommendations to a freshly generated bundle and re-runs.

Because the simulator is fully deterministic for a fixed seed (the kernel
breaks ties by insertion order and nothing depends on process state), the
fan-out is bit-for-bit equivalent to serial :func:`execute_experiment`
output — ``tests/test_executor_equivalence.py`` pins this down.

Results are memoized via :class:`~repro.bench.cache.ResultCache`; a warm
re-run performs zero simulation runs.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.cache import ResultCache
from repro.bench.harness import (
    ExperimentOutcome,
    RunRow,
    control_timeline_dict,
    default_recommendation,
    execute_experiment,
    unpack_bundle,
)
from repro.bench.registry import ExperimentSpec
from repro.core.apply import apply_recommendations
from repro.core.recommendations import Recommendation
from repro.core.recommender import BlockOptR
from repro.fabric.network import run_workload

#: Optional progress sink: called with one human-readable line per event.
Progress = Callable[[str], None]


class ExperimentExecutionError(RuntimeError):
    """A cell of a suite/matrix run crashed — with its identity attached.

    In a large sweep the raw worker exception is useless on its own (a
    pool future only says *something* failed); this wrapper names the
    experiment, the stage (baseline / plan / whole run) and carries the
    original traceback text, so the failing cell can be re-run with
    ``--only <exp_id>`` immediately.
    """

    def __init__(self, exp_id: str, stage: str, original: BaseException) -> None:
        self.exp_id = exp_id
        self.stage = stage
        self.original = original
        detail = "".join(
            traceback.format_exception(
                type(original), original, original.__traceback__
            )
        ).rstrip()
        super().__init__(
            f"experiment {exp_id!r} failed during {stage}: {original!r}\n"
            f"original traceback:\n{detail}"
        )


def _attribute(exp_id: str, stage: str, exc: BaseException) -> "ExperimentExecutionError":
    """Wrap a worker/serial failure, never double-wrapping."""
    if isinstance(exc, ExperimentExecutionError):
        return exc
    return ExperimentExecutionError(exp_id, stage, exc)


def derive_seed(base_seed: int, name: str) -> int:
    """Deterministic per-experiment seed from a base seed and a run name.

    Stable across processes and Python versions (unlike ``hash()``), so a
    suite run with ``--seed N`` gives every experiment its own
    reproducible stream.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


@dataclass
class SuiteReport:
    """What one suite invocation did and produced."""

    outcomes: list[ExperimentOutcome] = field(default_factory=list)
    #: exp_ids actually simulated this invocation.
    executed: list[str] = field(default_factory=list)
    #: exp_ids served from the result cache.
    cached: list[str] = field(default_factory=list)
    #: Workload simulations performed (0 on a fully warm cache).
    simulated_runs: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1

    def summary(self) -> str:
        """One-line human summary (the suite's final stdout line)."""
        return (
            f"suite: {len(self.outcomes)} experiments "
            f"({len(self.cached)} cached, {len(self.executed)} executed), "
            f"{self.simulated_runs} simulation runs, "
            f"{self.wall_seconds:.1f}s wall, jobs={self.jobs}"
        )


def run_spec(spec: ExperimentSpec) -> ExperimentOutcome:
    """Run one experiment serially, exactly as the bench scripts always have."""
    if spec.maker == "sharded":
        from repro.shard import run_registry_spec

        return run_registry_spec(spec)
    return execute_experiment(
        spec.title, spec.make_bundle(), spec.resolved_plans(), paper=spec.paper_dict()
    )


# -- pool worker tasks --------------------------------------------------------------
#
# Top-level functions (picklable) receiving declarative specs; each task
# regenerates its bundle from the spec, which is deterministic and keeps
# the payload shipped between processes tiny.


@dataclass
class _BaselineResult:
    exp_id: str
    row: RunRow
    recommendations: list[str]
    #: Per plan: (label, resolved recommendations, forced flag).
    plan_tasks: list[tuple[str, tuple[Recommendation, ...], bool]]
    #: Baseline failure-forensics report (dict form).
    forensics: dict = None  # type: ignore[assignment]
    #: Baseline control timeline (dict form), ``None`` when controller-off.
    control: dict | None = None


def _baseline_task(spec: ExperimentSpec) -> _BaselineResult:
    """Wave 1: baseline run + analysis + plan resolution (mirrors
    the first half of :func:`repro.bench.harness.execute_experiment`)."""
    from repro.analysis.forensics import forensics_report

    config, family, requests, scenario = unpack_bundle(spec.make_bundle()())
    deployment = family.deploy()
    network, baseline = run_workload(
        config, deployment.contracts, requests, scenario=scenario
    )
    report = BlockOptR().analyze_network(network)
    recommended = report.recommended_kinds()

    plan_tasks = []
    for label, kinds in spec.resolved_plans():
        recs: list[Recommendation] = []
        forced = False
        for kind in kinds:
            if kind in recommended:
                recs.append(report.get(kind))
            else:
                recs.append(default_recommendation(kind, report))
                forced = True
        plan_tasks.append((label, tuple(recs), forced))

    return _BaselineResult(
        exp_id=spec.exp_id,
        row=RunRow.from_result("without", baseline),
        recommendations=sorted(kind.value for kind in recommended),
        plan_tasks=plan_tasks,
        forensics=forensics_report(network).to_dict(),
        control=control_timeline_dict(network),
    )


def _plan_task(
    spec: ExperimentSpec, label: str, recs: tuple[Recommendation, ...], forced: bool
) -> tuple[RunRow, dict, dict | None]:
    """Wave 2: apply one plan's recommendations and re-run (mirrors the
    per-plan loop of :func:`repro.bench.harness.execute_experiment`).
    Returns the row plus the run's forensics report (dict form) and its
    control timeline (``None`` when the run has no controller)."""
    from repro.analysis.forensics import forensics_report

    config, family, requests, scenario = unpack_bundle(spec.make_bundle()())
    applied = apply_recommendations(list(recs), config, family, requests)
    network, optimized = run_workload(
        applied.config,
        applied.deployment.contracts,
        applied.requests,
        scenario=scenario,
    )
    row = RunRow.from_result(label, optimized, applied=applied.applied, forced=forced)
    return row, forensics_report(network).to_dict(), control_timeline_dict(network)


# -- the suite runner ---------------------------------------------------------------


def run_suite(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
) -> SuiteReport:
    """Run ``specs``, fanning out over ``jobs`` worker processes.

    ``cache=None`` disables caching entirely.  Outcomes come back in the
    order of ``specs`` regardless of completion order.  ``jobs <= 1``
    executes serially in-process (the reference path the parallel one is
    tested against).
    """
    started = time.perf_counter()
    report = SuiteReport(jobs=max(1, jobs))
    note = progress or (lambda message: None)

    outcomes: dict[str, ExperimentOutcome] = {}
    to_run: list[ExperimentSpec] = []
    for spec in specs:
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[spec.exp_id] = hit
            report.cached.append(spec.exp_id)
            note(f"cached   {spec.exp_id}")
        else:
            to_run.append(spec)

    if to_run and report.jobs == 1:
        for spec in to_run:
            try:
                outcome = run_spec(spec)
            except Exception as exc:
                raise _attribute(spec.exp_id, "serial run", exc) from exc
            outcomes[spec.exp_id] = outcome
            report.executed.append(spec.exp_id)
            report.simulated_runs += spec.run_count()
            if cache is not None:
                cache.put(spec, outcome)
            note(f"executed {spec.exp_id}")
    elif to_run:
        _run_parallel(to_run, report, outcomes, cache, note)

    report.outcomes = [outcomes[spec.exp_id] for spec in specs]
    report.wall_seconds = time.perf_counter() - started
    return report


def _run_parallel(
    to_run: list[ExperimentSpec],
    report: SuiteReport,
    outcomes: dict[str, ExperimentOutcome],
    cache: ResultCache | None,
    note: Progress,
) -> None:
    by_id = {spec.exp_id: spec for spec in to_run}
    baselines: dict[str, _BaselineResult] = {}
    # exp_id -> {plan index -> (RunRow, forensics dict, control dict)},
    # filled as wave-2 tasks finish.  Keyed by index, not label: duplicate
    # plan labels must still produce one row each, exactly as the serial
    # path does.
    plan_rows: dict[str, dict[int, tuple[RunRow, dict, dict | None]]] = {
        spec.exp_id: {} for spec in to_run
    }
    plans_open: dict[str, int] = {}

    with ProcessPoolExecutor(max_workers=report.jobs) as pool:
        futures = {}
        for spec in to_run:
            if spec.maker == "sharded":
                # Sharded experiments have no baseline/plan split: the
                # whole run is one pool task producing the outcome.
                futures[pool.submit(run_spec, spec)] = ("whole", spec.exp_id, None)
            else:
                futures[pool.submit(_baseline_task, spec)] = (
                    "baseline",
                    spec.exp_id,
                    None,
                )
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                kind, exp_id, plan_index = futures.pop(future)
                spec = by_id[exp_id]
                if (error := future.exception()) is not None:
                    stage = kind
                    if kind == "plan":
                        stage = f"plan {spec.plans[plan_index][0]!r}"
                    raise _attribute(exp_id, stage, error) from error
                if kind == "whole":
                    outcomes[exp_id] = future.result()
                    report.simulated_runs += spec.run_count()
                    report.executed.append(exp_id)
                    if cache is not None:
                        cache.put(spec, outcomes[exp_id])
                    note(f"executed {exp_id}")
                    continue
                if kind == "baseline":
                    result: _BaselineResult = future.result()
                    baselines[exp_id] = result
                    report.simulated_runs += 1
                    plans_open[exp_id] = len(result.plan_tasks)
                    for index, (plan_label, recs, forced) in enumerate(
                        result.plan_tasks
                    ):
                        plan_future = pool.submit(
                            _plan_task, spec, plan_label, recs, forced
                        )
                        futures[plan_future] = ("plan", exp_id, index)
                else:
                    plan_rows[exp_id][plan_index] = future.result()
                    report.simulated_runs += 1
                    plans_open[exp_id] -= 1
                if plans_open.get(exp_id) == 0:
                    outcome = _assemble(spec, baselines[exp_id], plan_rows[exp_id])
                    outcomes[exp_id] = outcome
                    report.executed.append(exp_id)
                    if cache is not None:
                        cache.put(spec, outcome)
                    note(f"executed {exp_id}")


def _assemble(
    spec: ExperimentSpec,
    baseline: _BaselineResult,
    rows_by_index: dict[int, tuple[RunRow, dict, dict | None]],
) -> ExperimentOutcome:
    """Rows in plan order, identical to what ``execute_experiment`` builds."""
    rows = [baseline.row]
    forensics = [baseline.forensics]
    control: list[dict | None] = [baseline.control]
    for index in range(len(spec.plans)):
        row, row_forensics, row_control = rows_by_index[index]
        rows.append(row)
        forensics.append(row_forensics)
        control.append(row_control)
    return ExperimentOutcome(
        name=spec.title,
        rows=rows,
        recommendations=baseline.recommendations,
        paper=spec.paper_dict(),
        forensics=forensics,
        control=control if any(entry is not None for entry in control) else None,
    )
