"""Command-line interface: ``blockoptr`` / ``python -m repro``.

Subcommands:

* ``analyze <log.csv|log.json>`` — run BlockOptR over an exported
  blockchain log and print the recommendation report.
* ``demo [--usecase NAME]`` — run a small simulated workload, analyze it,
  apply the recommendations, re-run, and print before/after numbers.
* ``export <log.json> --out <log.csv>`` — convert between log formats.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.recommender import BlockOptR
from repro.core.report import render_report


def _cmd_analyze(args: argparse.Namespace) -> int:
    report = BlockOptR().analyze_file(args.log)
    print(
        render_report(
            report,
            include_model=not args.no_model,
            include_insights=args.insights,
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.logs.export import log_from_csv, log_from_json, log_to_csv, log_to_json

    source = args.log
    if source.endswith(".csv"):
        log = log_from_csv(source)
    else:
        log = log_from_json(source)
    if args.out.endswith(".csv"):
        log_to_csv(log, args.out)
    else:
        log_to_json(log, args.out)
    print(f"wrote {args.out} ({len(log)} records)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_usecase_demo

    outcome = run_usecase_demo(
        args.usecase, total_transactions=args.transactions, seed=args.seed
    )
    print(outcome)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blockoptr",
        description="Multi-level blockchain optimization recommendations (BlockOptR reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze an exported blockchain log")
    analyze.add_argument("log", help="path to a .csv or .json blockchain log")
    analyze.add_argument(
        "--no-model", action="store_true", help="skip the derived process model section"
    )
    analyze.add_argument(
        "--insights",
        action="store_true",
        help="append the conflict-structure appendix (inter/intra-block shares)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    export = sub.add_parser("export", help="convert a log between CSV and JSON")
    export.add_argument("log")
    export.add_argument("--out", required=True)
    export.set_defaults(func=_cmd_export)

    demo = sub.add_parser("demo", help="simulate, analyze, optimize, re-run")
    demo.add_argument(
        "--usecase",
        default="scm",
        choices=("scm", "drm", "ehr", "voting", "loan", "synthetic"),
    )
    demo.add_argument("--transactions", type=int, default=3000)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
