"""Command-line interface: ``blockoptr`` / ``python -m repro``.

Subcommands:

* ``analyze <log.csv|log.json>`` — run BlockOptR over an exported
  blockchain log and print the recommendation report; ``analyze --cached
  <exp_id>`` instead renders the failure-forensics report of a cached
  registry run (running and caching it first on a cache miss).
* ``demo [--usecase NAME]`` — run a small simulated workload, analyze it,
  apply the recommendations, re-run, and print before/after numbers.
* ``export <log.json> --out <log.csv>`` — convert between log formats.
* ``suite [--jobs N] [--only fig09,fig10]`` — run the paper's experiment
  suite through the parallel executor with result caching.
* ``matrix --spec sweep.yaml [--jobs N] [--only ...] [--dry-run]`` —
  expand a declarative factor × seed matrix, run every cell through the
  executor + cache, and export ``run_table.csv`` plus a Markdown table
  with median + bootstrap-CI columns.
* ``scenario [--name crash_burst | --spec file.json]`` — run a workload
  under declarative fault injection and dynamic network conditions, and
  compare against the steady-state run.
* ``shard [--channels N] [--txs N]`` — run a streamed multi-channel
  workload with bounded memory, print the stitched summary and its
  digest; ``--check-digest``/``--max-rss-mb`` back the CI smoke step.
* ``perf [--only ...] [--json BENCH_perf.json] [--compare old.json]`` —
  run the hot-path microbenchmarks (warmup + repeated trials, median/MAD)
  and optionally ratchet against a recorded baseline.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.recommender import BlockOptR
from repro.core.report import render_report


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.cached is not None and args.log is not None:
        print("error: pass either a log file or --cached, not both", file=sys.stderr)
        return 2
    if args.cached is not None:
        return _analyze_cached(args)
    if args.log is None:
        print("error: need a log file or --cached <exp_id>", file=sys.stderr)
        return 2
    report = BlockOptR().analyze_file(args.log)
    print(
        render_report(
            report,
            include_model=not args.no_model,
            include_insights=args.insights,
        )
    )
    return 0


def _analyze_cached(args: argparse.Namespace) -> int:
    """Failure forensics for one registry experiment, served from cache.

    On a cache miss the experiment is executed (and cached) first, so the
    command always produces a report; ``--cache-only`` turns a miss into
    a clean error instead.  A schema-mismatched entry (e.g. written by an
    incompatible version) is reported as an error, never a traceback.
    """
    from repro.analysis import render_cause_summary, render_forensics
    from repro.bench.cache import ResultCache
    from repro.bench.executor import run_suite
    from repro.bench.registry import get

    try:
        spec = get(args.cached)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.txs is not None:
        if args.txs < 1:
            print(f"error: --txs must be >= 1, got {args.txs}", file=sys.stderr)
            return 2
        spec = spec.with_overrides(total_transactions=args.txs)

    cache = ResultCache(args.cache_dir)
    if args.cache_only:
        outcome = cache.get(spec)
        if outcome is None:
            print(
                f"error: no cache entry for {spec.exp_id} under {cache.root}; "
                f"run `repro suite --only {spec.exp_id}` first or drop "
                "--cache-only",
                file=sys.stderr,
            )
            return 1
        source = "cache"
    else:
        report = run_suite([spec], jobs=1, cache=cache)
        outcome = report.outcomes[0]
        source = "cache" if report.cached else "fresh run (now cached)"
    if outcome.forensics is None:
        print(
            f"error: cached outcome for {spec.exp_id} carries no forensics "
            "reports (written by an incompatible version); clear it with "
            "`repro suite --clear-cache`",
            file=sys.stderr,
        )
        return 1
    # Render everything before printing: a schema-mismatched entry must
    # produce one clean error line, not a half-printed report + traceback.
    try:
        rendered = [render_forensics(outcome.forensics[0])]
        for row, row_forensics in zip(outcome.rows[1:], outcome.forensics[1:]):
            rendered.append(
                f"with {row.label}: {render_cause_summary(row_forensics)}"
            )
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        print(
            f"error: cache entry for {spec.exp_id} is schema-mismatched "
            f"({exc!r}); clear it with `repro suite --clear-cache`",
            file=sys.stderr,
        )
        return 1
    print(f"{spec.exp_id} — {outcome.name} [{source}]")
    for block in rendered:
        print()
        print(block)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.logs.export import log_from_csv, log_from_json, log_to_csv, log_to_json

    source = args.log
    if source.endswith(".csv"):
        log = log_from_csv(source)
    else:
        log = log_from_json(source)
    if args.out.endswith(".csv"):
        log_to_csv(log, args.out)
    else:
        log_to_json(log, args.out)
    print(f"wrote {args.out} ({len(log)} records)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_usecase_demo

    outcome = run_usecase_demo(
        args.usecase, total_transactions=args.transactions, seed=args.seed
    )
    print(outcome)
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.bench.cache import ResultCache
    from repro.bench.executor import derive_seed, run_suite
    from repro.bench.registry import UnknownSelectionError, all_specs, select
    from repro.bench.tables import format_paper_comparison

    if args.txs is not None and args.txs < 1:
        print(f"error: --txs must be >= 1, got {args.txs}", file=sys.stderr)
        return 2
    try:
        specs = select(args.only.split(",")) if args.only else all_specs()
    except UnknownSelectionError as exc:
        # Exit 1, naming every unmatched token: a typo must never launch
        # a partial sweep or silently select zero experiments.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.list:
        for spec in specs:
            print(
                f"{spec.exp_id:<45} runs={spec.run_count()} "
                f"scheduler={spec.scheduler}"
            )
        print(f"{len(specs)} experiments")
        return 0

    specs = [
        spec.with_overrides(
            seed=derive_seed(args.seed, spec.exp_id) if args.seed is not None else None,
            total_transactions=args.txs,
        )
        for spec in specs
    ]
    if args.clear_cache:
        # Honour the clear even under --no-cache: the user asked for the
        # on-disk entries to go away.
        store = ResultCache(args.cache_dir)
        print(f"cleared {store.clear()} cache entries under {store.root}")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_suite(
        specs,
        jobs=args.jobs,
        cache=cache,
        progress=None if args.quiet else print,
    )
    if not args.quiet:
        for outcome in report.outcomes:
            print()
            print(format_paper_comparison(outcome))
        print()
    print(report.summary())
    if cache is not None:
        print(f"cache: {cache.root}")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.bench.cache import ResultCache
    from repro.bench.executor import run_suite
    from repro.bench.matrix import (
        MatrixError,
        aggregate,
        expand,
        load_matrix,
        select_runs,
        summary_markdown,
        write_outputs,
    )
    from repro.bench.registry import UnknownSelectionError

    try:
        matrix = load_matrix(args.spec)
        runs = expand(matrix)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except MatrixError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.only:
        try:
            runs = select_runs(runs, args.only.split(","))
        except UnknownSelectionError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1

    header = (
        f"matrix {matrix.name}: {matrix.cell_count()} cells × "
        f"{len(matrix.seeds)} seeds = {matrix.run_count()} runs"
        + (f" ({len(runs)} selected)" if len(runs) != matrix.run_count() else "")
    )
    if args.dry_run:
        print(header)
        for run in runs:
            budget = run.spec.payload()["total_transactions"]
            rendered = ", ".join(f"{name}={value}" for name, value in run.factors)
            print(f"{run.exp_id:<58} {rendered} txs={budget}")
        print(f"{len(runs)} runs")
        return 0

    if not args.quiet:
        print(header)
    if args.clear_cache:
        store = ResultCache(args.cache_dir)
        print(f"cleared {store.clear()} cache entries under {store.root}")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_suite(
        [run.spec for run in runs],
        jobs=args.jobs,
        cache=cache,
        progress=None if args.quiet else print,
    )
    outcomes = {
        run.exp_id: outcome for run, outcome in zip(runs, report.outcomes)
    }
    table_path, summary_path = write_outputs(args.out, matrix, runs, outcomes)
    if not args.quiet:
        print()
        print(summary_markdown(matrix, aggregate(runs, outcomes)))
    print(report.summary())
    if cache is not None:
        print(f"cache: {cache.root}")
    print(f"wrote {table_path} and {summary_path}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.experiments import make_synthetic
    from repro.fabric.network import run_workload
    from repro.scenario import (
        ScenarioSpec,
        get_scenario,
        run_digest,
        run_scenario,
        scenario_names,
    )

    if args.list:
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:<20} {len(spec.interventions)} interventions — {spec.description}")
        return 0
    if args.dump:
        try:
            print(get_scenario(args.dump).to_json())
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    if args.txs < 1:
        print(f"error: --txs must be >= 1, got {args.txs}", file=sys.stderr)
        return 2
    try:
        if args.spec:
            scenario = ScenarioSpec.from_json(Path(args.spec).read_text())
        else:
            scenario = get_scenario(args.name)
    except OSError as exc:
        # str(exc) keeps the filename; exc.args[0] would be a bare errno.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.retry < 1:
        print(f"error: --retry must be >= 1, got {args.retry}", file=sys.stderr)
        return 2

    make = make_synthetic(args.base, seed=args.seed, total_transactions=args.txs)

    def scenario_run(mitigated: bool = False):
        from repro.fabric.retry import RetryPolicy

        config, family, requests = make()
        if mitigated:
            config.mitigation = args.mitigation
            if args.retry > 1:
                config.retry = RetryPolicy(max_attempts=args.retry)
        deployment = family.deploy()
        return run_scenario(scenario, config, deployment.contracts, requests)

    print(f"scenario: {scenario.name}")
    if scenario.description:
        print(scenario.description)
    print(f"base workload: synthetic/{args.base}, {args.txs} txs, seed {args.seed}")
    print("\ninterventions:")
    for iv in scenario.interventions:
        print(f"  - {iv.describe()}")

    config, family, requests = make()
    deployment = family.deploy()
    _, steady = run_workload(config, deployment.contracts, requests)
    network, faulted = scenario_run()
    with_mitigation = args.mitigation != "none" or args.retry > 1
    mitigated_network = None
    mitigated = None
    if with_mitigation:
        mitigated_network, mitigated = scenario_run(mitigated=True)

    print("\napplied timeline:")
    for time, kind, detail in sorted(
        network.scenario_engine.timeline, key=lambda entry: entry[0]
    ):
        print(f"  {time:8.3f}s  {kind:<24} {detail}")

    comparison = [("steady-state", steady), ("under scenario", faulted)]
    if mitigated is not None:
        comparison.append(("with mitigation", mitigated))
    print(f"\n{'run':<16}{'tput(tps)':>10}{'lat(s)':>8}{'success%':>10}")
    for label, result in comparison:
        row = result.summary_row()
        print(
            f"{label:<16}{row['success_throughput_tps']:>10}"
            f"{row['avg_latency_s']:>8}{row['success_rate_pct']:>10}"
        )
    if faulted.failure_counts:
        from repro.analysis import forensics_report, render_cause_summary

        print(
            "failures under scenario: "
            f"{render_cause_summary(forensics_report(network).to_dict())}"
        )
        if mitigated_network is not None:
            report = forensics_report(mitigated_network)
            print(
                f"with {args.mitigation}"
                + (f" + retry({args.retry})" if args.retry > 1 else "")
                + f": {render_cause_summary(report.to_dict())}"
            )
            if report.retry.resubmissions:
                print(
                    f"retries: {report.retry.resubmissions} resubmissions, "
                    f"{report.retry.recovered} recovered, "
                    f"{report.retry.exhausted} exhausted"
                )

    if args.check_determinism:
        network2, faulted2 = scenario_run()
        identical = (
            faulted2.summary_row() == faulted.summary_row()
            and run_digest(network2) == run_digest(network)
            and network2.scenario_engine.timeline == network.scenario_engine.timeline
        )
        verdict = "identical" if identical else "DIVERGED"
        print(f"determinism check (second run, same seed): {verdict}")
        if not identical:
            return 1
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    from repro.bench.experiments import make_synthetic
    from repro.control import ControlSpec, SLOTargets, render_control_timeline
    from repro.fabric.network import run_workload
    from repro.fabric.retry import RetryPolicy
    from repro.scenario import get_scenario, run_digest, scenario_names

    if args.list:
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:<20} {spec.description}")
        return 0
    if args.txs < 1:
        print(f"error: --txs must be >= 1, got {args.txs}", file=sys.stderr)
        return 2
    if args.retry < 1:
        print(f"error: --retry must be >= 1, got {args.retry}", file=sys.stderr)
        return 2

    slo_kwargs: dict[str, float] = {}
    for item in args.slo or ():
        key, sep, raw = item.partition("=")
        if not sep:
            print(f"error: --slo needs key=value, got {item!r}", file=sys.stderr)
            return 2
        try:
            slo_kwargs[key] = float(raw)
        except ValueError:
            print(f"error: --slo {key} needs a number, got {raw!r}", file=sys.stderr)
            return 2
    try:
        slo = SLOTargets(**slo_kwargs)
        control = ControlSpec(policy=args.policy, interval=args.interval, slo=slo)
        scenario = get_scenario(args.scenario)
    except TypeError:
        valid = ", ".join(sorted(SLOTargets.__dataclass_fields__))
        print(f"error: unknown --slo key; valid: {valid}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    make = make_synthetic(args.base, seed=args.seed, total_transactions=args.txs)

    def control_run(spec):
        config, family, requests = make()
        if args.retry > 1:
            config.retry = RetryPolicy(max_attempts=args.retry)
        config.control = spec
        return run_workload(config, family.deploy().contracts, requests, scenario)

    print(f"scenario: {scenario.name}")
    if scenario.description:
        print(scenario.description)
    print(
        f"base workload: synthetic/{args.base}, {args.txs} txs, seed {args.seed}, "
        f"retry {args.retry}"
    )
    print(f"control: policy {control.policy}, interval {control.interval}s, "
          f"slo abort<={slo.max_abort_rate} p95<={slo.max_p95_latency}s")

    _, off = control_run(None)
    network, on = control_run(control)

    print(f"\n{'run':<16}{'tput(tps)':>10}{'lat(s)':>8}{'success%':>10}")
    for label, result in (("controller off", off), (f"{control.policy} on", on)):
        row = result.summary_row()
        print(
            f"{label:<16}{row['success_throughput_tps']:>10}"
            f"{row['avg_latency_s']:>8}{row['success_rate_pct']:>10}"
        )

    print()
    print(render_control_timeline(network.controller.timeline))
    writes = [
        entry for entry in network.conditions.journal if entry[0] == "control"
    ]
    if writes:
        print(f"condition writes attributed to the controller: {len(writes)}")

    if args.check_determinism:
        network2, on2 = control_run(control)
        identical = (
            on2.summary_row() == on.summary_row()
            and run_digest(network2) == run_digest(network)
            and network2.controller.timeline.digest()
            == network.controller.timeline.digest()
        )
        verdict = "identical" if identical else "DIVERGED"
        print(f"determinism check (second run, same seed): {verdict}")
        if not identical:
            return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.scenario.fuzz import (
        ORACLES,
        FuzzConfig,
        replay_corpus,
        run_campaign,
        save_corpus,
    )

    if args.replay:
        if not args.corpus:
            print("error: --replay requires --corpus DIR", file=sys.stderr)
            return 2
        try:
            results = replay_corpus(args.corpus)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot replay corpus {args.corpus}: {exc}", file=sys.stderr)
            return 2
        dirty = 0
        for result in results:
            if result.clean:
                print(f"{result.name:<28} clean")
                continue
            dirty += 1
            print(f"{result.name:<28} FAILED")
            for line in result.violations + result.drift:
                print(f"    {line}")
        print(f"\nreplayed {len(results)} corpus entries, {dirty} failed")
        return 1 if dirty else 0

    try:
        config = FuzzConfig(
            seed=args.seed,
            budget=args.budget,
            base=args.base,
            transactions=args.txs,
            retry_attempts=args.retry,
            max_interventions=args.max_interventions,
            oracles=tuple(args.oracle) if args.oracle else ORACLES,
            shrink=not args.no_shrink,
        )
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        campaign = run_campaign(config)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    print(
        f"fuzz campaign: seed {config.seed}, {config.budget} compositions, "
        f"base synthetic/{config.base} ({config.transactions} txs), "
        f"oracles: {', '.join(config.oracles)}"
    )
    print(f"\n{'composition':<16}{'ivs':>4}{'severity':>10}  outcome")
    for entry in campaign.entries:
        if entry.survived:
            outcome = f"survived — {entry.label.dominant_cause or 'no failures'}"
        else:
            broken = sorted(name for name, found in entry.oracles.items() if found)
            outcome = f"VIOLATED {', '.join(broken)}"
        print(
            f"{entry.spec.name:<16}{len(entry.spec.interventions):>4}"
            f"{entry.label.severity:>10.4f}  {outcome}"
        )

    failures = campaign.failures()
    if failures:
        print(f"\n{len(failures)} oracle violation(s):")
        for entry in failures:
            print(f"  {entry.spec.name}:")
            for line in entry.violations:
                print(f"    {line}")
            if entry.shrunk_from is not None:
                print(
                    f"    shrunk from {len(entry.shrunk_from.interventions)} to "
                    f"{len(entry.spec.interventions)} intervention(s); minimal "
                    "reproducer:"
                )
                for iv in entry.spec.interventions:
                    print(f"      - {iv.describe()}")

    survivors = campaign.survivors()
    print(f"\ntop survivors by severity ({len(survivors)} total):")
    for entry in survivors[: max(args.promote, 5)]:
        print(
            f"  {entry.spec.name:<16} severity {entry.label.severity:.4f} "
            f"(aborts {entry.label.abort_rate:.1%}, "
            f"retries {entry.label.retry_rate:.1%}) — {entry.label.why}"
        )

    if args.promote:
        print(f"\npromotion candidates (top {args.promote}, paste into library.py):")
        for entry in campaign.top_specs(args.promote):
            print(entry.spec.to_json())

    if args.corpus:
        manifest = save_corpus(campaign, Path(args.corpus))
        print(f"\ncorpus written to {manifest.parent} ({len(campaign.entries)} entries)")

    return 1 if failures else 0


def _peak_rss_mb() -> float:
    """This process's peak resident set size in MiB (via getrusage)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    return peak / 1024.0 if sys.platform.startswith("linux") else peak / (1024.0**2)


def _cmd_shard(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.shard import plan_shards, run_sharded

    expected_digest = None
    if args.check_digest:
        try:
            golden = json.loads(Path(args.check_digest).read_text())
            expected_digest = str(golden["digest"])
            plan = plan_shards(
                base=str(golden["base"]),
                channels=int(golden["channels"]),
                total_transactions=int(golden["total_transactions"]),
                seed=int(golden["seed"]),
                interval_seconds=float(golden.get("interval_seconds", 1.0)),
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"error: malformed digest golden {args.check_digest}: {exc!r}",
                file=sys.stderr,
            )
            return 2
    else:
        try:
            plan = plan_shards(
                base=args.base,
                channels=args.channels,
                total_transactions=args.txs,
                seed=args.seed,
                interval_seconds=args.interval,
            )
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    print(
        f"sharded run: {plan.base}, {len(plan.channels)} channels, "
        f"{plan.total_transactions} transactions, seed {plan.seed}"
    )
    stitched = run_sharded(plan, progress=None if args.quiet else print)
    digest = stitched.digest()
    print(
        f"stitched: {stitched.committed} committed / {stitched.aborted} aborted "
        f"in {stitched.blocks} blocks ({stitched.data_blocks} data)"
    )
    print(
        f"  throughput {stitched.throughput:.1f} tps, "
        f"avg latency {stitched.avg_latency:.2f}s, "
        f"success {stitched.success_rate * 100.0:.1f}%"
    )
    print(f"digest: {digest}")

    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(
                    {
                        "plan": plan.to_dict(),
                        "summary": stitched.to_dict(),
                        "digest": digest,
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")

    failed = False
    if expected_digest is not None:
        if digest == expected_digest:
            print("digest check: OK")
        else:
            print(
                f"digest check: MISMATCH (expected {expected_digest})",
                file=sys.stderr,
            )
            failed = True
    peak = _peak_rss_mb()
    print(f"peak RSS: {peak:.1f} MiB")
    if args.max_rss_mb is not None and peak > args.max_rss_mb:
        print(
            f"error: peak RSS {peak:.1f} MiB exceeds --max-rss-mb "
            f"{args.max_rss_mb:.1f}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.perf import (
        benchmark_names,
        compare_reports,
        format_comparison,
        report_from_json,
        report_to_json,
        run_benchmarks,
    )
    from repro.bench.perf.compare import digest_changes, regressions
    from repro.bench.perf.runner import NondeterministicBenchmarkError

    if args.list:
        from repro.bench.perf import all_benchmarks

        for bench in all_benchmarks():
            print(f"{bench.name:<24} {bench.description}")
        return 0
    names = args.only.split(",") if args.only else None
    if names is not None:
        unknown = sorted(set(names) - set(benchmark_names()))
        if unknown:
            print(
                f"error: unknown benchmark(s) {', '.join(unknown)}; "
                f"valid: {', '.join(benchmark_names())}",
                file=sys.stderr,
            )
            return 2

    # Validate everything that can fail *before* the (potentially long)
    # benchmark run: threshold, the --json destination, and the baseline.
    if args.threshold <= 0:
        print(
            f"error: --threshold must be positive, got {args.threshold}",
            file=sys.stderr,
        )
        return 2
    if args.json and not Path(args.json).parent.exists():
        print(
            f"error: directory for --json does not exist: {Path(args.json).parent}",
            file=sys.stderr,
        )
        return 2
    # The baseline is read *before* anything is written: `--json X
    # --compare X` must ratchet against the recorded numbers, not against
    # the report this very invocation is about to produce.
    baseline = None
    if args.compare:
        try:
            baseline = report_from_json(Path(args.compare).read_text())
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    try:
        report = run_benchmarks(
            names,
            warmup=args.warmup,
            trials=args.trials,
            progress=None if args.quiet else print,
        )
    except NondeterministicBenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        try:
            Path(args.json).write_text(report_to_json(report))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json} ({len(report.results)} benchmarks)")

    if baseline is not None:
        deltas = compare_reports(baseline, report, threshold=args.threshold)
        print(format_comparison(deltas))
        regressed = regressions(deltas)
        changed = digest_changes(deltas)
        if regressed:
            print(
                f"{len(regressed)} regression(s) beyond "
                f"{args.threshold:.0%} + noise floor",
                file=sys.stderr,
            )
        if changed:
            print(
                f"{len(changed)} benchmark(s) changed their measured-code "
                "digest; timings are not comparable — regenerate the "
                "baseline with --json if the change is intentional",
                file=sys.stderr,
            )
        if regressed or changed:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.sim.kernel import KERNEL_TIERS

    parser = argparse.ArgumentParser(
        prog="blockoptr",
        description="Multi-level blockchain optimization recommendations (BlockOptR reproduction)",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_TIERS,
        default=None,
        help="kernel execution tier for every simulated run in this "
        "invocation; results are bit-identical across tiers "
        "(default: the REPRO_KERNEL environment variable, else reference)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze",
        help="analyze an exported log, or render a cached run's failure forensics",
        description=(
            "With a log file: run BlockOptR over the exported blockchain "
            "log and print the recommendation report. With --cached "
            "<exp_id>: render the failure-forensics report (abort-cause "
            "taxonomy, hot keys, per-org breakdown, failure-rate "
            "timeline; see docs/FAILURES.md) of a registry experiment, "
            "executing and caching it first if needed."
        ),
    )
    analyze.add_argument(
        "log", nargs="?", default=None, help="path to a .csv or .json blockchain log"
    )
    analyze.add_argument(
        "--no-model", action="store_true", help="skip the derived process model section"
    )
    analyze.add_argument(
        "--insights",
        action="store_true",
        help="append the conflict-structure appendix (inter/intra-block shares)",
    )
    analyze.add_argument(
        "--cached",
        default=None,
        metavar="EXP_ID",
        help="render failure forensics for a registry experiment "
        "(e.g. scenario_faults/partial_outage), using the result cache",
    )
    analyze.add_argument(
        "--txs",
        type=int,
        default=None,
        help="with --cached: override the experiment's transaction budget",
    )
    analyze.add_argument(
        "--cache-dir",
        default=None,
        help="with --cached: cache directory (default $REPRO_CACHE_DIR or .repro_cache)",
    )
    analyze.add_argument(
        "--cache-only",
        action="store_true",
        help="with --cached: error out (exit 1) on a cache miss instead of "
        "running the experiment",
    )
    analyze.set_defaults(func=_cmd_analyze)

    export = sub.add_parser("export", help="convert a log between CSV and JSON")
    export.add_argument("log")
    export.add_argument("--out", required=True)
    export.set_defaults(func=_cmd_export)

    demo = sub.add_parser("demo", help="simulate, analyze, optimize, re-run")
    demo.add_argument(
        "--usecase",
        default="scm",
        choices=("scm", "drm", "ehr", "voting", "loan", "synthetic"),
    )
    demo.add_argument("--transactions", type=int, default=3000)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=_cmd_demo)

    suite = sub.add_parser(
        "suite",
        help="run the paper's experiment suite (parallel, cached)",
        description=(
            "Run every registered figure/table experiment through the "
            "process-pool executor. Results are cached on disk keyed by "
            "the experiment definition and the repro source hash, so a "
            "warm re-run performs zero simulation runs."
        ),
    )
    suite.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1 = serial)"
    )
    suite.add_argument(
        "--only",
        default=None,
        metavar="TOKENS",
        help="comma-separated groups, group prefixes, or <group>/<variant> ids "
        "(e.g. fig09,fig10 or fig09_block_size/block_count_50)",
    )
    suite.add_argument(
        "--txs",
        type=int,
        default=None,
        help="override the per-experiment transaction budget (default REPRO_BENCH_TXS)",
    )
    suite.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed; each experiment derives its own seed from it "
        "(default: the registry's pinned seeds)",
    )
    suite.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    suite.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default $REPRO_CACHE_DIR or .repro_cache)",
    )
    suite.add_argument(
        "--clear-cache", action="store_true", help="drop cached results first"
    )
    suite.add_argument(
        "--list", action="store_true", help="list the selected experiments and exit"
    )
    suite.add_argument(
        "--quiet", action="store_true", help="only print the summary line"
    )
    suite.set_defaults(func=_cmd_suite)

    matrix = sub.add_parser(
        "matrix",
        help="run a declarative experiment matrix (factors × seeds)",
        description=(
            "Expand a YAML/JSON matrix spec — the cross-product of "
            "declared factors (block size, send rate, workload mix, "
            "scenario, mitigation, ...) crossed with a seed list — into "
            "concrete registry experiments, run every cell through the "
            "parallel executor and the result cache (per-cell keys, so "
            "an interrupted sweep resumes where it stopped), and "
            "aggregate the seed replications into median + bootstrap-CI "
            "columns. Writes run_table.csv (one row per cell x seed) "
            "and summary.md (aggregated Markdown table). See "
            "docs/MATRICES.md and examples/matrices/."
        ),
    )
    matrix.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="matrix spec file (.yaml/.yml/.json; see docs/MATRICES.md)",
    )
    matrix.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1 = serial)"
    )
    matrix.add_argument(
        "--only",
        default=None,
        metavar="TOKENS",
        help="comma-separated cell/run ids or prefixes "
        "(e.g. sweep/300_150 or sweep/300_150@s7); unmatched tokens "
        "fail the command before anything runs",
    )
    matrix.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded cell list (ids, factors, budgets) and exit",
    )
    matrix.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for run_table.csv and summary.md (default .)",
    )
    matrix.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    matrix.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default $REPRO_CACHE_DIR or .repro_cache)",
    )
    matrix.add_argument(
        "--clear-cache", action="store_true", help="drop cached results first"
    )
    matrix.add_argument(
        "--quiet", action="store_true", help="only print the summary/output lines"
    )
    matrix.set_defaults(func=_cmd_matrix)

    scenario = sub.add_parser(
        "scenario",
        help="run a workload under fault injection / dynamic network conditions",
        description=(
            "Run a synthetic workload under a declarative scenario "
            "(peer crashes, endorser slowdowns, latency spikes, orderer "
            "degradation, arrival bursts, conflict storms) and compare "
            "against the steady-state run. Scenarios are deterministic: "
            "the same seed and spec reproduce the run bit for bit."
        ),
    )
    scenario.add_argument(
        "--name",
        default="crash_burst",
        help="built-in scenario name (see --list; default crash_burst)",
    )
    scenario.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="path to a ScenarioSpec JSON file (overrides --name)",
    )
    scenario.add_argument(
        "--base",
        default="default",
        help="synthetic base experiment to run the scenario against "
        "(a Table 2 name, e.g. default, workload_update_heavy)",
    )
    scenario.add_argument("--txs", type=int, default=2000)
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument(
        "--mitigation",
        default="none",
        choices=("none", "early_abort", "reorder"),
        help="run a third comparison row with this mitigation strategy "
        "applied under the same scenario (see docs/FAILURES.md)",
    )
    scenario.add_argument(
        "--retry",
        type=int,
        default=1,
        metavar="ATTEMPTS",
        help="max client attempts per transaction in the mitigated run "
        "(1 = no retries; >1 enables deterministic resubmission)",
    )
    scenario.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the scenario twice and verify the runs are identical",
    )
    scenario.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    scenario.add_argument(
        "--dump",
        default=None,
        metavar="NAME",
        help="print a built-in scenario as JSON (authoring starting point)",
    )
    scenario.set_defaults(func=_cmd_scenario)

    control = sub.add_parser(
        "control",
        help="run the live SLO-guardian controller against a fault scenario",
        description=(
            "Run a synthetic workload under a fault scenario twice — "
            "controller off, then with the kernel-scheduled SLO-guardian "
            "controller on — and compare the headline numbers. Prints the "
            "controller's decision timeline (windowed observables, rules "
            "fired, bounded actuations) and its sha256 digest; runs are "
            "deterministic per (seed, policy, scenario)."
        ),
    )
    control.add_argument(
        "--scenario",
        default="crash_burst",
        help="built-in scenario name to guard against (see --list)",
    )
    control.add_argument(
        "--policy",
        default="guardian",
        choices=("guardian", "noop"),
        help="control policy: guardian (rule-based SLO guardian) or noop "
        "(observe and record, never actuate)",
    )
    control.add_argument(
        "--slo",
        action="append",
        metavar="KEY=VALUE",
        help="override an SLO target, e.g. --slo max_abort_rate=0.05 "
        "--slo max_p95_latency=3.0 (repeatable)",
    )
    control.add_argument(
        "--interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="controller tick interval on the kernel control lane",
    )
    control.add_argument(
        "--base",
        default="default",
        help="synthetic base experiment to run the scenario against",
    )
    control.add_argument("--txs", type=int, default=2000)
    control.add_argument("--seed", type=int, default=7)
    control.add_argument(
        "--retry",
        type=int,
        default=2,
        metavar="ATTEMPTS",
        help="max client attempts per transaction in both runs "
        "(>1 gives the controller's retry-tightening actuator headroom)",
    )
    control.add_argument(
        "--check-determinism",
        action="store_true",
        help="replay the controller-on run and verify run + timeline digests match",
    )
    control.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    control.set_defaults(func=_cmd_control)

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz random scenario compositions against differential oracles",
        description=(
            "Generate seeded random scenario compositions (faults, rate "
            "curves, hot-key drift, region lag, mix shifts), check each "
            "against differential oracles (determinism, stream≡batch "
            "equivalence, tx conservation, JSON round-trip, batch-kernel "
            "equivalence, control equivalence), shrink any "
            "failure to a minimal reproducer, and rank oracle-clean "
            "survivors by abort/retry severity. The same seed and budget "
            "reproduce the campaign bit for bit. Exits 1 when an oracle "
            "violation survives shrinking (a real engine bug)."
        ),
    )
    fuzz.add_argument("--seed", type=int, default=11)
    fuzz.add_argument(
        "--budget",
        type=int,
        default=20,
        help="number of random compositions to generate (default 20)",
    )
    fuzz.add_argument(
        "--base",
        default="default",
        help="synthetic base experiment for every composition (default default)",
    )
    fuzz.add_argument(
        "--txs",
        type=int,
        default=400,
        help="transactions per fuzzed run (default 400)",
    )
    fuzz.add_argument(
        "--retry",
        type=int,
        default=2,
        help="client attempts per transaction; >1 makes retry storms "
        "observable (default 2)",
    )
    fuzz.add_argument(
        "--max-interventions",
        type=int,
        default=4,
        help="max interventions per composition (default 4)",
    )
    fuzz.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to one oracle (repeatable; default all: "
        "determinism, stream_batch, conservation, roundtrip, "
        "batch_equivalence, control_equivalence)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="keep failing compositions as generated instead of shrinking "
        "them to minimal reproducers",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="persist the campaign as a replayable corpus under DIR",
    )
    fuzz.add_argument(
        "--replay",
        action="store_true",
        help="replay a corpus saved with --corpus: re-run its oracles and "
        "fail on any violation or digest drift (CI fuzz-smoke)",
    )
    fuzz.add_argument(
        "--promote",
        type=int,
        default=0,
        metavar="N",
        help="print the N most severe oracle-clean compositions as JSON "
        "(promotion candidates for the scenario library)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    shard = sub.add_parser(
        "shard",
        help="run a streamed multi-channel (sharded) workload at scale",
        description=(
            "Split a synthetic workload over N independent channels — each "
            "with its own orderer and kernel timeline — and run every "
            "channel in streaming mode: bounded accumulators instead of a "
            "materialized ledger, so peak memory is independent of the "
            "transaction count. Prints the stitched summary and its "
            "SHA-256 digest (the large-scale golden fingerprint; see "
            "docs/SCALING.md)."
        ),
    )
    shard.add_argument(
        "--base",
        default="default",
        help="synthetic base experiment (a Table 2 name; default 'default')",
    )
    shard.add_argument(
        "--channels", type=int, default=4, help="number of channels (default 4)"
    )
    shard.add_argument(
        "--txs",
        type=int,
        default=50_000,
        help="total transactions across all channels (default 50000)",
    )
    shard.add_argument("--seed", type=int, default=7)
    shard.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="rate-series interval width in seconds (default 1.0)",
    )
    shard.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the plan + stitched summary + digest as JSON",
    )
    shard.add_argument(
        "--check-digest",
        default=None,
        metavar="FILE",
        help="run the plan pinned in a digest golden file and exit 1 unless "
        "the stitched digest matches (overrides --base/--channels/--txs/--seed)",
    )
    shard.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="exit 1 if the process's peak RSS exceeds this many MiB "
        "(the flat-memory assertion CI runs)",
    )
    shard.add_argument(
        "--quiet", action="store_true", help="suppress per-channel progress lines"
    )
    shard.set_defaults(func=_cmd_shard)

    perf = sub.add_parser(
        "perf",
        help="run hot-path microbenchmarks; ratchet against a baseline",
        description=(
            "Run the repro.bench.perf microbenchmarks (kernel event churn, "
            "pipeline round trip, metrics accumulation, event-log "
            "derivation, full small experiment) with warmup + repeated "
            "trials, reporting median and MAD per benchmark. --json "
            "records a BENCH_perf.json baseline; --compare checks the "
            "current numbers against a recorded one and exits 1 on "
            "regression."
        ),
    )
    perf.add_argument(
        "--only",
        default=None,
        metavar="NAMES",
        help="comma-separated benchmark names (default: all; see --list)",
    )
    perf.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the report as JSON (the BENCH_perf.json baseline)",
    )
    perf.add_argument(
        "--compare",
        default=None,
        metavar="FILE",
        help="compare against a recorded baseline report; exit 1 on regression",
    )
    perf.add_argument(
        "--trials", type=int, default=5, help="timed trials per benchmark (default 5)"
    )
    perf.add_argument(
        "--warmup", type=int, default=1, help="untimed warmup rounds (default 1)"
    )
    perf.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="slowdown tolerated before --compare flags a regression (default 0.25)",
    )
    perf.add_argument(
        "--list", action="store_true", help="list registered benchmarks and exit"
    )
    perf.add_argument(
        "--quiet", action="store_true", help="suppress per-benchmark progress lines"
    )
    perf.set_defaults(func=_cmd_perf)
    return parser


def main(argv: list[str] | None = None) -> int:
    import os

    parser = build_parser()
    args = parser.parse_args(argv)
    # --kernel rides on the REPRO_KERNEL environment override so every
    # network built anywhere in the subcommand picks it up; the previous
    # value is restored because tests drive main() in-process.
    from repro.sim.batch import KERNEL_ENV

    saved = os.environ.get(KERNEL_ENV)
    if args.kernel is not None:
        os.environ[KERNEL_ENV] = args.kernel
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. ``repro suite | head``
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if args.kernel is not None:
            if saved is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = saved


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
