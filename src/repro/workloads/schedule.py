"""Send schedules and workload transforms.

Submit-time helpers (constant and phased rates) plus the two transforms
the optimization applier uses on existing workloads:

* :func:`cap_rate` — the paper's *transaction rate control* setting
  ("set send rate to 100 TPS"): requests keep their order but are spaced
  at least ``1/max_rate`` apart.
* :func:`reorder_requests` — the paper's *activity reordering* setting
  ("reorder workload generation"): the identified activities are moved to
  the front or back of the sequence while the original submit-time grid is
  reused, so the send rate is untouched and only the order changes.
"""

from __future__ import annotations

from repro.fabric.transaction import TxRequest


def constant_rate_times(count: int, rate: float, start: float = 0.0) -> list[float]:
    """``count`` submit times at a constant ``rate`` (tx/s)."""
    if count < 0:
        raise ValueError(f"negative count {count}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return [start + index / rate for index in range(count)]


def piecewise_rate_times(
    count: int, profile: list[tuple[float, float]], start: float = 0.0
) -> list[float]:
    """``count`` submit times following a duration-based rate profile.

    ``profile`` is a list of ``(duration_seconds, rate_tps)`` segments;
    the *last* segment's rate extends indefinitely so any ``count`` can be
    satisfied.  This is the duration-keyed complement of
    :func:`phased_times` (which is count-keyed) and the natural way to
    express dynamic traffic — e.g. "300 TPS for 5 s, a 900 TPS burst for
    2 s, then back to 300".
    """
    if count < 0:
        raise ValueError(f"negative count {count}")
    if not profile:
        raise ValueError("profile needs at least one (duration, rate) segment")
    for duration, rate in profile:
        if duration <= 0:
            raise ValueError(f"segment duration must be positive, got {duration}")
        if rate <= 0:
            raise ValueError(f"segment rate must be positive, got {rate}")
    times: list[float] = []
    clock = start
    for index, (duration, rate) in enumerate(profile):
        last = index == len(profile) - 1
        segment_end = clock + duration
        while len(times) < count and (clock < segment_end or last):
            times.append(clock)
            clock += 1.0 / rate
        if len(times) == count:
            return times
        clock = segment_end
    return times


def compress_window(
    requests: list[TxRequest], start: float, duration: float, factor: float
) -> list[TxRequest]:
    """Burst transform: arrivals inside ``[start, start+duration)`` are
    re-timed to arrive ``factor`` times faster (compressed toward
    ``start``), leaving every other request untouched.

    The warp is monotone — compressed times never overtake the requests
    after the window — so order is preserved: a traffic burst followed by
    a lull, total transaction count unchanged.  This is how the scenario
    engine's ``burst_arrivals`` intervention reshapes any base workload
    without knowing its contract.
    """
    if duration <= 0:
        raise ValueError(f"burst duration must be positive, got {duration}")
    if factor <= 1.0:
        raise ValueError(f"burst factor must exceed 1, got {factor}")
    end = start + duration
    out: list[TxRequest] = []
    for request in requests:
        time = request.submit_time
        if start <= time < end:
            time = start + (time - start) / factor
        out.append(
            TxRequest(
                submit_time=time,
                activity=request.activity,
                args=request.args,
                contract=request.contract,
                invoker_org=request.invoker_org,
            )
        )
    return out


def phased_times(phases: list[tuple[int, float]], start: float = 0.0) -> list[float]:
    """Submit times for consecutive (count, rate) phases.

    Reproduces schedules like the digital-voting workload (1,000 queries at
    100 TPS, then 5,000 votes at 300 TPS) and the "Send rate: 500, 1000"
    synthetic experiments.
    """
    times: list[float] = []
    clock = start
    for count, rate in phases:
        times.extend(constant_rate_times(count, rate, start=clock))
        if count:
            clock = times[-1] + 1.0 / rate
    return times


def cap_rate(requests: list[TxRequest], max_rate: float) -> list[TxRequest]:
    """Re-time ``requests`` so the send rate never exceeds ``max_rate``.

    Order is preserved; a request is only ever delayed, never advanced.
    """
    if max_rate <= 0:
        raise ValueError(f"max_rate must be positive, got {max_rate}")
    spacing = 1.0 / max_rate
    ordered = sorted(requests, key=lambda r: r.submit_time)
    out: list[TxRequest] = []
    next_allowed = 0.0
    for request in ordered:
        time = max(request.submit_time, next_allowed)
        out.append(
            TxRequest(
                submit_time=time,
                activity=request.activity,
                args=request.args,
                contract=request.contract,
                invoker_org=request.invoker_org,
            )
        )
        next_allowed = time + spacing
    return out


def reorder_requests(
    requests: list[TxRequest],
    front_activities: frozenset[str] | set[str] = frozenset(),
    back_activities: frozenset[str] | set[str] = frozenset(),
) -> list[TxRequest]:
    """Move given activities to the front/back of the submission sequence.

    The multiset of submit times is kept identical — requests are permuted
    onto the same time grid — so throughput comparisons isolate the effect
    of *order*, exactly like the paper's client-manager reordering.
    """
    overlap = set(front_activities) & set(back_activities)
    if overlap:
        raise ValueError(f"activities cannot be both front and back: {sorted(overlap)}")
    ordered = sorted(requests, key=lambda r: r.submit_time)
    times = [request.submit_time for request in ordered]
    front = [r for r in ordered if r.activity in front_activities]
    middle = [
        r
        for r in ordered
        if r.activity not in front_activities and r.activity not in back_activities
    ]
    back = [r for r in ordered if r.activity in back_activities]
    permuted = front + middle + back
    return [
        TxRequest(
            submit_time=time,
            activity=request.activity,
            args=request.args,
            contract=request.contract,
            invoker_org=request.invoker_org,
        )
        for time, request in zip(times, permuted)
    ]
