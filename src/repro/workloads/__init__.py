"""Workload generation: Table 2 control variables, use cases, loan log.

Every generator returns ``(NetworkConfig, ContractDeployment, requests)``
so a single call sets up everything :func:`repro.fabric.run_workload`
needs.  The send rate lives in the request submit times; skews and key
choices flow through the seeded :class:`repro.sim.rng.SimRng`.
"""

from repro.workloads.loan import LoanEvent, generate_loan_event_log, loan_workload
from repro.workloads.schedule import (
    cap_rate,
    constant_rate_times,
    phased_times,
    reorder_requests,
)
from repro.workloads.spec import ControlVariables, WorkloadType
from repro.workloads.synthetic import iter_synthetic_requests, synthetic_workload
from repro.workloads.usecases import (
    drm_workload,
    ehr_workload,
    scm_workload,
    voting_workload,
)

__all__ = [
    "ControlVariables",
    "LoanEvent",
    "WorkloadType",
    "cap_rate",
    "constant_rate_times",
    "drm_workload",
    "ehr_workload",
    "generate_loan_event_log",
    "loan_workload",
    "phased_times",
    "reorder_requests",
    "scm_workload",
    "iter_synthetic_requests",
    "synthetic_workload",
    "voting_workload",
]
