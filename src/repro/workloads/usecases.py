"""Use-case workload generators: SCM, DRM, EHR, DV (Section 5.1.2).

Each generator reproduces the paper's stated construction:

* **SCM** — per product, ``pushASN -> ship -> queryASN -> unload`` in
  order, with ``queryProducts`` and ``updateAuditInfo`` sent at random
  times; a small anomaly fraction of products skips a prerequisite step
  (the manual errors behind Figure 2's illogical branches).
* **DRM** — 10,000 random transactions, 70% ``play``; the rest uniform
  over the other functions.
* **EHR** — 70% update-heavy (grant/revoke) over a patient population.
* **DV** — phased: 1,000 ``queryParties`` at 100 TPS, 5,000 ``vote`` at
  300 TPS, then one ``seeResults`` and one ``endElection``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.registry import (
    ContractDeployment,
    drm_family,
    ehr_family,
    scm_family,
    voting_family,
)
from repro.fabric.config import NetworkConfig, TimingConfig, default_orgs
from repro.fabric.transaction import TxRequest
from repro.sim.rng import SimRng
from repro.workloads.schedule import constant_rate_times, phased_times


@dataclass
class UseCaseSpec:
    """Shared knobs for the use-case generators."""

    total_transactions: int = 10_000
    send_rate: float = 300.0
    num_orgs: int = 2
    clients_per_org: int = 2
    endorsers_per_org: int = 1
    block_count: int = 300
    block_timeout: float = 1.0
    scheduler: str = "fifo"
    timing: TimingConfig = field(default_factory=TimingConfig)
    seed: int = 7

    def to_network_config(self) -> NetworkConfig:
        orgs = default_orgs(
            self.num_orgs,
            num_clients=self.clients_per_org,
            endorsers_per_org=self.endorsers_per_org,
        )
        names = ",".join(org.name for org in orgs)
        return NetworkConfig(
            orgs=orgs,
            endorsement_policy=f"Majority({names})",
            block_count=self.block_count,
            block_timeout=self.block_timeout,
            scheduler=self.scheduler,
            timing=self.timing,
            seed=self.seed,
        )


WorkloadBundle = tuple[NetworkConfig, ContractDeployment, list[TxRequest]]


# -- Supply chain management ----------------------------------------------------

#: Side activities that may fire at any time in the SCM flow.
SCM_SIDE_ACTIVITIES = ("queryProducts", "updateAuditInfo")
#: Main product lifecycle, in mandatory order.
SCM_MAIN_FLOW = ("pushASN", "ship", "queryASN", "unload")


def scm_workload(
    spec: UseCaseSpec | None = None,
    anomaly_fraction: float = 0.3,
    side_fraction: float = 0.3,
    jitter_fraction: float = 0.05,
) -> WorkloadBundle:
    """Supply-chain workload over fresh products.

    ``anomaly_fraction`` of products deviate from the expected model —
    their ship is sent *before* the ASN, or the unload before the ship
    (the paper prunes exactly these "Ship activities that occur without
    or before the PushASN activity").  ``side_fraction`` of the transaction budget goes to
    the randomly-timed side activities.  ``jitter_fraction`` locally
    shuffles the send order (clients do not submit in perfect lockstep),
    which makes some steps race their predecessor's commit — the "Ship
    before PushASN" deviations the paper prunes.
    """
    spec = spec or UseCaseSpec()
    rng = SimRng(spec.seed)
    deployment = scm_family().deploy()
    contract_name = deployment.contracts[0].name

    total = spec.total_transactions
    side_budget = int(total * side_fraction)
    main_budget = total - side_budget
    num_products = max(1, main_budget // len(SCM_MAIN_FLOW))

    anomaly_stream = rng.stream("scm-anomaly")
    anomalies: dict[str, str] = {}
    for product_index in range(num_products):
        product_id = f"P{product_index:05d}"
        if anomaly_stream.random() < anomaly_fraction:
            anomalies[product_id] = "ship" if anomaly_stream.random() < 0.5 else "unload"

    # Phase-wise sending, as the paper describes ("sending in order the
    # transactions pushASN, ship, queryASN and unload"): every product's
    # pushASN goes out before any ship, and so on.  Each step of a product
    # therefore trails its predecessor by a whole phase — far beyond the
    # commit latency — so only anomalies and phase boundaries conflict.
    main_txs: list[tuple[str, tuple]] = []
    step_position: dict[tuple[str, str], int] = {}
    deferred: list[tuple[str, str]] = []
    prerequisite_of = {"ship": "pushASN", "unload": "ship"}
    for activity in SCM_MAIN_FLOW:
        for product_index in range(num_products):
            product_id = f"P{product_index:05d}"
            if anomalies.get(product_id) == activity:
                deferred.append((activity, product_id))
                continue
            main_txs.append((activity, (product_id,)))
            step_position[(activity, product_id)] = len(main_txs) - 1

    # Anomalous steps are issued a few dozen positions after their
    # prerequisite was *sent* — well inside the commit latency — so the
    # baseline contract endorses against a stale state (MVCC failure at
    # validation) while the pruned contract aborts them at endorsement.
    offset_stream = rng.stream("scm-anomaly-offset")
    insertions = []
    for activity, product_id in deferred:
        anchor = step_position.get((prerequisite_of[activity], product_id), 0)
        offset = int(offset_stream.integers(1, 400))
        insertions.append((anchor + offset, (activity, (product_id,))))
    for position, item in sorted(insertions, reverse=True):
        main_txs.insert(min(position, len(main_txs)), item)

    side_stream = rng.stream("scm-side")
    side_txs: list[tuple[str, tuple]] = []
    for _ in range(side_budget):
        if side_stream.random() < 0.3:
            start = int(side_stream.integers(0, max(1, num_products - 20)))
            side_txs.append(("queryProducts", (f"P{start:05d}", f"P{start + 20:05d}")))
        else:
            product = int(side_stream.integers(0, num_products))
            side_txs.append(("updateAuditInfo", (f"P{product:05d}",)))

    # Merge: main flow keeps its order; side activities land at random
    # positions ("sent randomly", Section 5.1.2).
    merged: list[tuple[str, tuple]] = list(main_txs)
    position_stream = rng.stream("scm-positions")
    for item in side_txs:
        position = int(position_stream.integers(0, len(merged) + 1))
        merged.insert(position, item)

    jitter_stream = rng.stream("scm-jitter")
    window = max(1, int(len(merged) * jitter_fraction))
    for index in range(len(merged)):
        swap = min(len(merged) - 1, index + int(jitter_stream.integers(0, window)))
        merged[index], merged[swap] = merged[swap], merged[index]

    times = constant_rate_times(len(merged), spec.send_rate)
    requests = [
        TxRequest(submit_time=time, activity=activity, args=args, contract=contract_name)
        for time, (activity, args) in zip(times, merged)
    ]
    return spec.to_network_config(), deployment, requests


# -- Digital rights management ----------------------------------------------------

DRM_OTHER_ACTIVITIES = ("create", "queryRightHolders", "viewMetaData", "calcRevenue")


def drm_workload(
    spec: UseCaseSpec | None = None,
    play_fraction: float = 0.7,
    num_tracks: int = 100,
    track_skew: float = 1.0,
) -> WorkloadBundle:
    """Play-heavy DRM workload (70% ``play`` by default)."""
    spec = spec or UseCaseSpec()
    rng = SimRng(spec.seed)
    deployment = drm_family(num_tracks=num_tracks).deploy()
    contract = deployment.contracts[0]
    contract_name = contract.name

    mix_stream = rng.stream("drm-mix")
    times = constant_rate_times(spec.total_transactions, spec.send_rate)
    requests: list[TxRequest] = []
    created = 0
    for index in range(spec.total_transactions):
        if mix_stream.random() < play_fraction:
            activity = "play"
        else:
            activity = DRM_OTHER_ACTIVITIES[
                int(mix_stream.integers(0, len(DRM_OTHER_ACTIVITIES)))
            ]
        if activity == "create":
            args: tuple = (f"M9{created:04d}",)
            created += 1
        else:
            track = rng.zipf_index("drm-track", num_tracks, track_skew)
            args = (f"M{track:05d}",)
        requests.append(
            TxRequest(
                submit_time=times[index],
                activity=activity,
                args=args,
                contract=contract_name,
            )
        )
    return spec.to_network_config(), deployment, requests


# -- Electronic health records -----------------------------------------------------

EHR_INSTITUTES = tuple(f"INST{i:02d}" for i in range(8))


def ehr_workload(
    spec: UseCaseSpec | None = None,
    update_fraction: float = 0.7,
    num_patients: int = 50,
    patient_skew: float = 0.0,
) -> WorkloadBundle:
    """Update-heavy EHR workload: 70% grant/revoke on skewed patients.

    Grants and revokes are drawn independently, so some revokes hit
    institutes that were never granted — the illogical path the pruned
    contract aborts.
    """
    spec = spec or UseCaseSpec()
    rng = SimRng(spec.seed)
    deployment = ehr_family(num_patients=num_patients).deploy()
    contract_name = deployment.contracts[0].name

    mix_stream = rng.stream("ehr-mix")
    times = constant_rate_times(spec.total_transactions, spec.send_rate)
    requests: list[TxRequest] = []
    for index in range(spec.total_transactions):
        patient = f"PT{rng.zipf_index('ehr-patient', num_patients, patient_skew):05d}"
        institute = EHR_INSTITUTES[int(mix_stream.integers(0, len(EHR_INSTITUTES)))]
        roll = mix_stream.random()
        if roll < update_fraction:
            activity = "grantAccess" if mix_stream.random() < 0.5 else "revokeAccess"
            args: tuple = (patient, institute)
        elif roll < update_fraction + (1.0 - update_fraction) / 2.0:
            activity = "queryRecord"
            args = (patient, institute)
        else:
            activity = "addRecord"
            args = (patient, f"entry-{index}")
        requests.append(
            TxRequest(
                submit_time=times[index],
                activity=activity,
                args=args,
                contract=contract_name,
            )
        )
    return spec.to_network_config(), deployment, requests


# -- Digital voting -------------------------------------------------------------------

def voting_workload(
    spec: UseCaseSpec | None = None,
    num_parties: int = 5,
    query_count: int = 1000,
    query_rate: float = 100.0,
    vote_count: int = 5000,
    vote_rate: float = 300.0,
) -> WorkloadBundle:
    """The paper's phased election: queries, then a voting burst, then close."""
    spec = spec or UseCaseSpec()
    rng = SimRng(spec.seed)
    deployment = voting_family(num_parties=num_parties).deploy()
    contract_name = deployment.contracts[0].name

    times = phased_times(
        [(query_count, query_rate), (vote_count, vote_rate), (2, 10.0)]
    )
    party_stream = rng.stream("dv-party")
    requests: list[TxRequest] = []
    for index in range(query_count):
        requests.append(
            TxRequest(submit_time=times[index], activity="queryParties", contract=contract_name)
        )
    for voter in range(vote_count):
        party = f"PARTY{int(party_stream.integers(0, num_parties)):02d}"
        requests.append(
            TxRequest(
                submit_time=times[query_count + voter],
                activity="vote",
                args=(party, f"VOTER{voter:06d}"),
                contract=contract_name,
            )
        )
    requests.append(
        TxRequest(submit_time=times[-2], activity="seeResults", contract=contract_name)
    )
    requests.append(
        TxRequest(submit_time=times[-1], activity="endElection", contract=contract_name)
    )
    return spec.to_network_config(), deployment, requests
