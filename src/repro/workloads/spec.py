"""Table 2 control variables.

One :class:`ControlVariables` instance describes one synthetic experiment.
Defaults follow Table 2 (bold markers were lost in the text extraction;
DESIGN.md documents the choices): Uniform workload, policy ``P3`` =
``Majority(all orgs)``, no endorser skew, key skew 1, 2 organizations,
block count 300 (Figure 9 shows a separate "block count 100" experiment
with catastrophic results, so 100 cannot be the default), send rate 300
TPS, no transaction distribution skew.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.fabric.config import NetworkConfig, TimingConfig, default_orgs
from repro.fabric.policy import parse_policy, standard_policy


class WorkloadType(enum.Enum):
    """Table 2 workload types for the synthetic generator."""

    UNIFORM = "uniform"
    READ_HEAVY = "read_heavy"
    INSERT_HEAVY = "insert_heavy"
    UPDATE_HEAVY = "update_heavy"
    RANGEREAD_HEAVY = "rangeread_heavy"


#: Fraction of transactions given to the dominant type in "-heavy" mixes.
HEAVY_FRACTION = 0.7

#: Per extra organization (beyond 2), every service time grows by this
#: fraction — the fixed-cluster resource dilution described above.
ORG_RESOURCE_PENALTY = 0.2

#: The five genChain activities, in mix order.
GENCHAIN_ACTIVITIES = ("read", "write", "update", "range_read", "delete")


def type_mix(workload_type: WorkloadType) -> dict[str, float]:
    """Activity mix for a workload type (fractions summing to 1)."""
    uniform = {activity: 1.0 / len(GENCHAIN_ACTIVITIES) for activity in GENCHAIN_ACTIVITIES}
    heavy_activity = {
        WorkloadType.READ_HEAVY: "read",
        WorkloadType.INSERT_HEAVY: "write",
        WorkloadType.UPDATE_HEAVY: "update",
        WorkloadType.RANGEREAD_HEAVY: "range_read",
    }.get(workload_type)
    if heavy_activity is None:
        return uniform
    rest = (1.0 - HEAVY_FRACTION) / (len(GENCHAIN_ACTIVITIES) - 1)
    return {
        activity: (HEAVY_FRACTION if activity == heavy_activity else rest)
        for activity in GENCHAIN_ACTIVITIES
    }


@dataclass
class ControlVariables:
    """One synthetic experiment's knobs (paper Table 2)."""

    workload_type: WorkloadType = WorkloadType.UNIFORM
    #: Named policy P0-P4 or a raw expression like ``And(Org1,Or(Org2,Org3))``.
    #: Default P3 = Majority(all orgs): the paper's 4-org experiments (P3 and
    #: "No. of orgs: 4") produce nearly identical numbers, which pins the
    #: default policy to Majority semantics (DESIGN.md).
    endorsement_policy: str = "P3"
    endorser_dist_skew: float = 0.0
    key_dist_skew: float = 1.0
    num_orgs: int = 2
    block_count: int = 300
    block_timeout: float = 1.0
    send_rate: float = 300.0
    #: Optional phased schedule [(tx_count, rate), ...]; overrides send_rate.
    send_rate_phases: list[tuple[int, float]] | None = None
    #: Optional duration-based rate profile [(seconds, rate), ...]; the last
    #: segment extends indefinitely.  Overrides both send_rate and
    #: send_rate_phases — the scenario engine's native schedule form.
    send_rate_profile: list[tuple[float, float]] | None = None
    #: Fraction of transactions pinned to Org1's clients (0.7 = "70%").
    tx_dist_skew: float = 0.0
    total_transactions: int = 10_000
    num_keys: int = 1500
    clients_per_org: int = 2
    endorsers_per_org: int = 1
    scheduler: str = "fifo"
    timing: TimingConfig = field(default_factory=TimingConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.tx_dist_skew <= 1.0:
            raise ValueError(f"tx_dist_skew must be in [0, 1], got {self.tx_dist_skew}")
        if self.total_transactions < 1:
            raise ValueError("need at least one transaction")
        if self.send_rate <= 0:
            raise ValueError(f"send_rate must be positive, got {self.send_rate}")
        needed = self._min_orgs_for_policy()
        if self.num_orgs < needed:
            raise ValueError(
                f"policy {self.endorsement_policy!r} needs >= {needed} orgs, "
                f"got {self.num_orgs} (the paper's P1/P2/P4 experiments run "
                f"with 4 organizations)"
            )

    def _min_orgs_for_policy(self) -> int:
        expression = self.resolve_policy()
        orgs = parse_policy(expression).organizations()
        return max(int(name.removeprefix("Org")) for name in orgs)

    def resolve_policy(self) -> str:
        """Expand a named policy (P0-P4) into its expression."""
        if self.endorsement_policy.startswith("P") and len(self.endorsement_policy) == 2:
            return standard_policy(self.endorsement_policy, self.num_orgs).to_expression()
        return self.endorsement_policy

    def to_network_config(self) -> NetworkConfig:
        """Materialize the Fabric network configuration.

        Service times scale with the organization count: the paper's
        testbed is a fixed 6-node cluster, so more organizations mean more
        pods per node and slower components across the board — the reason
        every 4-org experiment clusters around ~110 TPS while 2-org runs
        reach ~170-210 TPS.
        """
        resource_factor = 1.0 + ORG_RESOURCE_PENALTY * max(0, self.num_orgs - 2)
        # Only the per-org components (clients, endorsing peers) dilute when
        # more organizations share the fixed cluster; the ordering service
        # and the validation pipeline are modelled as single instances.
        timing = replace(
            self.timing,
            client_per_tx=self.timing.client_per_tx * resource_factor,
            package_per_endorsement=self.timing.package_per_endorsement * resource_factor,
            endorse_per_tx=self.timing.endorse_per_tx * resource_factor,
        )
        return NetworkConfig(
            orgs=default_orgs(
                self.num_orgs,
                num_clients=self.clients_per_org,
                endorsers_per_org=self.endorsers_per_org,
            ),
            endorsement_policy=self.resolve_policy(),
            block_count=self.block_count,
            block_timeout=self.block_timeout,
            endorser_selection_skew=self.endorser_dist_skew,
            scheduler=self.scheduler,
            timing=timing,
            seed=self.seed,
        )
