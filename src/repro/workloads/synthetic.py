"""Synthetic genChain workload generator (Table 2).

Generates ``total_transactions`` genChain invocations with the requested
activity mix, Zipf key skew, send schedule and invoker skew.  *Inserts*
(the ``write`` activity) target fresh, never-before-seen keys interleaved
into the prepopulated key range so that range reads observe membership
changes — the source of phantom read conflicts in insert-heavy runs.
"""

from __future__ import annotations

from repro.contracts.registry import ContractDeployment, genchain_family
from repro.fabric.config import NetworkConfig
from repro.fabric.transaction import TxRequest
from repro.sim.rng import SimRng, WeightedSampler
from repro.workloads.schedule import (
    constant_rate_times,
    phased_times,
    piecewise_rate_times,
)
from repro.workloads.spec import ControlVariables, GENCHAIN_ACTIVITIES, type_mix

#: Width (in key ranks) of each range_read window.
RANGE_WINDOW = 12


def zipf_exponent(key_dist_skew: float) -> float:
    """Map Table 2's key-skew *labels* (1, 2) to Zipf exponents.

    The paper's generator takes skew levels 1 and 2 whose exact semantics
    are not published; we map level ``k`` to exponent ``k - 1`` so level 1
    (the default) is a uniform key choice and level 2 a Zipf(1) hot-key
    distribution — reproducing that hotkeys are only detected in the
    key-skew-2 experiment (Table 3, experiment 8).
    """
    if key_dist_skew < 1.0:
        raise ValueError(f"key_dist_skew is a Table 2 label >= 1, got {key_dist_skew}")
    return key_dist_skew - 1.0


def _submit_times(spec: ControlVariables) -> list[float]:
    if spec.send_rate_profile is not None:
        return piecewise_rate_times(spec.total_transactions, spec.send_rate_profile)
    if spec.send_rate_phases is not None:
        times = phased_times(spec.send_rate_phases)
        if len(times) != spec.total_transactions:
            raise ValueError(
                f"phases cover {len(times)} transactions, "
                f"spec expects {spec.total_transactions}"
            )
        return times
    return constant_rate_times(spec.total_transactions, spec.send_rate)


def _submit_time_stream(spec: ControlVariables):
    """Submit times one at a time, identical to ``_submit_times``.

    Phased/profiled schedules are inherently precomputed (their closed
    forms need the whole phase table); the constant-rate default — the
    only schedule that matters at million-transaction scale — is O(1).
    """
    if spec.send_rate_profile is not None or spec.send_rate_phases is not None:
        yield from _submit_times(spec)
        return
    rate = spec.send_rate
    for index in range(spec.total_transactions):
        yield index / rate


def _invoker_org_stream(spec: ControlVariables, rng: SimRng):
    """Invoker pinning per transaction distribution skew, one at a time.

    With skew ``s``, a transaction goes to Org1 with probability ``s`` and
    round-robins otherwise; ``s == 0`` leaves everything on round-robin.
    Draws come from the dedicated ``tx-dist-skew`` stream, so interleaving
    them with the activity/key draws changes nothing.
    """
    if spec.tx_dist_skew == 0.0:
        for _ in range(spec.total_transactions):
            yield None
        return
    stream = rng.stream("tx-dist-skew")
    others = [f"Org{i}" for i in range(2, spec.num_orgs + 1)]
    for _ in range(spec.total_transactions):
        if stream.random() < spec.tx_dist_skew:
            yield "Org1"
        else:
            yield others[int(stream.integers(0, len(others)))] if others else "Org1"


def _invoker_orgs(spec: ControlVariables, rng: SimRng) -> list[str | None]:
    """Batch form of :func:`_invoker_org_stream` (kept for tests)."""
    return list(_invoker_org_stream(spec, rng))


def iter_synthetic_requests(spec: ControlVariables, contract_name: str):
    """Yield the spec's requests one at a time, in submit order.

    The streaming core of :func:`synthetic_workload`: identical draws on
    identical named RNG streams, so ``list(iter_synthetic_requests(...))``
    equals the batch request list bit for bit — but a constant-rate
    workload needs O(1) memory regardless of ``total_transactions``,
    which is what :meth:`FabricNetwork.run_streamed` pumps from.
    """
    rng = SimRng(spec.seed)
    mix = type_mix(spec.workload_type)
    activities = list(GENCHAIN_ACTIVITIES)
    weights = [mix[activity] for activity in activities]

    times = _submit_time_stream(spec)
    invokers = _invoker_org_stream(spec, rng)
    activity_sampler = WeightedSampler(rng.stream("activity-mix"), weights)
    exponent = zipf_exponent(spec.key_dist_skew)
    insert_counter = 0
    for index in range(spec.total_transactions):
        activity = activities[activity_sampler.draw()]
        if activity == "write":
            # Inserts: fresh keys interleaved into the existing key space so
            # range windows see new members (phantoms).
            rank = rng.zipf_index("insert-rank", spec.num_keys, exponent)
            args: tuple = (f"key{rank:06d}x{insert_counter:06d}", index)
            insert_counter += 1
        elif activity == "range_read":
            start = rng.zipf_index("range-start", spec.num_keys, exponent)
            end = min(start + RANGE_WINDOW, spec.num_keys)
            args = (f"key{start:06d}", f"key{end:06d}")
        elif activity == "update":
            rank = rng.zipf_index(f"key-{activity}", spec.num_keys, exponent)
            args = (f"key{rank:06d}", index)
        else:
            rank = rng.zipf_index(f"key-{activity}", spec.num_keys, exponent)
            args = (f"key{rank:06d}",)
        yield TxRequest(
            submit_time=next(times),
            activity=activity,
            args=args,
            contract=contract_name,
            invoker_org=next(invokers),
        )


def synthetic_workload(
    spec: ControlVariables,
) -> tuple[NetworkConfig, ContractDeployment, list[TxRequest]]:
    """Generate one synthetic experiment's network, contracts and requests."""
    family = genchain_family(num_keys=spec.num_keys)
    deployment = family.deploy()
    contract_name = deployment.contracts[0].name
    requests = list(iter_synthetic_requests(spec, contract_name))
    return spec.to_network_config(), deployment, requests
