"""Loan application process (LAP) event log and workload.

The paper replays the first 2,000 applications of the public BPI-2017
loan event log of a Dutch financial institute.  That dataset is not
available offline, so :func:`generate_loan_event_log` synthesizes an event
log with the same structure (DESIGN.md records the substitution): each
application flows through the published process model
(create → submit → accept → offer → send → validate → outcome), events of
concurrent applications interleave, and employees are assigned with a
Zipf skew so that employee ``EMP001`` handles by far the most applications
— the hot key behind Figure 17's data-model-alteration recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.contracts.registry import ContractDeployment, loan_family
from repro.fabric.config import NetworkConfig
from repro.fabric.transaction import TxRequest
from repro.sim.rng import SimRng
from repro.workloads.schedule import constant_rate_times
from repro.workloads.usecases import UseCaseSpec

#: The main flow every application goes through before its outcome.
LOAN_FLOW = (
    "createApplication",
    "submitApplication",
    "acceptApplication",
    "createOffer",
    "sendOffer",
    "validateApplication",
)

#: Terminal outcomes with their probabilities (approve / reject / cancel).
LOAN_OUTCOMES = (("approveApplication", 0.6), ("rejectApplication", 0.25), ("cancelApplication", 0.15))

LOAN_TYPES = ("personal", "home", "car", "business")


@dataclass(frozen=True)
class LoanEvent:
    """One event of the loan application process."""

    order: int
    application_id: str
    activity: str
    employee_id: str
    loan_type: str
    amount: float


def generate_loan_event_log(
    num_applications: int = 2000,
    num_employees: int = 30,
    employee_skew: float = 2.5,
    seed: int = 7,
) -> list[LoanEvent]:
    """Synthesize a BPI-2017-shaped event log.

    Every application yields ``len(LOAN_FLOW) + 1`` events (2,000
    applications ≈ 14,000 events; the paper rounds to "20,000 corresponding
    transactions" after including repeats/validations).  Applications are
    interleaved round-robin with jitter so concurrent cases overlap, and
    each event is handled by the application's main employee with
    occasional hand-offs.
    """
    rng = SimRng(seed)
    outcome_stream = rng.stream("loan-outcome")
    handoff_stream = rng.stream("loan-handoff")

    per_application: list[list[tuple[str, str, str, float]]] = []
    for app_index in range(num_applications):
        app_id = f"APP{app_index:06d}"
        main_employee = f"EMP{rng.zipf_index('loan-employee', num_employees, employee_skew) + 1:03d}"
        loan_type = LOAN_TYPES[int(outcome_stream.integers(0, len(LOAN_TYPES)))]
        amount = float(outcome_stream.integers(1, 500)) * 1000.0

        roll = outcome_stream.random()
        cumulative = 0.0
        outcome = LOAN_OUTCOMES[-1][0]
        for name, probability in LOAN_OUTCOMES:
            cumulative += probability
            if roll < cumulative:
                outcome = name
                break

        steps: list[tuple[str, str, str, float]] = []
        for activity in (*LOAN_FLOW, outcome):
            employee = main_employee
            if handoff_stream.random() < 0.15:
                employee = f"EMP{int(handoff_stream.integers(0, num_employees)) + 1:03d}"
            steps.append((app_id, activity, employee, amount))
        per_application.append([(a, act, emp, amount) for a, act, emp, amount in steps])
        del loan_type  # loan type rides along in the workload args below

    # Interleave applications: each round advances a random subset of open
    # cases, so events of many applications overlap in time.
    events: list[LoanEvent] = []
    cursors = [0] * num_applications
    open_cases = list(range(num_applications))
    order = 0
    interleave = rng.stream("loan-interleave")
    while open_cases:
        window = open_cases[: max(1, min(50, len(open_cases)))]
        pick = window[int(interleave.integers(0, len(window)))]
        app_id, activity, employee, amount = per_application[pick][cursors[pick]]
        loan_type = LOAN_TYPES[pick % len(LOAN_TYPES)]
        events.append(
            LoanEvent(
                order=order,
                application_id=app_id,
                activity=activity,
                employee_id=employee,
                loan_type=loan_type,
                amount=amount,
            )
        )
        order += 1
        cursors[pick] += 1
        if cursors[pick] >= len(per_application[pick]):
            open_cases.remove(pick)
    return events


def loan_workload(
    spec: UseCaseSpec | None = None,
    events: list[LoanEvent] | None = None,
    send_rate: float | None = None,
) -> tuple[NetworkConfig, ContractDeployment, list[TxRequest]]:
    """Turn a loan event log into a Fabric workload.

    The paper runs the same 20,000 transactions at 10 TPS (manual
    processing) and 300 TPS (automated processing); pass ``send_rate`` to
    choose.  Events are replayed in log order.
    """
    spec = spec or UseCaseSpec(send_rate=10.0)
    if send_rate is not None:
        spec.send_rate = send_rate
    if events is None:
        events = generate_loan_event_log(seed=spec.seed)
    deployment = loan_family().deploy()
    contract_name = deployment.contracts[0].name

    times = constant_rate_times(len(events), spec.send_rate)
    requests = [
        TxRequest(
            submit_time=time,
            activity=event.activity,
            args=(event.application_id, event.employee_id, event.loan_type, event.amount),
            contract=contract_name,
        )
        for time, event in zip(times, sorted(events, key=lambda e: e.order))
    ]
    return spec.to_network_config(), deployment, requests
