"""Transactions, read-write sets, statuses and types.

These are the nine-attribute records BlockOptR later extracts from the
ledger (Section 4.1 of the paper): client timestamp, activity name,
function arguments, endorsers, invoker, read-write set, status, derived
transaction type, and commit order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, NamedTuple


class Version(NamedTuple):
    """A Fabric state version: the (block, tx-in-block) that last wrote a key."""

    block: int
    tx: int


class TxStatus(enum.Enum):
    """Validation outcome of a transaction.

    Mirrors the paper's status attribute: ``success``, ``MVCC read
    conflict``, ``phantom read conflict`` and ``endorsement policy
    failure``.  ``EARLY_ABORT`` is produced only by the FabricSharp-style
    scheduler (transactions dropped before validation) and by pruned smart
    contracts that abort anomalous transactions during endorsement.
    """

    SUCCESS = "success"
    MVCC_CONFLICT = "mvcc_read_conflict"
    PHANTOM_CONFLICT = "phantom_read_conflict"
    ENDORSEMENT_FAILURE = "endorsement_policy_failure"
    EARLY_ABORT = "early_abort"

    @property
    def is_failure(self) -> bool:
        """True for every status except ``SUCCESS``."""
        return self is not TxStatus.SUCCESS


class TxType(enum.Enum):
    """Transaction type, derived from the read-write set (paper attribute 8)."""

    READ = "read"
    WRITE = "write"
    UPDATE = "update"
    RANGE_READ = "range_read"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class RangeQueryInfo:
    """Recorded result of a range read, used for phantom detection.

    ``results`` maps each key in ``[start, end)`` at execution time to the
    version that was read.  Validation re-scans the range: a changed key
    *membership* is a phantom read conflict; a changed *version* of a
    still-present key is an MVCC read conflict (how Fabric's validator
    distinguishes them).
    """

    start: str
    end: str
    results: tuple[tuple[str, Version], ...]

    def keys(self) -> tuple[str, ...]:
        """The keys observed by the range query, in scan order."""
        return tuple(key for key, _ in self.results)


#: Sentinel stored in a write set to mark a key deletion.
DELETED = "__deleted__"


@dataclass(slots=True)
class ReadWriteSet:
    """Reads (with versions), writes (with values) and range reads of one tx."""

    reads: dict[str, Version] = field(default_factory=dict)
    writes: dict[str, Any] = field(default_factory=dict)
    range_queries: list[RangeQueryInfo] = field(default_factory=list)

    @property
    def read_keys(self) -> frozenset[str]:
        """All keys read, including keys observed through range queries."""
        keys = set(self.reads)
        for query in self.range_queries:
            keys.update(query.keys())
        return frozenset(keys)

    @property
    def write_keys(self) -> frozenset[str]:
        """All keys written (deletions included)."""
        return frozenset(self.writes)

    @property
    def all_keys(self) -> frozenset[str]:
        """RWS(x): every key the transaction read or wrote."""
        return self.read_keys | self.write_keys

    def derive_type(self) -> TxType:
        """Classify the transaction from its read-write set.

        Priority: delete > range read > update (read-modify-write) >
        write > read — matching how the paper derives attribute 8.
        """
        if any(value == DELETED for value in self.writes.values()):
            return TxType.DELETE
        if self.range_queries:
            return TxType.RANGE_READ
        if self.writes and self.reads:
            return TxType.UPDATE
        if self.writes:
            return TxType.WRITE
        return TxType.READ

    def estimated_bytes(self) -> int:
        """Rough payload size used by the block-bytes cutting rule."""
        size = 160  # envelope overhead: signatures, creator, channel header
        for key, version in self.reads.items():
            size += len(key) + 16
            del version
        for key, value in self.writes.items():
            size += len(key) + len(str(value))
        for query in self.range_queries:
            size += len(query.start) + len(query.end) + 24 * len(query.results)
        return size


@dataclass(slots=True)
class TxRequest:
    """A workload item: one transaction a client should issue.

    ``submit_time`` is the scheduled client-side generation time (the send
    rate lives entirely in these timestamps).  ``invoker_org`` pins the
    request to one organization's clients (``None`` = round-robin across
    all orgs), which is how *transaction distribution skew* is expressed.
    """

    submit_time: float
    activity: str
    args: tuple[Any, ...] = ()
    contract: str = "contract"
    invoker_org: str | None = None
    #: Attempt number of this submission (1 = original; >1 = client retry
    #: issued by the :class:`~repro.fabric.retry.RetryPolicy`).
    attempt: int = 1
    #: tx_id of the original (first-attempt) transaction this resubmits.
    retry_of: str | None = None


@dataclass(slots=True)
class Transaction:
    """One transaction's full lifecycle record.

    Created when the client issues the proposal; filled in as it moves
    through the pipeline; archived in the ledger regardless of outcome.
    """

    tx_id: str
    client_timestamp: float
    activity: str
    args: tuple[Any, ...]
    contract: str
    invoker_client: str
    invoker_org: str
    endorsers: tuple[str, ...] = ()
    missing_endorsements: tuple[str, ...] = ()
    rwset: ReadWriteSet = field(default_factory=ReadWriteSet)
    status: TxStatus | None = None
    endorse_time: float | None = None
    order_time: float | None = None
    commit_time: float | None = None
    block_number: int | None = None
    commit_order: int | None = None
    is_config: bool = False
    #: Where an EARLY_ABORT happened: "endorsement" (pruned contract; the
    #: transaction was never submitted, so Caliper-style success rates
    #: exclude it from the denominator), "ordering" (scheduler abort; the
    #: transaction was submitted and counts as a failure) or "stale_read"
    #: (the early-abort mitigation dropped it at packaging time because
    #: its read set was already stale; counts as a submitted failure).
    abort_stage: str | None = None
    #: Attempt number (1 = original submission, >1 = client retry).
    attempt: int = 1
    #: tx_id of the first attempt, when this transaction is a retry.
    retry_of: str | None = None
    #: The key the validator (or the early-abort mitigation) found in
    #: conflict — MVCC version mismatch, phantom membership change, or
    #: stale read.  ``None`` for successes and non-conflict failures.
    #: Forensics uses it for hot-key attribution (docs/FAILURES.md).
    conflict_key: str | None = None
    #: Why each org in ``missing_endorsements`` went missing, parallel to
    #: that tuple: "crashed" (every peer of the org was down) or "timeout"
    #: (the least-loaded peer's queue exceeded the endorsement timeout).
    missing_reasons: tuple[str, ...] = ()

    @property
    def tx_type(self) -> TxType:
        """Transaction type derived from the read-write set (attribute 8)."""
        return self.rwset.derive_type()

    @property
    def latency(self) -> float | None:
        """End-to-end latency: client submission to block commit."""
        if self.commit_time is None:
            return None
        return self.commit_time - self.client_timestamp

    def estimated_bytes(self) -> int:
        """Envelope size including args and endorsement signatures."""
        size = self.rwset.estimated_bytes()
        size += sum(len(arg_str) for arg_str in map(str, self.args))
        size += 64 * max(1, len(self.endorsers))
        return size
