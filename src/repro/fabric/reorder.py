"""Ordering-stage transaction schedulers (Fabric++ / FabricSharp models).

The paper evaluates BlockOptR *on top of* two published Fabric extensions
that reorder transactions inside the ordering service to mitigate MVCC read
conflicts:

* **Fabric++** (Sharma et al., SIGMOD'19) builds a conflict graph within
  each block, aborts transactions involved in dependency cycles, and
  serializes the rest so that readers precede conflicting writers —
  eliminating intra-block conflicts.
* **FabricSharp** (Ruan et al., SIGMOD'20) additionally tracks recent
  committed writes (an OCC-style window over the last ``window`` blocks)
  and early-aborts transactions whose reads are already stale, saving the
  wasted ordering/validation work.

Both are modeled as pluggable :class:`Scheduler` strategies applied at
block-cut time, which is where the real systems intervene.
"""

from __future__ import annotations

from typing import Protocol

from repro.fabric.transaction import Transaction


class Scheduler(Protocol):
    """Rewrites a cut batch into (ordered transactions, early aborts)."""

    def schedule(
        self, batch: list[Transaction]
    ) -> tuple[list[Transaction], list[Transaction]]:
        """Return the batch to include in the block and the aborted txs."""
        ...

    def observe_commit(self, tx: Transaction, block: int) -> None:
        """Called after a transaction commits (for window bookkeeping)."""
        ...


class FifoScheduler:
    """Vanilla Fabric: arrival order, no aborts."""

    def schedule(
        self, batch: list[Transaction]
    ) -> tuple[list[Transaction], list[Transaction]]:
        """Pass the batch through unchanged."""
        return list(batch), []

    def observe_commit(self, tx: Transaction, block: int) -> None:
        """No bookkeeping needed."""
        del tx, block


def _reads_of(tx: Transaction) -> frozenset[str]:
    return tx.rwset.read_keys


def _writes_of(tx: Transaction) -> frozenset[str]:
    return tx.rwset.write_keys


class FabricPlusPlusScheduler:
    """Intra-block conflict-graph reordering with cycle aborts.

    Within a batch, transaction ``r`` must precede ``w`` whenever ``w``
    writes a key ``r`` reads (otherwise ``w``'s in-block commit bumps the
    version and invalidates ``r``).  We build that precedence graph, break
    cycles greedily by aborting the transaction with the highest conflict
    degree, and emit a topological order of the survivors.
    """

    def schedule(
        self, batch: list[Transaction]
    ) -> tuple[list[Transaction], list[Transaction]]:
        """Topologically order the batch, aborting cycle members."""
        if len(batch) <= 1:
            return list(batch), []

        # Precedence edges: reader -> writer (reader must come first).
        successors: dict[int, set[int]] = {i: set() for i in range(len(batch))}
        predecessors: dict[int, set[int]] = {i: set() for i in range(len(batch))}
        reads = [_reads_of(tx) for tx in batch]
        writes = [_writes_of(tx) for tx in batch]
        for i in range(len(batch)):
            for j in range(len(batch)):
                if i == j:
                    continue
                if writes[j] & reads[i]:
                    successors[i].add(j)
                    predecessors[j].add(i)

        alive = set(range(len(batch)))
        aborted: list[int] = []
        order: list[int] = []
        # Kahn's algorithm with greedy cycle-breaking: when no source node
        # exists, abort the most conflicted remaining transaction.
        indegree = {i: len(predecessors[i] & alive) for i in alive}
        while alive:
            sources = sorted(i for i in alive if indegree[i] == 0)
            if sources:
                node = sources[0]
                order.append(node)
            else:
                node = max(
                    alive,
                    key=lambda i: (len(successors[i] & alive) + indegree[i], i),
                )
                aborted.append(node)
            alive.discard(node)
            for succ in successors[node]:
                if succ in alive:
                    indegree[succ] -= 1

        ordered_txs = [batch[i] for i in order]
        aborted_txs = [batch[i] for i in sorted(aborted)]
        return ordered_txs, aborted_txs

    def observe_commit(self, tx: Transaction, block: int) -> None:
        """No cross-block state to maintain."""
        del tx, block


class ConflictAwareScheduler:
    """Intra-block conflict-aware reordering *without* aborts.

    The ``reorder`` mitigation (see docs/FAILURES.md): like
    :class:`FabricPlusPlusScheduler` it builds the reader-before-writer
    precedence graph and emits a topological order, so a transaction that
    merely *reads* a key written later in the same block validates against
    the pre-block version and survives.  Unlike Fabric++, transactions
    caught in a dependency cycle (e.g. two updates of the same hot key)
    are not aborted — the cycle's members are emitted in arrival order,
    exactly as vanilla Fabric would have committed them.  The mitigation
    therefore removes avoidable intra-block MVCC conflicts while never
    rejecting work.
    """

    def schedule(
        self, batch: list[Transaction]
    ) -> tuple[list[Transaction], list[Transaction]]:
        """Topologically order the batch, breaking cycles by arrival order."""
        if len(batch) <= 1:
            return list(batch), []

        successors: dict[int, set[int]] = {i: set() for i in range(len(batch))}
        reads = [_reads_of(tx) for tx in batch]
        writes = [_writes_of(tx) for tx in batch]
        indegree = {i: 0 for i in range(len(batch))}
        for i in range(len(batch)):
            for j in range(len(batch)):
                if i == j:
                    continue
                if writes[j] & reads[i]:
                    # Reader i must precede writer j.
                    successors[i].add(j)
                    indegree[j] += 1

        alive = set(range(len(batch)))
        order: list[int] = []
        while alive:
            sources = sorted(i for i in alive if indegree[i] == 0)
            if sources:
                node = sources[0]
            else:
                # A cycle: release its earliest-arrived member unchanged.
                node = min(alive)
            order.append(node)
            alive.discard(node)
            for succ in successors[node]:
                if succ in alive:
                    indegree[succ] -= 1
        return [batch[i] for i in order], []

    def observe_commit(self, tx: Transaction, block: int) -> None:
        """No cross-block state to maintain."""
        del tx, block


class FabricSharpScheduler:
    """OCC-style early abort over a sliding window, then Fabric++ ordering.

    The orderer remembers which keys were written by blocks it recently
    ordered (``window`` blocks).  A transaction whose read version predates
    a remembered write can no longer validate, so it is aborted before
    consuming block space.  Like the real system this is an approximation —
    the orderer does not know whether those writes ultimately committed —
    which is why the paper observes FabricSharp trading MVCC conflicts for
    other failure classes.
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._inner = FabricPlusPlusScheduler()
        #: key -> index of the scheduler batch that last ordered a write to it.
        self._recent_writes: dict[str, int] = {}
        #: key -> endorse time of that last ordered write.
        self._write_times: dict[str, float] = {}
        #: batch index -> keys written, for window expiry.
        self._by_batch: dict[int, list[str]] = {}
        self._next_batch = 0

    def schedule(
        self, batch: list[Transaction]
    ) -> tuple[list[Transaction], list[Transaction]]:
        """Early-abort stale transactions, then Fabric++-order the rest."""
        fresh: list[Transaction] = []
        aborted: list[Transaction] = []
        for tx in batch:
            if self._is_stale(tx):
                aborted.append(tx)
            else:
                fresh.append(tx)
        ordered, cycle_aborts = self._inner.schedule(fresh)
        aborted.extend(cycle_aborts)

        index = self._next_batch
        self._next_batch += 1
        written: list[str] = []
        for tx in ordered:
            endorsed_at = tx.endorse_time if tx.endorse_time is not None else 0.0
            for key in tx.rwset.write_keys:
                self._recent_writes[key] = index
                self._write_times[key] = endorsed_at
                written.append(key)
        self._by_batch[index] = written
        expired = index - self.window
        if expired in self._by_batch:
            for key in self._by_batch.pop(expired):
                if self._recent_writes.get(key) == expired:
                    del self._recent_writes[key]
                    del self._write_times[key]
        return ordered, aborted

    def _is_stale(self, tx: Transaction) -> bool:
        """A tx is doomed if a write to one of its read keys was ordered
        after the tx executed (endorsement snapshot is already stale)."""
        endorsed_at = tx.endorse_time
        if endorsed_at is None:
            return False
        keys = set(tx.rwset.reads)
        for query in tx.rwset.range_queries:
            keys.update(query.keys())
        for key in keys:
            if key not in self._recent_writes:
                continue
            if self._write_times[key] >= endorsed_at:
                return True
        return False

    def observe_commit(self, tx: Transaction, block: int) -> None:
        """Window bookkeeping happens in :meth:`schedule`; nothing here."""
        del tx, block


def make_scheduler(name: str, window: int = 5) -> Scheduler:
    """Factory used by :class:`~repro.fabric.config.NetworkConfig.scheduler`."""
    if name == "fifo":
        return FifoScheduler()
    if name == "fabricpp":
        return FabricPlusPlusScheduler()
    if name == "fabricsharp":
        return FabricSharpScheduler(window=window)
    if name == "conflict_aware":
        return ConflictAwareScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
